"""The simulated hardware: a cycle-accurate out-of-order core.

This subpackage substitutes for the nine physical machines of Table 1.  It
executes concrete instruction sequences against a generation's ground-truth
µop tables and exposes exactly what the paper's measurement infrastructure
sees: a core-cycle counter and one µop counter per execution port
(Section 3.3).

The model implements the pipeline of Figure 1: a 4-wide in-order front end,
a reorder buffer that performs register renaming, move elimination and
zero-idiom handling, a reservation station with least-loaded port binding at issue
time and at most one µop dispatched per port per cycle, fully pipelined functional units
except the divider, a store buffer with store-to-load forwarding, and
bypass delays between the integer-vector and floating-point-vector domains.
"""

from repro.pipeline.core import Core, CounterValues, simulate
from repro.pipeline.state import MachineState, SCRATCH_BASE, SCRATCH_MASK

__all__ = [
    "Core",
    "CounterValues",
    "simulate",
    "MachineState",
    "SCRATCH_BASE",
    "SCRATCH_MASK",
]
