"""Analytic timing: a closed-form single-pass schedule of renamed µops.

The third (fastest) tier of the timing ladder.  For µop streams without
divider occupancy the simulated core's schedule is computable by one
forward recurrence in age order — no event loop, no per-cycle scan:

* **Issue** is in order, ``issue_width`` per cycle, gated by ROB and
  reservation-station occupancy.  Each gate is a monotone lower bound on
  the issue cycle, so the issue cycle is simply their maximum.
* **Port binding** happens at issue (least-loaded, smallest port id on
  ties) and therefore depends only on older µops — replayed exactly.
* **Dispatch** per port is oldest-ready-first, one µop per cycle.  When
  the effective ready cycles of the µops bound to one port are
  non-decreasing in age order, dispatch degenerates to a FIFO:
  ``d = max(ready, previous_dispatch + 1)``.  The pass *verifies* this
  monotonicity per port and aborts (returns ``None``) on a violation,
  falling back to the event kernel — so the recurrence is exact wherever
  it answers at all.
* **Retire** is in order, ``retire_width`` per cycle: again a maximum of
  monotone bounds.

The subtlety is intra-cycle phase ordering (retire -> issue -> portless
completion -> per-port dispatch in canonical port order): a value
produced in a later phase of cycle ``c`` is visible to earlier phases
only at ``c + 1``.  The recurrence reproduces the reference loop's
visibility rules from the producers' dispatch cycles and phases alone —
see ``schedule_arrays``.

Divider µops are excluded up front: the non-pipelined divider lets a
younger µop stall an older one, which has no closed form here (and is
the value-dependent case anyway).

Equivalence contract: identical counters to the reference loop and the
event kernel, pinned by tests/test_sim_differential.py and the
generative harness in tests/test_sim_fuzz.py.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Sequence, Tuple

#: Dependency representation: (producer µop index or None, cycle offset).
DepList = List[Tuple[Optional[int], int]]


def extract_arrays(uops):
    """Structure-of-arrays view of a renamed µop stream.

    Assigns ``uop.index`` and returns parallel lists
    ``(ports, lat, min_issue, deps, divider)`` indexed by µop id; shared
    by this module's recurrence and the event kernel's scheduling loop.
    Deps are rewritten as ``(producer index | None, offset)`` pairs.
    """
    for index, uop in enumerate(uops):
        uop.index = index
    ports = []
    lat = []
    min_issue = []
    deps: List[DepList] = []
    divider = []
    for uop in uops:
        ports.append(uop.ports)
        lat.append(uop.complete_lat)
        min_issue.append(uop.min_issue)
        divider.append(uop.divider_cycles)
        deps.append(
            [
                (None if producer is None else producer.index, offset)
                for producer, offset in uop.deps
            ]
        )
    return ports, lat, min_issue, deps, divider


def schedule_arrays(
    uarch,
    ports: Sequence,
    lat: Sequence[int],
    min_issue: Sequence[int],
    deps: Sequence[DepList],
    boundaries: Optional[List[int]] = None,
):
    """One-pass closed-form schedule; ``None`` when no closed form exists.

    Arguments are parallel arrays indexed by µop id (see
    :func:`extract_arrays`); ``ports[k]`` is any iterable of candidate
    port ids (empty for portless µops).  µops must be free of divider
    occupancy — the caller guards.  Returns
    ``(cycles, port_counts, finishes, bounds)`` with the same meaning as
    the event kernel plus ``bounds`` (the port each µop was bound to,
    ``None`` for portless), or ``None`` if a port's effective ready
    cycles decrease in age order (oldest-ready-first would reorder, which
    the FIFO recurrence cannot express).
    """
    issue_width = uarch.issue_width
    retire_width = uarch.retire_width
    rob_size = uarch.rob_size
    rs_size = uarch.rs_size
    port_order = tuple(uarch.ports)
    port_pos = {p: i for i, p in enumerate(port_order)}

    n = len(lat)
    port_counts: Dict[int, int] = {p: 0 for p in port_order}
    finishes: Optional[List[int]] = (
        [-1] * len(boundaries) if boundaries is not None else None
    )
    if n == 0:
        return 0, port_counts, finishes, []

    issue = [0] * n
    disp = [0] * n
    phase = [0] * n
    retire = [0] * n
    bounds: List[Optional[int]] = [None] * n
    #: Per port: effective ready cycle of the youngest bound µop (the
    #: FIFO invariant) and the cycle of its latest dispatch.
    last_ready = {p: 0 for p in port_order}
    last_disp = {p: -1 for p in port_order}
    #: Sorted dispatch cycles of all port-bound µops so far, for the
    #: reservation-station occupancy bound at issue.
    pb_disp: List[int] = []

    for k in range(n):
        # --- Issue: max of monotone lower bounds -------------------
        c = min_issue[k]
        if k:
            t = issue[k - 1]
            if t > c:
                c = t
        if k >= issue_width:
            t = issue[k - issue_width] + 1
            if t > c:
                c = t
        if k >= rob_size:
            # The ROB slot frees in the retire phase of the same cycle.
            t = retire[k - rob_size]
            if t > c:
                c = t
        # RS: at the issue phase of cycle c, a port-bound predecessor
        # still occupies its slot unless it dispatched at c-1 or
        # earlier; at least m_req of them must have left.
        m_req = len(pb_disp) - rs_size + 1
        if m_req > 0:
            t = pb_disp[m_req - 1] + 1
            if t > c:
                c = t
        issue[k] = c

        # --- Bind at issue: least-loaded, smallest id on ties ------
        pset = ports[k]
        if pset:
            best = -1
            best_count = -1
            for p in pset:
                count = port_counts[p]
                if best < 0 or count < best_count or (
                    count == best_count and p < best
                ):
                    best = p
                    best_count = count
            port_counts[best] += 1
            bounds[k] = best
            phi = port_pos[best]
        else:
            phi = -1

        # --- Effective ready cycle, phase-adjusted -----------------
        # ready = max over inputs of producer dispatch + offset; the
        # last producer's dispatch cycle/phase decides whether the µop
        # is still visible to its own dispatch phase that same cycle.
        ready = 0
        cstar = -1
        pstar = -2
        for j, offset in deps[k]:
            if j is None:
                t = offset
            else:
                dj = disp[j]
                t = dj + offset
                if dj > cstar:
                    cstar = dj
                    pstar = phase[j]
                elif dj == cstar and phase[j] > pstar:
                    pstar = phase[j]
            if t > ready:
                ready = t
        if cstar < c:
            # Every producer dispatched before the issue phase: the
            # ready time is known at issue and visible to this cycle.
            eff = ready if ready > c else c
        elif ready > cstar:
            # Wake-up lands in a strictly later cycle: always visible.
            eff = ready
        elif pstar < phi or (pstar == -1 and phi == -1):
            # Same-cycle wake-up from an earlier phase (or from the
            # same portless pass, which scans in age order).
            eff = cstar
        else:
            eff = cstar + 1

        # --- Dispatch ----------------------------------------------
        if phi < 0:
            d = eff  # portless: the ROB completes any number per cycle
        else:
            port = bounds[k]
            if eff < last_ready[port]:
                # A younger µop ready before an older one on the same
                # port: oldest-ready-first may reorder. No closed form.
                return None
            last_ready[port] = eff
            t = last_disp[port] + 1
            d = eff if eff > t else t
            last_disp[port] = d
            insort(pb_disp, d)
        disp[k] = d
        phase[k] = phi

        # --- Retire: max of monotone lower bounds ------------------
        # completion is set during the dispatch phase of cycle d, after
        # the retire phase — a zero-latency µop retires at d + 1.
        completion = d + lat[k]
        r = completion if completion > d else d + 1
        if k:
            t = retire[k - 1]
            if t > r:
                r = t
        if k >= retire_width:
            t = retire[k - retire_width] + 1
            if t > r:
                r = t
        retire[k] = r

    if finishes is not None:
        for b, boundary in enumerate(boundaries):
            finishes[b] = retire[boundary - 1] if boundary else -1
    return retire[n - 1] + 1, port_counts, finishes, bounds


def schedule_analytic(uarch, uops, boundaries=None):
    """Closed-form schedule of renamed ``_RUop`` objects.

    Returns ``(cycles, port_counts, finishes)`` exactly like
    ``timing_event``, or ``None`` when the stream has no closed form
    (divider µops, or a per-port ready-order inversion).  On success the
    µops' ``bound`` fields are written (for the instrumented probe); on
    ``None`` the stream is left untouched so the event kernel can run it
    pristine.
    """
    ports, lat, min_issue, deps, divider = extract_arrays(uops)
    if any(divider):
        return None
    result = schedule_arrays(uarch, ports, lat, min_issue, deps, boundaries)
    if result is None:
        return None
    cycles, port_counts, finishes, bounds = result
    for uop, bound in zip(uops, bounds):
        uop.bound = bound
    return cycles, port_counts, finishes
