"""Event-driven timing kernel for the simulated out-of-order core.

The reference timing loop in :mod:`repro.pipeline.core` advances cycle by
cycle and rescans every port queue on each active cycle; its cost is
O(cycles x reservation-station occupancy).  For the dependent chains the
latency generators of Section 5.2 produce, the reservation station is
full of µops that are *not* ready, and those rescans dominate the whole
tool's runtime.

This kernel replaces the scans with a ready-event scheduler:

* a heap of candidate cycles (``events``) — the only cycles processed are
  those where something can change (a µop becomes ready, completes, the
  front end can issue again, the divider frees up);
* per-port ready heaps ordered by µop age, fed by a wake-up bucket map
  indexed by the cycle at which a µop's inputs become available;
* consumer edges with pending-producer counts, so a µop is (re)scheduled
  exactly when its last producer dispatches.

Cost scales with µop events (issue/dispatch/complete/retire), not with
cycles or occupancy.

Equivalence contract: for the same renamed µop stream this kernel
produces **bit-identical** counters (total cycles and per-port µop
counts) to the reference loop.  The subtle part is intra-cycle phase
ordering, which the reference fixes as retire -> issue -> portless
completion -> per-port dispatch (ports in canonical order, oldest ready
µop first, divider-blocked µops skipped).  A value produced in a later
phase (or a later port) of cycle ``c`` is only visible to earlier phases
at ``c + 1``; the scheduler reproduces this by routing same-cycle wakeups
to either the current cycle's remaining ports or a ``c + 1`` bucket.
``REPRO_SIM=reference`` keeps the original loop selectable for
differential testing (see tests/test_sim_differential.py).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple


def timing_event(
    uarch,
    uops,
    boundaries: Optional[List[int]] = None,
) -> Tuple[int, Dict[int, int], Optional[List[int]]]:
    """Schedule renamed µops; returns ``(cycles, port_counts, finishes)``.

    ``boundaries`` (optional) is an increasing list of cumulative µop
    counts; ``finishes[k]`` is the cycle at which the µop closing
    boundary ``k`` retired (``-1`` for an empty prefix).  The steady-state
    extrapolator uses this to observe per-copy deltas of an unrolled
    block from a single simulation.
    """
    issue_width = uarch.issue_width
    retire_width = uarch.retire_width
    rob_size = uarch.rob_size
    rs_size = uarch.rs_size
    port_order = tuple(uarch.ports)
    port_pos = {p: i for i, p in enumerate(port_order)}

    n = len(uops)
    port_counts: Dict[int, int] = {p: 0 for p in port_order}
    finishes: Optional[List[int]] = (
        [-1] * len(boundaries) if boundaries is not None else None
    )
    if n == 0:
        return 0, port_counts, finishes

    for index, uop in enumerate(uops):
        uop.index = index

    #: consumer edges / pending-producer counts, built lazily at issue.
    consumers: List[List[int]] = [[] for _ in range(n)]
    pending: List[int] = [0] * n

    ready: Dict[int, List[int]] = {p: [] for p in port_order}
    bucket: Dict[int, List[int]] = {}
    portless: List[int] = []
    events: List[int] = []
    push = lambda t: heapq.heappush(events, t)  # noqa: E731

    issue_ptr = 0
    retire_ptr = 0
    in_rob = 0
    in_rs = 0
    divider_free = 0
    last_retire = 0
    b_ptr = 0

    def schedule_known(idx: int, t: int, c: int, pos: int) -> None:
        """Place a µop whose ready time ``t`` just became known.

        ``pos`` encodes the current intra-cycle phase: ``-2`` for the
        issue phase, ``-1`` for the portless phase, a port position
        during dispatch.  It decides whether the µop is still visible to
        the remainder of cycle ``c`` (the reference computes ready times
        live while scanning).
        """
        uop = uops[idx]
        bound = uop.bound
        if bound is None:  # portless: completes in the ROB
            if pos == -2:
                # Issued this cycle; the portless pass runs next.
                if t > c:
                    push(t)
            elif pos == -1:
                # Producer dispatched in the portless pass; consumers sit
                # later in the list and are seen by the same pass.
                if t > c:
                    push(t)
            else:
                # Producer dispatched on a port: the portless pass of
                # cycle c is already over.
                push(t if t > c else c + 1)
            return
        if t > c:
            bucket.setdefault(t, []).append(idx)
            push(t)
        elif pos == -2 or pos == -1 or port_pos[bound] > pos:
            # Still visible to this cycle's dispatch phase.
            heapq.heappush(ready[bound], idx)
        else:
            # This port's dispatch slot for cycle c is already decided.
            bucket.setdefault(c + 1, []).append(idx)
            push(c + 1)

    def notify(pidx: int, c: int, pos: int) -> None:
        """Producer ``pidx`` dispatched at cycle ``c``: wake consumers."""
        waiters = consumers[pidx]
        if not waiters:
            return
        for cidx in waiters:
            pending[cidx] -= 1
            if pending[cidx] == 0:
                schedule_known(cidx, uops[cidx].ready_time(), c, pos)
        consumers[pidx] = []

    push(uops[0].min_issue)
    current = -1

    while retire_ptr < n:
        if not events:
            raise RuntimeError(
                "simulator deadlock (event kernel): no pending events "
                f"(retired={retire_ptr}/{n})"
            )
        c = heapq.heappop(events)
        while events and events[0] == c:
            heapq.heappop(events)
        if c <= current:
            continue
        current = c

        # Move woken µops into their port's ready heap.
        woken = bucket.pop(c, None)
        if woken is not None:
            for idx in woken:
                heapq.heappush(ready[uops[idx].bound], idx)

        # --- Retire in order -----------------------------------------
        retired = 0
        while retired < retire_width and retire_ptr < n:
            completion = uops[retire_ptr].completion
            if completion < 0 or completion > c:
                break
            retire_ptr += 1
            in_rob -= 1
            retired += 1
            last_retire = c
        if finishes is not None:
            while b_ptr < len(finishes) and retire_ptr >= boundaries[b_ptr]:
                finishes[b_ptr] = c if boundaries[b_ptr] else -1
                b_ptr += 1
        if (
            retired == retire_width
            and retire_ptr < n
            and 0 <= uops[retire_ptr].completion <= c
        ):
            push(c + 1)

        # --- Issue in order; bind to the least-loaded port -----------
        issued = 0
        while (
            issued < issue_width
            and issue_ptr < n
            and in_rob < rob_size
            and in_rs < rs_size
        ):
            uop = uops[issue_ptr]
            if uop.min_issue > c:
                push(uop.min_issue)
                break
            issue_ptr += 1
            in_rob += 1
            issued += 1
            if uop.ports:
                port = -1
                best_count = -1
                for p in uop.ports:
                    count = port_counts[p]
                    if port < 0 or count < best_count or (
                        count == best_count and p < port
                    ):
                        port = p
                        best_count = count
                port_counts[port] += 1
                uop.bound = port
                in_rs += 1
            else:
                uop.bound = None
                portless.append(uop.index)
            t = uop.ready_time()
            if t >= 0:
                schedule_known(uop.index, t, c, -2)
            else:
                count = 0
                for producer, _offset in uop.deps:
                    if producer is not None and producer.dispatch < 0:
                        consumers[producer.index].append(uop.index)
                        count += 1
                pending[uop.index] = count
        else:
            if (
                issued == issue_width
                and issue_ptr < n
                and uops[issue_ptr].min_issue <= c
            ):
                push(c + 1)

        # --- Portless µops complete in the ROB -----------------------
        if portless:
            still: List[int] = []
            for idx in portless:
                uop = uops[idx]
                t = uop.ready_time()
                if 0 <= t <= c:
                    uop.dispatch = c
                    uop.completion = c + uop.complete_lat
                    push(uop.completion if uop.completion > c else c + 1)
                    notify(idx, c, -1)
                else:
                    still.append(idx)
            portless = still

        # --- Dispatch: every port takes its oldest ready µop ---------
        dispatched_any = False
        for pos, port in enumerate(port_order):
            heap = ready[port]
            if not heap:
                continue
            stash: List[int] = []
            chosen = -1
            while heap:
                idx = heapq.heappop(heap)
                if uops[idx].divider_cycles and divider_free > c:
                    stash.append(idx)
                    continue
                chosen = idx
                break
            for idx in stash:
                heapq.heappush(heap, idx)
            if stash:
                push(divider_free)
            if chosen < 0:
                continue
            uop = uops[chosen]
            uop.dispatch = c
            uop.completion = c + uop.complete_lat
            if uop.divider_cycles:
                divider_free = c + uop.divider_cycles
            in_rs -= 1
            dispatched_any = True
            push(uop.completion if uop.completion > c else c + 1)
            notify(chosen, c, pos)
            if heap:
                push(c + 1)
        if dispatched_any and issue_ptr < n:
            # Freed reservation-station slots admit issue next cycle.
            push(c + 1)

    return last_retire + 1, port_counts, finishes
