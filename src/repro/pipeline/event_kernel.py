"""Event-driven timing kernel for the simulated out-of-order core.

The reference timing loop in :mod:`repro.pipeline.core` advances cycle by
cycle and rescans every port queue on each active cycle; its cost is
O(cycles x reservation-station occupancy).  For the dependent chains the
latency generators of Section 5.2 produce, the reservation station is
full of µops that are *not* ready, and those rescans dominate the whole
tool's runtime.

This kernel replaces the scans with a ready-event scheduler:

* a heap of candidate cycles (``events``) — the only cycles processed are
  those where something can change (a µop becomes ready, completes, the
  front end can issue again, the divider frees up);
* per-port ready heaps ordered by µop age, fed by a wake-up bucket map
  indexed by the cycle at which a µop's inputs become available;
* consumer edges with pending-producer counts, so a µop is (re)scheduled
  exactly when its last producer dispatches.

Cost scales with µop events (issue/dispatch/complete/retire), not with
cycles or occupancy.  Per-µop state lives in preallocated parallel int
lists indexed by µop id (``disp`` / ``comp`` / ``bound`` / latency /
dependency-index pairs, extracted once up front by
:func:`repro.pipeline.analytic.extract_arrays`) rather than attribute
reads on the renamed µop objects — the scheduling loop touches only
plain ints and lists.

Equivalence contract: for the same renamed µop stream this kernel
produces **bit-identical** counters (total cycles and per-port µop
counts) to the reference loop.  The subtle part is intra-cycle phase
ordering, which the reference fixes as retire -> issue -> portless
completion -> per-port dispatch (ports in canonical order, oldest ready
µop first, divider-blocked µops skipped).  A value produced in a later
phase (or a later port) of cycle ``c`` is only visible to earlier phases
at ``c + 1``; the scheduler reproduces this by routing same-cycle wakeups
to either the current cycle's remaining ports or a ``c + 1`` bucket.
``REPRO_SIM=reference`` keeps the original loop selectable for
differential testing (see tests/test_sim_differential.py).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.pipeline.analytic import extract_arrays

#: ``bound`` sentinels (the array analogue of ``_RUop.bound``).
_UNBOUND = -2
_PORTLESS = -1


def timing_event(
    uarch,
    uops,
    boundaries: Optional[List[int]] = None,
) -> Tuple[int, Dict[int, int], Optional[List[int]]]:
    """Schedule renamed µops; returns ``(cycles, port_counts, finishes)``.

    ``boundaries`` (optional) is an increasing list of cumulative µop
    counts; ``finishes[k]`` is the cycle at which the µop closing
    boundary ``k`` retired (``-1`` for an empty prefix).  The steady-state
    extrapolator uses this to observe per-copy deltas of an unrolled
    block from a single simulation.
    """
    port_sets, lat, min_issue, deps, divider = extract_arrays(uops)
    cycles, port_counts, finishes, bound = timing_event_arrays(
        uarch, port_sets, lat, min_issue, deps, divider, boundaries
    )
    # Publish the schedule back onto the µop objects (the instrumented
    # probe reads per-copy port bindings off ``bound``).
    for idx, uop in enumerate(uops):
        b = bound[idx]
        uop.bound = b if b >= 0 else None
    return cycles, port_counts, finishes


def timing_event_arrays(
    uarch,
    port_sets,
    lat,
    min_issue,
    deps,
    divider,
    boundaries: Optional[List[int]] = None,
) -> Tuple[int, Dict[int, int], Optional[List[int]], List[int]]:
    """The scheduling loop proper, on parallel arrays indexed by µop id.

    Takes the same array layout as the analytic recurrence (see
    :func:`repro.pipeline.analytic.extract_arrays`), so the measure-level
    fast path can run synthesized streams that have no closed form
    without materializing µop objects.  Additionally returns the
    ``bound`` array (port id per µop, negative sentinels otherwise).
    """
    issue_width = uarch.issue_width
    retire_width = uarch.retire_width
    rob_size = uarch.rob_size
    rs_size = uarch.rs_size
    port_order = tuple(uarch.ports)
    port_pos = {p: i for i, p in enumerate(port_order)}

    n = len(lat)
    port_counts: Dict[int, int] = {p: 0 for p in port_order}
    finishes: Optional[List[int]] = (
        [-1] * len(boundaries) if boundaries is not None else None
    )
    if n == 0:
        return 0, port_counts, finishes, []

    # Structure-of-arrays µop state, preallocated and indexed by µop id.
    disp = [-1] * n
    comp = [-1] * n
    bound = [_UNBOUND] * n
    ready_cache = [-1] * n

    #: consumer edges / pending-producer counts, built lazily at issue.
    consumers: List[List[int]] = [[] for _ in range(n)]
    pending: List[int] = [0] * n

    ready: Dict[int, List[int]] = {p: [] for p in port_order}
    bucket: Dict[int, List[int]] = {}
    portless: List[int] = []
    events: List[int] = []
    push = lambda t: heapq.heappush(events, t)  # noqa: E731

    issue_ptr = 0
    retire_ptr = 0
    in_rob = 0
    in_rs = 0
    divider_free = 0
    last_retire = 0
    b_ptr = 0

    def ready_time(idx: int) -> int:
        """Cycle at which all inputs are available, or -1 if unknown.

        Once every producer has dispatched the value is final and can be
        cached (dispatch times never change).
        """
        cached = ready_cache[idx]
        if cached >= 0:
            return cached
        value = 0
        for j, offset in deps[idx]:
            if j is None:
                t = offset
            else:
                dj = disp[j]
                if dj < 0:
                    return -1
                t = dj + offset
            if t > value:
                value = t
        ready_cache[idx] = value
        return value

    def schedule_known(idx: int, t: int, c: int, pos: int) -> None:
        """Place a µop whose ready time ``t`` just became known.

        ``pos`` encodes the current intra-cycle phase: ``-2`` for the
        issue phase, ``-1`` for the portless phase, a port position
        during dispatch.  It decides whether the µop is still visible to
        the remainder of cycle ``c`` (the reference computes ready times
        live while scanning).
        """
        b = bound[idx]
        if b < 0:  # portless: completes in the ROB
            if pos == -2:
                # Issued this cycle; the portless pass runs next.
                if t > c:
                    push(t)
            elif pos == -1:
                # Producer dispatched in the portless pass; consumers sit
                # later in the list and are seen by the same pass.
                if t > c:
                    push(t)
            else:
                # Producer dispatched on a port: the portless pass of
                # cycle c is already over.
                push(t if t > c else c + 1)
            return
        if t > c:
            bucket.setdefault(t, []).append(idx)
            push(t)
        elif pos == -2 or pos == -1 or port_pos[b] > pos:
            # Still visible to this cycle's dispatch phase.
            heapq.heappush(ready[b], idx)
        else:
            # This port's dispatch slot for cycle c is already decided.
            bucket.setdefault(c + 1, []).append(idx)
            push(c + 1)

    def notify(pidx: int, c: int, pos: int) -> None:
        """Producer ``pidx`` dispatched at cycle ``c``: wake consumers."""
        waiters = consumers[pidx]
        if not waiters:
            return
        for cidx in waiters:
            pending[cidx] -= 1
            if pending[cidx] == 0:
                schedule_known(cidx, ready_time(cidx), c, pos)
        consumers[pidx] = []

    push(min_issue[0])
    current = -1

    while retire_ptr < n:
        if not events:
            raise RuntimeError(
                "simulator deadlock (event kernel): no pending events "
                f"(retired={retire_ptr}/{n})"
            )
        c = heapq.heappop(events)
        while events and events[0] == c:
            heapq.heappop(events)
        if c <= current:
            continue
        current = c

        # Move woken µops into their port's ready heap.
        woken = bucket.pop(c, None)
        if woken is not None:
            for idx in woken:
                heapq.heappush(ready[bound[idx]], idx)

        # --- Retire in order -----------------------------------------
        retired = 0
        while retired < retire_width and retire_ptr < n:
            completion = comp[retire_ptr]
            if completion < 0 or completion > c:
                break
            retire_ptr += 1
            in_rob -= 1
            retired += 1
            last_retire = c
        if finishes is not None:
            while b_ptr < len(finishes) and retire_ptr >= boundaries[b_ptr]:
                finishes[b_ptr] = c if boundaries[b_ptr] else -1
                b_ptr += 1
        if (
            retired == retire_width
            and retire_ptr < n
            and 0 <= comp[retire_ptr] <= c
        ):
            push(c + 1)

        # --- Issue in order; bind to the least-loaded port -----------
        issued = 0
        while (
            issued < issue_width
            and issue_ptr < n
            and in_rob < rob_size
            and in_rs < rs_size
        ):
            if min_issue[issue_ptr] > c:
                push(min_issue[issue_ptr])
                break
            idx = issue_ptr
            issue_ptr += 1
            in_rob += 1
            issued += 1
            pset = port_sets[idx]
            if pset:
                port = -1
                best_count = -1
                for p in pset:
                    count = port_counts[p]
                    if port < 0 or count < best_count or (
                        count == best_count and p < port
                    ):
                        port = p
                        best_count = count
                port_counts[port] += 1
                bound[idx] = port
                in_rs += 1
            else:
                bound[idx] = _PORTLESS
                portless.append(idx)
            t = ready_time(idx)
            if t >= 0:
                schedule_known(idx, t, c, -2)
            else:
                count = 0
                for j, _offset in deps[idx]:
                    if j is not None and disp[j] < 0:
                        consumers[j].append(idx)
                        count += 1
                pending[idx] = count
        else:
            if issued == issue_width and issue_ptr < n:
                # Width exhausted: the next µop can issue no earlier than
                # the next cycle, or its own front-end release if that is
                # later still (nothing else would schedule that wake-up).
                nxt = min_issue[issue_ptr]
                push(nxt if nxt > c else c + 1)

        # --- Portless µops complete in the ROB -----------------------
        if portless:
            still: List[int] = []
            for idx in portless:
                t = ready_time(idx)
                if 0 <= t <= c:
                    disp[idx] = c
                    completion = c + lat[idx]
                    comp[idx] = completion
                    push(completion if completion > c else c + 1)
                    notify(idx, c, -1)
                else:
                    still.append(idx)
            portless = still

        # --- Dispatch: every port takes its oldest ready µop ---------
        dispatched_any = False
        for pos, port in enumerate(port_order):
            heap = ready[port]
            if not heap:
                continue
            stash: List[int] = []
            chosen = -1
            while heap:
                idx = heapq.heappop(heap)
                if divider[idx] and divider_free > c:
                    stash.append(idx)
                    continue
                chosen = idx
                break
            for idx in stash:
                heapq.heappush(heap, idx)
            if stash:
                push(divider_free)
            if chosen < 0:
                continue
            disp[chosen] = c
            completion = c + lat[chosen]
            comp[chosen] = completion
            if divider[chosen]:
                divider_free = c + divider[chosen]
            in_rs -= 1
            dispatched_any = True
            push(completion if completion > c else c + 1)
            notify(chosen, c, pos)
            if heap:
                push(c + 1)
        if dispatched_any and issue_ptr < n:
            # Freed reservation-station slots admit issue next cycle.
            push(c + 1)

    return last_retire + 1, port_counts, finishes, bound
