"""The cycle-accurate out-of-order core (the simulated hardware).

The model follows the split common to trace-driven simulators: architectural
values are emulated eagerly in program order (:mod:`repro.pipeline.semantics`)
while timing is resolved by a cycle loop over renamed µops.  The timing
model implements (Figure 1 / Section 3.1):

* a 4-wide in-order issue front end and 4-wide in-order retirement,
* register renaming at issue, including *move elimination* (only a fraction
  of eligible moves is actually eliminated, as the paper observes: roughly
  one third in a chain of dependent ``MOV``s) and *zero idioms*,
* a reservation station of limited size; each cycle every port accepts at
  most one ready µop, chosen oldest-first with least-loaded port binding,
* fully pipelined functional units except the divider, which a µop occupies
  for a value-dependent number of cycles (Section 5.2.5),
* per-operand-pair latencies realized through per-input delays and
  per-output latencies of the ground-truth µops,
* a bypass delay when a value crosses between the integer-vector and
  floating-point-vector domains (Section 5.2.1),
* a store buffer with store-to-load forwarding (Section 5.2.4),
* SSE/AVX transition stalls on the generations that have them.

Observability is restricted to what hardware performance counters provide
(Section 3.3): elapsed core cycles and the number of µops executed per port.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from itertools import chain
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import ATTR_MOVE, Instruction
from repro.isa.operands import Memory, OperandKind, RegisterOperand
from repro.pipeline.analytic import schedule_analytic
from repro.pipeline.event_kernel import timing_event
from repro.pipeline.semantics import evaluate
from repro.pipeline.state import MachineState
from repro.uarch.model import UarchConfig
from repro.uarch.tables import build_entry
from repro.uarch.uops import DOMAIN_INT, KIND_LOAD, UarchEntry

#: Values at or below this are "fast" divider operands (Section 5.2.5).
_FAST_VALUE_LIMIT = 0xFFFFF

#: Environment variable selecting the timing kernel.
KERNEL_ENV = "REPRO_SIM"
KERNEL_ANALYTIC = "analytic"
KERNEL_EVENT = "event"
KERNEL_REFERENCE = "reference"


def kernel_mode(explicit: Optional[str] = None) -> str:
    """Resolve the timing-kernel selection.

    ``REPRO_SIM=reference`` forces the original per-cycle loop (the
    differential-test baseline and the escape hatch when debugging a
    suspected kernel mismatch); ``REPRO_SIM=analytic`` opts into the
    closed-form fast path (which falls back to the event kernel per run
    when no closed form exists); anything else selects the event-driven
    scheduler.
    """
    mode = explicit or os.environ.get(KERNEL_ENV) or KERNEL_EVENT
    if mode not in (KERNEL_ANALYTIC, KERNEL_EVENT, KERNEL_REFERENCE):
        raise ValueError(
            f"unknown timing kernel {mode!r}; expected "
            f"{KERNEL_ANALYTIC!r}, {KERNEL_EVENT!r} or "
            f"{KERNEL_REFERENCE!r}"
        )
    return mode


@dataclass
class ProbeResult:
    """Per-copy observations of one instrumented unrolled simulation.

    Everything is an exact integer; index ``k`` describes copy ``k`` of
    the unrolled block.  ``finish[k]`` is the cycle in which the last µop
    of copy ``k`` retired, so the counters of a *prefix* of ``t`` copies
    are ``cycles = finish[t-1] + 1`` plus the sums of the per-copy
    columns (valid whenever younger copies cannot delay older ones — see
    :func:`repro.measure.extrapolate.unrolled_counters` for the guard).
    """

    copies: int
    finish: List[int]
    ports: List[Dict[int, int]]
    uops: List[int]
    fused: List[int]
    total_cycles: int


@dataclass
class CounterValues:
    """A snapshot of the performance counters (Section 3.3).

    ``uops`` counts unfused-domain µops (what the per-port counters see);
    ``uops_fused`` counts fused-domain µops (micro-fusion of load+op and
    store pairs — the paper's future work).
    """

    cycles: int = 0
    port_uops: Dict[int, int] = field(default_factory=dict)
    uops: int = 0
    instructions: int = 0
    uops_fused: int = 0

    def __sub__(self, other: "CounterValues") -> "CounterValues":
        ports = {
            p: self.port_uops.get(p, 0) - other.port_uops.get(p, 0)
            for p in set(self.port_uops) | set(other.port_uops)
        }
        return CounterValues(
            cycles=self.cycles - other.cycles,
            port_uops=ports,
            uops=self.uops - other.uops,
            instructions=self.instructions - other.instructions,
            uops_fused=self.uops_fused - other.uops_fused,
        )

    def scaled(self, divisor: float) -> "CounterValues":
        return CounterValues(
            cycles=self.cycles / divisor,
            port_uops={p: c / divisor for p, c in self.port_uops.items()},
            uops=self.uops / divisor,
            instructions=self.instructions / divisor,
            uops_fused=self.uops_fused / divisor,
        )


class _RUop:
    """A renamed, in-flight µop."""

    __slots__ = (
        "ports",
        "deps",
        "complete_lat",
        "kind",
        "divider_cycles",
        "dispatch",
        "completion",
        "min_issue",
        "index",
        "bound",
        "_ready_cache",
    )

    def __init__(self, ports, complete_lat, kind, divider_cycles):
        self.ports = ports
        self.deps: List[Tuple[Optional["_RUop"], int]] = []
        self.complete_lat = complete_lat
        self.kind = kind
        self.divider_cycles = divider_cycles
        self.dispatch = -1
        self.completion = -1
        self.min_issue = 0
        self.index = -1
        #: Port this µop was bound to at issue (event kernel); ``None``
        #: for portless µops, -1 before issue.
        self.bound = -1
        self._ready_cache = -1

    def ready_time(self) -> int:
        """Cycle at which all inputs are available, or -1 if unknown.

        Once every producer has dispatched the value is final and can be
        cached (dispatch times never change), which removes the dominant
        cost of the cycle loop.
        """
        cached = self._ready_cache
        if cached >= 0:
            return cached
        ready = 0
        for producer, offset in self.deps:
            if producer is None:
                t = offset
            else:
                producer_dispatch = producer.dispatch
                if producer_dispatch < 0:
                    return -1
                t = producer_dispatch + offset
            if t > ready:
                ready = t
        self._ready_cache = ready
        return ready


class _EntryCache:
    """Caches ground-truth entries per (form uid, uarch)."""

    def __init__(self, uarch: UarchConfig):
        self._uarch = uarch
        self._cache: Dict[str, Optional[UarchEntry]] = {}

    def get(self, instruction: Instruction) -> Optional[UarchEntry]:
        uid = instruction.form.uid
        if uid not in self._cache:
            self._cache[uid] = build_entry(instruction.form, self._uarch)
        return self._cache[uid]


class RenameContext:
    """Resumable rename-stage state.

    :meth:`Core.rename_block` folds instruction blocks into a context one
    block at a time, so a caller can observe (and snapshot) the rename
    state at block boundaries — the analytic measure path uses this to
    prove that an unrolled block's rename output is periodic without
    renaming the whole unroll.

    ``emulate=False`` selects *structural* rename: architectural values
    are never computed (no :func:`~repro.pipeline.semantics.evaluate`
    call, no divider operand classification, no store-address tracking).
    Sound only for code without stores and without divider µops — there,
    values influence neither the dependence graph nor any latency, so
    the structural output is bit-identical to the emulating one.
    """

    __slots__ = (
        "state",
        "emulate",
        "reg_writer",
        "flag_writer",
        "mem_writer",
        "uops",
        "marks",
        "move_elim_counter",
        "serialize_dep",
        "vec_mode",
        "frontend_release",
        "prev_form",
        "fused_total",
        "decode_cycle",
        "decode_slots",
        "complex_used",
    )

    def __init__(self, state: Optional[MachineState], emulate: bool = True):
        self.state = state
        self.emulate = emulate
        self.reg_writer: Dict[str, Tuple[Optional[_RUop], int, str]] = {}
        self.flag_writer: Dict[str, Tuple[Optional[_RUop], int]] = {}
        self.mem_writer: Dict[int, Tuple[_RUop, int]] = {}
        self.uops: List[_RUop] = []
        self.marks: List[Tuple[int, int]] = []
        self.move_elim_counter = 0
        self.serialize_dep: Optional[_RUop] = None
        self.vec_mode = "clean"
        self.frontend_release = 0
        self.prev_form = None
        self.fused_total = 0
        self.decode_cycle = 0
        self.decode_slots = 0
        self.complex_used = False


class Core:
    """A simulated core of one microarchitecture generation.

    A ``Core`` is reusable: each :meth:`run` simulates one straight-line
    code block from a fresh architectural and pipeline state, exactly like
    one serialized measurement of Algorithm 2.
    """

    def __init__(self, uarch: UarchConfig,
                 enable_macro_fusion: bool = False,
                 enable_decoder_model: bool = False,
                 kernel: Optional[str] = None):
        """Args:
            uarch: the generation to simulate.
            enable_macro_fusion: model macro-fusion of flag-setting
                instructions with a following conditional branch.  Off by
                default — the paper's tool does not model fusion (it is
                listed as future work), and the mainline benchmarks match
                that setting; the fusion-characterization extension turns
                it on explicitly.
            enable_decoder_model: model the legacy decode pipe (three
                simple decoders, one complex decoder, Microcode ROM for
                instructions with more than four µops).  Also future
                work in the paper; off by default so that mainline
                measurements see an ideal front end, on for the
                decoder-characterization extension.
            kernel: timing-kernel override (``"event"``/``"reference"``);
                defaults to the ``REPRO_SIM`` environment variable, then
                the event-driven scheduler.  Both kernels produce
                bit-identical counters.
        """
        self.uarch = uarch
        self.enable_macro_fusion = enable_macro_fusion
        self.enable_decoder_model = enable_decoder_model
        self.kernel = kernel_mode(kernel)
        self._entries = _EntryCache(uarch)
        self.last_fused_uops = 0
        #: Cumulative (µop count, fused-µop count) after each renamed
        #: instruction of the most recent :meth:`_rename` — the copy
        #: boundaries the instrumented probe run needs.
        self.last_marks: List[Tuple[int, int]] = []
        #: Total cycles simulated by this core (for RunStatistics).
        self.cycles_simulated = 0
        #: Runs / cycles resolved by the closed-form analytic schedule
        #: (only ever non-zero with ``kernel="analytic"``).
        self.runs_analytic = 0
        self.cycles_analytic = 0
        #: Structural memo of the measure-level analytic fast path:
        #: relative rename templates -> closed-form unroll results
        #: (see repro.measure.extrapolate._analytic_unrolled).
        self.analytic_memo: Dict = {}
        #: Per-form cache of the fast-path guards (divider / store µops),
        #: filled lazily by repro.measure.extrapolate.
        self.fastpath_blockers: Dict = {}

    # ------------------------------------------------------------------
    # Rename: program-order construction of the µop dataflow graph
    # ------------------------------------------------------------------

    def _rename(
        self,
        instructions: Sequence[Instruction],
        state: MachineState,
    ) -> List[_RUop]:
        context = RenameContext(state)
        self.rename_block(instructions, context)
        return context.uops

    def rename_block(
        self,
        instructions: Sequence[Instruction],
        context: RenameContext,
    ) -> None:
        """Fold *instructions* into *context*, appending renamed µops.

        The incremental form of :meth:`_rename`: calling this once per
        block with a shared context renames exactly the concatenation of
        the blocks (the rename stage is a pure fold over its state).
        Also refreshes ``last_fused_uops`` / ``last_marks`` from the
        context's cumulative totals.
        """
        uarch = self.uarch
        state = context.state
        emulate = context.emulate
        reg_writer = context.reg_writer
        flag_writer = context.flag_writer
        mem_writer = context.mem_writer
        uops = context.uops
        marks = context.marks
        move_elim_counter = context.move_elim_counter
        serialize_dep = context.serialize_dep
        # SSE/AVX transition state machine (Sandy Bridge .. Broadwell):
        # "clean" -> AVX-256 write -> "avx_dirty"; executing legacy SSE in
        # that state saves the upper halves (penalty, -> "sse_saved");
        # returning to AVX restores them (penalty, -> "avx_dirty").
        vec_mode = context.vec_mode
        frontend_release = context.frontend_release
        bypass = uarch.vec_bypass_delay
        prev_form = context.prev_form
        fused_total = context.fused_total
        # Legacy decoder model (extension): per cycle, up to four
        # instructions decode, at most one of them multi-µop (the complex
        # decoder); >4-µop instructions come from the Microcode ROM and
        # block the decoders for ceil(µops/4) cycles.
        decode_cycle = context.decode_cycle
        decode_slots = context.decode_slots
        complex_used = context.complex_used
        next_index = len(uops)

        for instruction in instructions:
            form = instruction.form
            entry = self._entries.get(instruction)
            if entry is None:
                raise ValueError(
                    f"{form.uid} is not supported on {uarch.name}"
                )
            same_regs = instruction.same_register_operands()

            # Macro-fusion (extension; the paper's future work): a
            # fusible flag-writing instruction directly followed by a
            # conditional branch reading (a subset of) its flags executes
            # as a single µop — the branch contributes none of its own.
            if (
                self.enable_macro_fusion
                and form.category == "branch"
                and prev_form is not None
                and prev_form.mnemonic in uarch.macro_fusible
                and form.flags_read
                and form.flags_read <= prev_form.flags_written
            ):
                if emulate:
                    evaluate(instruction, state)
                prev_form = form
                marks.append((next_index, fused_total))
                continue
            fused_total += entry.fused_uops
            prev_form = form

            # SSE/AVX transition stall (Sandy Bridge .. Broadwell).
            if uarch.sse_avx_transition_penalty:
                if form.category in ("vzeroupper", "vzeroall"):
                    vec_mode = "clean"
                elif form.is_avx:
                    wide = any(
                        s.kind == OperandKind.VEC and s.width == 256
                        for s in form.operands
                    )
                    if vec_mode == "sse_saved":
                        frontend_release += \
                            uarch.sse_avx_transition_penalty
                        vec_mode = "avx_dirty"
                    elif wide:
                        vec_mode = "avx_dirty"
                elif form.is_sse and vec_mode == "avx_dirty":
                    frontend_release += uarch.sse_avx_transition_penalty
                    vec_mode = "sse_saved"

            # Divider value dependence, classified before execution.
            divider_fast = False
            if entry.divider_class is not None and emulate:
                divider_fast = _divider_operands_fast(instruction, state)

            # Architectural execution (also yields memory addresses).
            # Structural rename skips it: without stores there is
            # nothing to forward, and addresses never gate timing.
            if emulate:
                accesses = evaluate(instruction, state)
                reads = {a.slot: a for a in accesses if a.kind == "R"}
                writes = {a.slot: a for a in accesses if a.kind == "W"}
            else:
                reads = {}
                writes = {}

            specs = entry.uops_for(same_regs)
            break_reg_deps = same_regs and (
                entry.dep_breaking or entry.zero_idiom
            )
            if (
                entry.zero_idiom_eliminated
                and same_regs
                and not form.has_memory_operand
            ):
                specs = specs[:1]
                eliminated_idiom = True
            else:
                eliminated_idiom = False

            # Move elimination: candidate reg-to-reg moves lose their µop's
            # execution (the rename stage aliases the destination), but
            # only one third of candidates succeeds, matching the paper's
            # observation for chains of dependent MOVs.
            eliminate_move = False
            if (
                form.has_attribute(ATTR_MOVE)
                and uarch.move_elimination
                and not form.has_memory_operand
                and form.operands[0].width >= 32
                and not same_regs
            ):
                eliminate_move = move_elim_counter % 3 == 0
                move_elim_counter += 1

            if self.enable_decoder_model:
                n_uops = len(specs)
                if n_uops > 4:
                    # Microcode ROM: exclusive use of the front end.
                    if decode_slots or complex_used:
                        decode_cycle += 1
                    decode_cycle += (n_uops + 3) // 4
                    decode_slots = 4  # nothing else this cycle
                    complex_used = True
                elif n_uops > 1:
                    if complex_used or decode_slots >= 4:
                        decode_cycle += 1
                        decode_slots = 0
                    complex_used = True
                    decode_slots += 1
                else:
                    if decode_slots >= 4:
                        decode_cycle += 1
                        decode_slots = 0
                        complex_used = False
                    decode_slots += 1

            local: List[_RUop] = []
            local_refs: Dict[Tuple, Tuple[_RUop, int]] = {}
            effective_latency: List[int] = []

            for k, spec in enumerate(specs):
                base_latency = spec.latency
                divider_cycles = spec.divider_cycles
                if entry.divider_class is not None and \
                        spec.divider_cycles > 0:
                    timing = uarch.divider_timing(entry.divider_class)
                    base_latency, divider_cycles = timing.timing(
                        divider_fast
                    )
                if eliminated_idiom or (eliminate_move and spec.uses_port):
                    ports = frozenset()
                    complete_lat = 0
                    base_latency = 0
                    divider_cycles = 0
                else:
                    ports = spec.ports
                    complete_lat = base_latency
                    for lat in spec.output_latencies.values():
                        if lat > complete_lat:
                            complete_lat = lat
                effective_latency.append(base_latency)
                ruop = _RUop(
                    ports,
                    complete_lat,
                    spec.kind,
                    divider_cycles if not eliminated_idiom else 0,
                )
                ruop.min_issue = max(frontend_release, decode_cycle)
                deps = ruop.deps

                if serialize_dep is not None:
                    deps.append(
                        (serialize_dep, serialize_dep.complete_lat)
                    )

                for ref in spec.inputs:
                    kind = ref[0]
                    if kind == "op":
                        if eliminated_idiom or (
                            break_reg_deps
                            and form.operands[ref[1]].is_register
                        ):
                            continue
                        operand = instruction.operands[ref[1]]
                        if isinstance(operand, RegisterOperand):
                            writer = reg_writer.get(
                                operand.register.canonical
                            )
                            if writer is not None:
                                extra = spec.input_delay(ref)
                                producer, offset, domain = writer
                                if (
                                    producer is not None
                                    and domain != spec.domain
                                    and domain != DOMAIN_INT
                                    and spec.domain != DOMAIN_INT
                                ):
                                    extra += bypass
                                deps.append(
                                    (producer, offset + extra)
                                )
                    elif kind == "flags":
                        for flag in form.flags_read:
                            writer = flag_writer.get(flag)
                            if writer is not None:
                                deps.append(writer)
                    elif kind == "addr":
                        slot = ref[1]
                        _add_address_deps(
                            instruction, slot, reg_writer, deps
                        )
                    elif kind in ("ld", "mem", "staddr", "uop"):
                        local_ref = local_refs.get(ref)
                        if local_ref is not None:
                            producer, offset = local_ref
                            deps.append(
                                (producer, offset + spec.input_delay(ref))
                            )

                # Loads: pointer into memory + store-to-load forwarding.
                if spec.kind == KIND_LOAD:
                    access = None
                    for ref in chain(spec.outputs, spec.inputs):
                        if ref[0] in ("ld", "addr") and ref[1] in reads:
                            access = reads[ref[1]]
                            break
                    if access is None and reads:
                        access = next(iter(reads.values()))
                    if access is not None:
                        forward = mem_writer.get(access.address)
                        if forward is not None:
                            producer, offset = forward
                            deps.append(
                                (
                                    producer,
                                    offset
                                    + uarch.store_forward_latency
                                    - ruop.complete_lat,
                                )
                            )

                ruop.index = next_index
                next_index += 1
                uops.append(ruop)
                local.append(ruop)
                # Register intra-instruction result refs.
                local_refs[("uop", k)] = (ruop, effective_latency[k])
                for out in spec.outputs:
                    okind = out[0]
                    olat = spec.output_latencies.get(
                        out, effective_latency[k]
                    )
                    if okind in ("ld", "staddr", "mem"):
                        local_refs[out] = (ruop, olat)

            # Publish architectural outputs (program order, last µop wins).
            for k, spec in enumerate(specs):
                ruop = local[k]
                for out in spec.outputs:
                    okind = out[0]
                    olat = spec.output_latencies.get(
                        out, effective_latency[k]
                    )
                    if ruop.ports == frozenset() and (
                        eliminated_idiom or eliminate_move
                    ):
                        olat = 0
                    if okind == "op":
                        operand = instruction.operands[out[1]]
                        if isinstance(operand, RegisterOperand):
                            canonical = operand.register.canonical
                            if eliminate_move:
                                # Alias the destination to the source's
                                # producer: a zero-latency rename.
                                src = instruction.operands[1]
                                writer = reg_writer.get(
                                    src.register.canonical
                                )
                                reg_writer[canonical] = writer or (
                                    None,
                                    0,
                                    DOMAIN_INT,
                                )
                            else:
                                reg_writer[canonical] = (
                                    ruop,
                                    olat,
                                    spec.domain,
                                )
                    elif okind == "flags":
                        for flag in form.flags_written:
                            flag_writer[flag] = (ruop, olat)
                    elif okind == "mem":
                        access = writes.get(out[1])
                        if access is not None:
                            mem_writer[access.address] = (ruop, olat)

            if entry.serializing:
                serialize_dep = uops[-1] if uops else None
            marks.append((next_index, fused_total))

        context.move_elim_counter = move_elim_counter
        context.serialize_dep = serialize_dep
        context.vec_mode = vec_mode
        context.frontend_release = frontend_release
        context.prev_form = prev_form
        context.fused_total = fused_total
        context.decode_cycle = decode_cycle
        context.decode_slots = decode_slots
        context.complex_used = complex_used
        self.last_fused_uops = fused_total
        self.last_marks = marks

    # ------------------------------------------------------------------
    # Timing: the cycle loop
    # ------------------------------------------------------------------

    def _timing(self, uops: List[_RUop]) -> CounterValues:
        """Resolve the timing of a renamed µop stream.

        Dispatches to the selected kernel; all tiers produce
        bit-identical counters (pinned by tests/test_sim_differential.py
        and tests/test_sim_fuzz.py).  The analytic tier falls back to
        the event kernel per run when no closed form exists.
        """
        if self.kernel == KERNEL_ANALYTIC:
            analytic = schedule_analytic(self.uarch, uops)
            if analytic is not None:
                cycles, port_counts, _ = analytic
                self.cycles_analytic += cycles
                self.runs_analytic += 1
                return CounterValues(
                    cycles=cycles,
                    port_uops=port_counts,
                    uops=len(uops),
                    instructions=0,
                )
        if self.kernel != KERNEL_REFERENCE:
            cycles, port_counts, _ = timing_event(self.uarch, uops)
            self.cycles_simulated += cycles
            return CounterValues(
                cycles=cycles,
                port_uops=port_counts,
                uops=len(uops),
                instructions=0,
            )
        return self._timing_reference(uops)

    def _timing_reference(self, uops: List[_RUop]) -> CounterValues:
        uarch = self.uarch
        issue_width = uarch.issue_width
        retire_width = uarch.retire_width
        rob_size = uarch.rob_size
        rs_size = uarch.rs_size
        ports = uarch.ports

        n = len(uops)
        for index, uop in enumerate(uops):
            uop.index = index

        port_counts: Dict[int, int] = {p: 0 for p in ports}
        issue_ptr = 0
        retire_ptr = 0
        in_rob = 0
        in_rs = 0
        # Port binding happens at ISSUE time (as on real Intel cores,
        # which bind µops to ports at allocation based on load counters);
        # each port then dispatches its oldest ready µop per cycle.
        port_queues: Dict[int, List[_RUop]] = {p: [] for p in ports}
        portless: List[_RUop] = []
        divider_free = 0
        cycle = 0
        guard = 0
        max_cycles = 200 * n + 10_000

        while retire_ptr < n:
            progress = False

            # Retire in order.
            retired = 0
            while (
                retired < retire_width
                and retire_ptr < n
                and 0 <= uops[retire_ptr].completion <= cycle
            ):
                retire_ptr += 1
                in_rob -= 1
                retired += 1
                progress = True

            # Issue in order; bind each µop to its least-loaded port.
            issued = 0
            while (
                issued < issue_width
                and issue_ptr < n
                and in_rob < rob_size
                and in_rs < rs_size
            ):
                uop = uops[issue_ptr]
                if uop.min_issue > cycle:
                    break
                issue_ptr += 1
                in_rob += 1
                issued += 1
                progress = True
                if uop.ports:
                    port = -1
                    best_count = -1
                    for p in uop.ports:
                        count = port_counts[p]
                        if port < 0 or count < best_count or (
                            count == best_count and p < port
                        ):
                            port = p
                            best_count = count
                    port_counts[port] += 1
                    port_queues[port].append(uop)
                    in_rs += 1
                else:
                    portless.append(uop)

            # NOPs / eliminated µops complete in the ROB without using
            # an execution port.
            if portless:
                still_portless: List[_RUop] = []
                for uop in portless:
                    ready = uop.ready_time()
                    if 0 <= ready <= cycle:
                        uop.dispatch = cycle
                        uop.completion = cycle + uop.complete_lat
                        progress = True
                    else:
                        still_portless.append(uop)
                portless = still_portless

            # Dispatch: every port takes its oldest ready µop.
            for port, queue in port_queues.items():
                for index, uop in enumerate(queue):
                    ready = uop.ready_time()
                    if ready < 0 or ready > cycle:
                        continue
                    if uop.divider_cycles and divider_free > cycle:
                        continue
                    uop.dispatch = cycle
                    uop.completion = cycle + uop.complete_lat
                    if uop.divider_cycles:
                        divider_free = cycle + uop.divider_cycles
                    del queue[index]
                    in_rs -= 1
                    progress = True
                    break

            cycle += 1
            if not progress:
                guard += 1
                next_event = self._next_event(
                    uops, portless, port_queues, retire_ptr, n,
                    divider_free, cycle, issue_ptr,
                )
                if next_event > cycle:
                    cycle = next_event
                if guard > max_cycles:
                    raise RuntimeError(
                        "simulator deadlock: no progress "
                        f"(cycle={cycle}, retired={retire_ptr}/{n})"
                    )

        total_cycles = cycle
        self.cycles_simulated += total_cycles
        return CounterValues(
            cycles=total_cycles,
            port_uops=port_counts,
            uops=n,
            instructions=0,
        )

    @staticmethod
    def _next_event(
        uops, portless, port_queues, retire_ptr, n, divider_free, cycle,
        issue_ptr
    ) -> int:
        """Earliest future cycle at which anything can change.

        Iterates the live containers directly — the stall path used to
        concatenate ``portless`` with every port queue into a fresh list
        on each no-progress cycle, which dominated long stalls.
        """
        best = None

        def consider(t: Optional[int]) -> None:
            nonlocal best
            if t is not None and t >= cycle and (best is None or t < best):
                best = t

        def consider_uop(uop) -> None:
            ready = uop.ready_time()
            if ready >= 0:
                consider(max(ready, cycle))
                if uop.divider_cycles:
                    consider(divider_free)

        if retire_ptr < n and uops[retire_ptr].completion >= 0:
            consider(uops[retire_ptr].completion)
        for uop in portless:
            consider_uop(uop)
        for queue in port_queues.values():
            for uop in queue:
                consider_uop(uop)
        if issue_ptr < n:
            consider(uops[issue_ptr].min_issue)
        return best if best is not None else cycle

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        instructions: Sequence[Instruction],
        init: Optional[Dict[str, int]] = None,
    ) -> CounterValues:
        """Execute a straight-line block from a fresh serialized state.

        Returns the performance-counter deltas for the block, i.e. what one
        pair of counter reads around ``AsmCode`` in Algorithm 2 observes.
        """
        state = MachineState.initial(init)
        uops = self._rename(instructions, state)
        counters = self._timing(uops)
        counters.instructions = len(instructions)
        counters.uops_fused = self.last_fused_uops
        return counters

    def run_instrumented(
        self,
        code: Sequence[Instruction],
        copies: int,
        init: Optional[Dict[str, int]] = None,
    ) -> ProbeResult:
        """Simulate ``code`` unrolled ``copies`` times, per-copy observed.

        One simulation of the unrolled stream (closed-form when the
        analytic kernel is selected and applies, event kernel
        otherwise), instrumented with per-copy retire cycles, port
        bindings, and µop counts.  The steady-state extrapolator reads
        both unroll factors of Algorithm 2 off this single probe instead
        of running separate simulations.  Unavailable with the reference
        loop, which records no per-retirement boundaries.
        """
        if self.kernel == KERNEL_REFERENCE:
            raise RuntimeError(
                "run_instrumented requires the event or analytic kernel "
                f"(this core uses {self.kernel!r})"
            )
        stream = list(code) * copies
        state = MachineState.initial(init)
        uops = self._rename(stream, state)
        length = len(code)
        marks = self.last_marks
        boundaries = [marks[k * length - 1][0] for k in range(1, copies + 1)]
        scheduled = None
        if self.kernel == KERNEL_ANALYTIC:
            scheduled = schedule_analytic(self.uarch, uops, boundaries)
        if scheduled is not None:
            cycles, port_counts, finishes = scheduled
            self.cycles_analytic += cycles
            self.runs_analytic += 1
        else:
            cycles, port_counts, finishes = timing_event(
                self.uarch, uops, boundaries
            )
            self.cycles_simulated += cycles

        per_uops: List[int] = []
        per_fused: List[int] = []
        per_ports: List[Dict[int, int]] = []
        prev_uop = 0
        prev_fused = 0
        start = 0
        for k in range(copies):
            uop_mark, fused_mark = marks[(k + 1) * length - 1]
            per_uops.append(uop_mark - prev_uop)
            per_fused.append(fused_mark - prev_fused)
            counts: Dict[int, int] = {}
            for idx in range(start, uop_mark):
                bound = uops[idx].bound
                if bound is not None and bound >= 0:
                    counts[bound] = counts.get(bound, 0) + 1
            per_ports.append(counts)
            prev_uop, prev_fused, start = uop_mark, fused_mark, uop_mark
        return ProbeResult(
            copies=copies,
            finish=list(finishes or []),
            ports=per_ports,
            uops=per_uops,
            fused=per_fused,
            total_cycles=cycles,
        )

    def supports(self, instruction_or_form) -> bool:
        form = getattr(instruction_or_form, "form", instruction_or_form)
        return build_entry(form, self.uarch) is not None


def _add_address_deps(instruction, slot, reg_writer, deps) -> None:
    """Dependencies through the address registers of a memory operand."""
    if slot == "stack":
        writer = reg_writer.get("RSP")
        if writer is not None:
            deps.append((writer[0], writer[1]))
        return
    operand = instruction.operands[slot]
    if not isinstance(operand, Memory):
        if isinstance(operand, RegisterOperand):
            writer = reg_writer.get(operand.register.canonical)
            if writer is not None:
                deps.append((writer[0], writer[1]))
        return
    for reg in (operand.base, operand.index):
        if reg is not None:
            writer = reg_writer.get(reg.canonical)
            if writer is not None:
                deps.append((writer[0], writer[1]))


def _divider_operands_fast(
    instruction: Instruction, state: MachineState
) -> bool:
    """Whether the source values fall in the divider's fast class."""
    for spec, operand in zip(
        instruction.form.operands, instruction.operands
    ):
        if not spec.read:
            continue
        if isinstance(operand, RegisterOperand):
            value = state.read_register(operand.register)
        elif isinstance(operand, Memory):
            value = state.load(
                state.effective_address(operand), spec.width
            )
        else:
            continue
        if value > _FAST_VALUE_LIMIT:
            return False
    return True


def build_core(
    uarch: UarchConfig,
    *,
    enable_macro_fusion: bool = False,
    enable_decoder_model: bool = False,
    kernel: Optional[str] = None,
) -> Core:
    """The timing-tier selection entry point.

    All code outside :mod:`repro.pipeline` / :mod:`repro.measure` must
    construct cores through this factory instead of calling
    :class:`Core` directly (enforced by ``repro lint`` rule RPR113), so
    tier selection — ``REPRO_SIM`` and explicit ``kernel=`` overrides —
    stays observable and in one place.
    """
    return Core(
        uarch,
        enable_macro_fusion=enable_macro_fusion,
        enable_decoder_model=enable_decoder_model,
        kernel=kernel,
    )


def simulate(
    instructions: Sequence[Instruction],
    uarch: UarchConfig,
    init: Optional[Dict[str, int]] = None,
) -> CounterValues:
    """Convenience one-shot simulation (fresh :class:`Core`)."""
    return Core(uarch).run(instructions, init)
