"""Architectural machine state: register values, flags, and memory.

The simulator emulates architectural values eagerly in program order (a
standard trace-driven split between functional and timing model).  Values
matter for timing in exactly three places, all of which the paper's
generators exploit:

* memory addresses (pointer-chasing chains like ``MOV RAX, [RAX]``,
  Section 5.2.2, and store-to-load forwarding, Section 5.2.4),
* the value-dependent divider (Section 5.2.5),
* value tricks like the double-``XOR`` and ``AND R,Rc; OR R,Rc`` pinning,
  which only work because XOR/AND/OR have their real semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.isa.operands import Memory
from repro.isa.registers import (
    FLAG_NAMES,
    Register,
    RegisterClass,
    register_by_name,
)

#: All simulated memory accesses are confined to this scratch arena, the
#: analogue of the "large enough memory area that is not used by the main
#: program" of Algorithm 2 (saveState).
SCRATCH_BASE = 0x1000000
SCRATCH_MASK = 0xFFFFF8  # 16 MiB arena, 8-byte aligned granules

_WIDTH_MASKS = {w: (1 << w) - 1 for w in (1, 8, 16, 32, 64, 128, 256)}


def _mix(*values: int) -> int:
    """Cheap deterministic value for instructions without real semantics."""
    acc = 0x9E3779B97F4A7C15
    for v in values:
        acc ^= (v + 0x165667B19E3779F9) & 0xFFFFFFFFFFFFFFFF
        acc = (acc * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
        acc ^= acc >> 33
    return acc


def scratch_address(raw: int) -> int:
    """Map an arbitrary 64-bit value into the scratch arena (8-aligned)."""
    return SCRATCH_BASE + (raw & SCRATCH_MASK)


@dataclass
class MachineState:
    """Architectural register file, status flags, and flat memory."""

    registers: Dict[str, int] = field(default_factory=dict)
    flags: Dict[str, int] = field(default_factory=dict)
    memory: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def initial(cls, overrides: Dict[str, int] = None) -> "MachineState":
        """Fresh state: GPRs point at disjoint scratch regions, flags clear.

        This mirrors the saveState()/initialization step of Algorithm 2:
        every register holds a valid pointer into the scratch area so that
        arbitrary instructions with memory operands can execute.
        """
        state = cls()
        gpr64 = (
            "RAX RBX RCX RDX RSI RDI RBP RSP "
            "R8 R9 R10 R11 R12 R13 R14 R15"
        ).split()
        for index, name in enumerate(gpr64):
            state.registers[name] = SCRATCH_BASE + 0x10000 * (index + 1)
        for index in range(16):
            state.registers[f"YMM{index}"] = (1 << 40) + index * 0x1111
        for index in range(8):
            state.registers[f"MM{index}"] = (1 << 33) + index * 0x777
        for flag in FLAG_NAMES:
            state.flags[flag] = 0
        if overrides:
            for name, value in overrides.items():
                if name in FLAG_NAMES:
                    state.flags[name] = value & 1
                else:
                    reg = register_by_name(name)
                    state.write_register(reg, value)
        return state

    # ------------------------------------------------------------------
    # Registers
    # ------------------------------------------------------------------

    def read_register(self, reg: Register) -> int:
        value = self.registers.get(reg.canonical, 0)
        return (value >> reg.offset) & _WIDTH_MASKS[reg.width]

    def write_register(self, reg: Register, value: int) -> None:
        value &= _WIDTH_MASKS[reg.width]
        if reg.reg_class == RegisterClass.GPR and reg.width == 32:
            # x86-64: 32-bit writes zero the upper half.
            self.registers[reg.canonical] = value
            return
        if reg.is_full_width:
            self.registers[reg.canonical] = value
            return
        old = self.registers.get(reg.canonical, 0)
        mask = _WIDTH_MASKS[reg.width] << reg.offset
        self.registers[reg.canonical] = (old & ~mask) | (value << reg.offset)

    # ------------------------------------------------------------------
    # Memory (8-byte granules inside the scratch arena)
    # ------------------------------------------------------------------

    def effective_address(self, mem: Memory) -> int:
        raw = mem.displacement
        if mem.base is not None:
            raw += self.read_register(mem.base)
        if mem.index is not None:
            raw += self.read_register(mem.index) * mem.scale
        return scratch_address(raw)

    def load(self, address: int, width: int) -> int:
        granules = max(1, width // 64)
        value = 0
        for g in range(granules):
            part = self.memory.get(address + 8 * g)
            if part is None:
                part = _mix(address + 8 * g)
            value |= part << (64 * g)
        return value & _WIDTH_MASKS[width]

    def store(self, address: int, value: int, width: int) -> None:
        granules = max(1, width // 64)
        value &= _WIDTH_MASKS[width]
        for g in range(granules):
            self.memory[address + 8 * g] = (value >> (64 * g)) & \
                0xFFFFFFFFFFFFFFFF

    def copy(self) -> "MachineState":
        return MachineState(
            registers=dict(self.registers),
            flags=dict(self.flags),
            memory=dict(self.memory),
        )


def opaque_result(seed: str, inputs: Tuple[int, ...]) -> int:
    """Deterministic stand-in result for unmodeled instruction semantics."""
    return _mix(hash(seed) & 0xFFFFFFFFFFFFFFFF, *inputs)
