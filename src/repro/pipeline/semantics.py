"""Architectural (functional) semantics of instructions.

:func:`evaluate` executes one concrete instruction against a
:class:`~repro.pipeline.state.MachineState` in program order and reports the
memory accesses it performed.  Instructions whose values the microbenchmark
generators rely on (moves, boolean logic, add/sub, shifts, multiplies,
divides, condition evaluation) have real semantics; everything else produces
deterministic opaque values, which is sound because values influence timing
only through addresses and the divider (see :mod:`repro.pipeline.state`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.isa.instruction import Instruction
from repro.isa.operands import (
    Immediate,
    Memory,
    OperandKind,
    RegisterOperand,
)
from repro.pipeline.state import MachineState, opaque_result, scratch_address


@dataclass(frozen=True)
class MemAccess:
    """One memory access performed by an instruction."""

    slot: object  # operand slot index, or "stack"
    kind: str  # "R" or "W"
    address: int
    width: int


_MASK = {w: (1 << w) - 1 for w in (8, 16, 32, 64, 128, 256)}


def _parity(value: int) -> int:
    return 1 - bin(value & 0xFF).count("1") % 2


def _sign(value: int, width: int) -> int:
    return (value >> (width - 1)) & 1


def _arith_flags(result: int, width: int, carry: int = 0,
                 overflow: int = 0) -> Dict[str, int]:
    masked = result & _MASK[width]
    return {
        "CF": carry,
        "PF": _parity(masked),
        "AF": (result >> 4) & 1,
        "ZF": 1 if masked == 0 else 0,
        "SF": _sign(masked, width),
        "OF": overflow,
    }


def _signed(value: int, width: int) -> int:
    value &= _MASK[width]
    if value >> (width - 1):
        return value - (1 << width)
    return value


_CONDITIONS: Dict[str, Callable[[Dict[str, int]], bool]] = {
    "O": lambda f: f["OF"] == 1,
    "NO": lambda f: f["OF"] == 0,
    "B": lambda f: f["CF"] == 1,
    "AE": lambda f: f["CF"] == 0,
    "E": lambda f: f["ZF"] == 1,
    "NE": lambda f: f["ZF"] == 0,
    "BE": lambda f: f["CF"] == 1 or f["ZF"] == 1,
    "A": lambda f: f["CF"] == 0 and f["ZF"] == 0,
    "S": lambda f: f["SF"] == 1,
    "NS": lambda f: f["SF"] == 0,
    "P": lambda f: f["PF"] == 1,
    "NP": lambda f: f["PF"] == 0,
    "L": lambda f: f["SF"] != f["OF"],
    "GE": lambda f: f["SF"] == f["OF"],
    "LE": lambda f: f["ZF"] == 1 or f["SF"] != f["OF"],
    "G": lambda f: f["ZF"] == 0 and f["SF"] == f["OF"],
}


class _Context:
    """Evaluation context handed to mnemonic handlers."""

    __slots__ = ("instruction", "form", "values", "state", "width")

    def __init__(self, instruction, values, state):
        self.instruction = instruction
        self.form = instruction.form
        self.values = values  # per-slot input value (None if not read)
        self.state = state
        first = instruction.form.operands[0] if instruction.form.operands \
            else None
        self.width = first.width if first is not None else 64

    def val(self, index: int) -> int:
        value = self.values[index]
        if value is None:
            return 0
        return value

    def opaque(self, *extra: int) -> int:
        inputs = tuple(v for v in self.values if v is not None)
        return opaque_result(self.form.uid, inputs + extra)


# Handlers return (outputs, flags): outputs maps slot index -> new value;
# flags maps flag name -> 0/1 (only for flags the form writes).
_HANDLERS: Dict[str, Callable] = {}


def _handler(*mnemonics: str):
    def decorate(fn):
        for m in mnemonics:
            _HANDLERS[m] = fn
        return fn

    return decorate


@_handler("MOV", "MOVDQA", "MOVDQU", "MOVAPS", "MOVAPD", "MOVUPS",
          "MOVUPD", "VMOVDQA", "VMOVDQU", "VMOVAPS", "VMOVAPD", "VMOVUPS",
          "VMOVUPD", "MOVQ", "MOVD", "MOVQ2DQ", "MOVDQ2Q", "LAHF")
def _h_mov(ctx):
    return {0: ctx.val(1) if len(ctx.form.operands) > 1 else ctx.val(0)}, {}


@_handler("MOVSX", "MOVSXD")
def _h_movsx(ctx):
    src_width = ctx.form.operands[1].width
    value = _signed(ctx.val(1), src_width)
    return {0: value & _MASK[ctx.form.operands[0].width]}, {}


@_handler("MOVZX")
def _h_movzx(ctx):
    return {0: ctx.val(1)}, {}


@_handler("ADD")
def _h_add(ctx):
    width = ctx.width
    result = ctx.val(0) + ctx.val(1)
    carry = 1 if result > _MASK[width] else 0
    return {0: result}, _arith_flags(result, width, carry)


@_handler("ADC")
def _h_adc(ctx):
    width = ctx.width
    result = ctx.val(0) + ctx.val(1) + ctx.state.flags["CF"]
    carry = 1 if result > _MASK[width] else 0
    return {0: result}, _arith_flags(result, width, carry)


@_handler("SUB", "CMP", "NEG")
def _h_sub(ctx):
    width = ctx.width
    if ctx.form.mnemonic == "NEG":
        a, b = 0, ctx.val(0)
    else:
        a, b = ctx.val(0), ctx.val(1)
    result = a - b
    carry = 1 if result < 0 else 0
    outputs = {}
    if ctx.form.mnemonic != "CMP":
        outputs[0] = result & _MASK[width]
    return outputs, _arith_flags(result, width, carry)


@_handler("SBB")
def _h_sbb(ctx):
    width = ctx.width
    result = ctx.val(0) - ctx.val(1) - ctx.state.flags["CF"]
    carry = 1 if result < 0 else 0
    return {0: result & _MASK[width]}, _arith_flags(result, width, carry)


@_handler("AND", "TEST")
def _h_and(ctx):
    result = ctx.val(0) & ctx.val(1)
    outputs = {} if ctx.form.mnemonic == "TEST" else {0: result}
    return outputs, _arith_flags(result, ctx.width)


@_handler("OR")
def _h_or(ctx):
    result = ctx.val(0) | ctx.val(1)
    return {0: result}, _arith_flags(result, ctx.width)


@_handler("XOR")
def _h_xor(ctx):
    result = ctx.val(0) ^ ctx.val(1)
    return {0: result}, _arith_flags(result, ctx.width)


@_handler("NOT")
def _h_not(ctx):
    return {0: ~ctx.val(0) & _MASK[ctx.width]}, {}


@_handler("INC")
def _h_inc(ctx):
    result = ctx.val(0) + 1
    flags = _arith_flags(result, ctx.width)
    flags.pop("CF")
    return {0: result}, flags


@_handler("DEC")
def _h_dec(ctx):
    result = ctx.val(0) - 1
    flags = _arith_flags(result, ctx.width)
    flags.pop("CF")
    return {0: result & _MASK[ctx.width]}, flags


@_handler("LEA")
def _h_lea(ctx):
    # The AGEN slot's "value" is the (unmapped) effective address.
    return {0: ctx.val(1)}, {}


@_handler("SHL", "SHR", "SAR", "ROL", "ROR")
def _h_shift(ctx):
    width = ctx.width
    count = ctx.val(1) & (63 if width == 64 else 31)
    value = ctx.val(0)
    mnem = ctx.form.mnemonic
    if mnem == "SHL":
        result = value << count
    elif mnem == "SHR":
        result = value >> count
    elif mnem == "SAR":
        result = _signed(value, width) >> count
    elif mnem == "ROL":
        count %= width
        result = (value << count) | (value >> (width - count)) \
            if count else value
    else:  # ROR
        count %= width
        result = (value >> count) | (value << (width - count)) \
            if count else value
    result &= _MASK[width]
    flags = {f: v for f, v in _arith_flags(result, width).items()
             if f in ctx.form.flags_written}
    return {0: result}, flags


@_handler("IMUL", "MUL")
def _h_mul(ctx):
    form = ctx.form
    width = form.operands[0].width
    if form.category == "mul1":
        src = ctx.val(0)
        acc = ctx.val(1)
        product = src * acc
        lo = product & _MASK[width]
        hi = (product >> width) & _MASK[width]
        carry = 1 if hi else 0
        return (
            {1: lo, 2: hi},
            _arith_flags(product, width, carry, carry),
        )
    explicit = [i for i, s in enumerate(form.operands)
                if s.kind != OperandKind.IMM]
    if len(form.explicit_operands) == 3:
        product = ctx.val(1) * ctx.val(2)
    else:
        product = ctx.val(0) * ctx.val(1)
    return {0: product & _MASK[width]}, _arith_flags(product, width)


@_handler("DIV", "IDIV")
def _h_div(ctx):
    width = ctx.form.operands[0].width
    divisor = ctx.val(0)
    acc = ctx.val(1)
    hi = ctx.val(2)
    dividend = (hi << width) | acc
    if divisor == 0:
        quotient = ctx.opaque(1)
        remainder = ctx.opaque(2)
    else:
        quotient = dividend // divisor
        remainder = dividend % divisor
    return (
        {1: quotient & _MASK[width], 2: remainder & _MASK[width]},
        _arith_flags(quotient, width),
    )


@_handler("BSWAP")
def _h_bswap(ctx):
    width = ctx.width
    value = ctx.val(0)
    swapped = int.from_bytes(
        value.to_bytes(width // 8, "little"), "big"
    )
    return {0: swapped}, {}


@_handler("XCHG")
def _h_xchg(ctx):
    return {0: ctx.val(1), 1: ctx.val(0)}, {}


@_handler("XADD")
def _h_xadd(ctx):
    width = ctx.width
    total = ctx.val(0) + ctx.val(1)
    carry = 1 if total > _MASK[width] else 0
    return {0: total & _MASK[width], 1: ctx.val(0)}, \
        _arith_flags(total, width, carry)


@_handler("CBW", "CWDE", "CDQE")
def _h_cbw(ctx):
    width = ctx.form.operands[0].width
    return {0: _signed(ctx.val(0), width // 2) & _MASK[width]}, {}


@_handler("CWD", "CDQ", "CQO")
def _h_cwd(ctx):
    width = ctx.form.operands[0].width
    sign = _sign(ctx.val(0), width)
    return {1: _MASK[width] if sign else 0}, {}


@_handler("CMC")
def _h_cmc(ctx):
    return {}, {"CF": 1 - ctx.state.flags["CF"]}


@_handler("STC")
def _h_stc(ctx):
    return {}, {"CF": 1}


@_handler("CLC")
def _h_clc(ctx):
    return {}, {"CF": 0}


@_handler("SAHF")
def _h_sahf(ctx):
    ah = ctx.val(0)
    return {}, {
        "CF": ah & 1,
        "PF": (ah >> 2) & 1,
        "AF": (ah >> 4) & 1,
        "ZF": (ah >> 6) & 1,
        "SF": (ah >> 7) & 1,
    }


@_handler("PXOR", "VPXOR", "XORPS", "XORPD", "VXORPS", "VXORPD")
def _h_vec_xor(ctx):
    if len(ctx.form.explicit_operands) == 3:
        return {0: ctx.val(1) ^ ctx.val(2)}, {}
    return {0: ctx.val(0) ^ ctx.val(1)}, {}


@_handler("PAND", "VPAND", "ANDPS", "ANDPD", "VANDPS", "VANDPD")
def _h_vec_and(ctx):
    if len(ctx.form.explicit_operands) == 3:
        return {0: ctx.val(1) & ctx.val(2)}, {}
    return {0: ctx.val(0) & ctx.val(1)}, {}


@_handler("POR", "VPOR", "ORPS", "ORPD", "VORPS", "VORPD")
def _h_vec_or(ctx):
    if len(ctx.form.explicit_operands) == 3:
        return {0: ctx.val(1) | ctx.val(2)}, {}
    return {0: ctx.val(0) | ctx.val(1)}, {}


@_handler("PUSH", "POP", "CALL", "RET")
def _h_stack(ctx):
    # Value movement and the RSP update happen in evaluate()'s
    # stack-engine block; the handler itself writes nothing.
    return {}, {}


def _default_handler(ctx):
    """Opaque deterministic results for unmodeled instructions."""
    outputs = {}
    for i, spec in enumerate(ctx.form.operands):
        if spec.written and spec.kind != OperandKind.MEM:
            outputs[i] = ctx.opaque(i)
        elif spec.written and spec.kind == OperandKind.MEM:
            outputs[i] = ctx.opaque(i)
    # Special cases that make idiom discovery meaningful: comparisons of a
    # register with itself have value-level idiomatic results.
    mnem = ctx.form.mnemonic
    base = mnem[1:] if mnem.startswith("V") else mnem
    if base.startswith(("PCMPEQ", "PCMPGT")) and \
            ctx.instruction.same_register_operands():
        idiom = _MASK[ctx.width] if base.startswith("PCMPEQ") else 0
        outputs = {0: idiom}
    flags = {}
    if ctx.form.flags_written:
        seed = ctx.opaque(99)
        for bit, flag in enumerate(sorted(ctx.form.flags_written)):
            flags[flag] = (seed >> bit) & 1
    return outputs, flags


def _condition_handler(ctx):
    mnem = ctx.form.mnemonic
    for prefix in ("CMOV", "SET", "J"):
        if mnem.startswith(prefix) and mnem[len(prefix):] in _CONDITIONS:
            cc = mnem[len(prefix):]
            break
    else:  # pragma: no cover - guarded by _resolve_handler
        raise AssertionError(mnem)
    taken = _CONDITIONS[cc](ctx.state.flags)
    if mnem.startswith("CMOV"):
        return {0: ctx.val(1) if taken else ctx.val(0)}, {}
    if mnem.startswith("SET"):
        return {0: 1 if taken else 0}, {}
    return {}, {}  # Jcc: not taken in straight-line simulation


def _resolve_handler(form) -> Callable:
    mnem = form.mnemonic
    if mnem in _HANDLERS:
        return _HANDLERS[mnem]
    for prefix in ("CMOV", "SET", "J"):
        if mnem.startswith(prefix) and mnem[len(prefix):] in _CONDITIONS:
            return _condition_handler
    return _default_handler


def evaluate(
    instruction: Instruction, state: MachineState
) -> List[MemAccess]:
    """Execute one instruction architecturally; report memory accesses."""
    form = instruction.form
    accesses: List[MemAccess] = []
    values: List[Optional[int]] = []
    addresses: Dict[int, int] = {}

    # Address generation first (uses pre-instruction register values).
    for i, (spec, op) in enumerate(zip(form.operands, instruction.operands)):
        if isinstance(op, Memory):
            if spec.kind == OperandKind.AGEN:
                raw = op.displacement
                if op.base is not None:
                    raw += state.read_register(op.base)
                if op.index is not None:
                    raw += state.read_register(op.index) * op.scale
                addresses[i] = raw & 0xFFFFFFFFFFFFFFFF
            else:
                addresses[i] = state.effective_address(op)

    # Stack-engine accesses for PUSH/POP-like categories.
    stack_access: Optional[MemAccess] = None
    if form.category in ("push", "call"):
        rsp = state.registers.get("RSP", 0)
        address = scratch_address(rsp - 8)
        stack_access = MemAccess("stack", "W", address, 64)
    elif form.category in ("pop", "ret"):
        rsp = state.registers.get("RSP", 0)
        address = scratch_address(rsp)
        stack_access = MemAccess("stack", "R", address, 64)
    elif form.category == "string_rep":
        rsi = state.registers.get("RSI", 0)
        accesses.append(MemAccess("stack", "R", scratch_address(rsi), 64))
        rdi = state.registers.get("RDI", 0)
        accesses.append(MemAccess("stack", "W", scratch_address(rdi), 64))

    # Gather input values.
    for i, (spec, op) in enumerate(zip(form.operands, instruction.operands)):
        if isinstance(op, RegisterOperand):
            values.append(state.read_register(op.register)
                          if spec.read else None)
        elif isinstance(op, Immediate):
            values.append(op.value & 0xFFFFFFFFFFFFFFFF)
        elif isinstance(op, Memory):
            if spec.kind == OperandKind.AGEN:
                values.append(addresses[i])
            elif spec.read:
                accesses.append(MemAccess(i, "R", addresses[i], spec.width))
                values.append(state.load(addresses[i], spec.width))
            else:
                values.append(None)
        else:
            values.append(None)

    ctx = _Context(instruction, values, state)
    outputs, flags = _resolve_handler(form)(ctx)

    # Write back registers and memory.
    for i, value in outputs.items():
        spec = form.operands[i]
        op = instruction.operands[i]
        if isinstance(op, RegisterOperand):
            state.write_register(op.register, value)
        elif isinstance(op, Memory) and spec.written:
            accesses.append(MemAccess(i, "W", addresses[i], spec.width))
            state.store(addresses[i], value, spec.width)
    for i, (spec, op) in enumerate(zip(form.operands, instruction.operands)):
        if (
            isinstance(op, Memory)
            and spec.written
            and spec.kind == OperandKind.MEM
            and i not in outputs
        ):
            # Written memory slot with no computed value (opaque store).
            value = ctx.opaque(i)
            accesses.append(MemAccess(i, "W", addresses[i], spec.width))
            state.store(addresses[i], value, spec.width)
    for flag, value in flags.items():
        if flag in form.flags_written or not form.flags_written:
            state.flags[flag] = value & 1
    # Flags declared written but not computed get deterministic values.
    for flag in form.flags_written:
        if flag not in flags:
            state.flags[flag] = (ctx.opaque(7) >> hash(flag) % 8) & 1

    # Stack-engine register update and access.
    if stack_access is not None:
        accesses.append(stack_access)
        rsp = state.registers.get("RSP", 0)
        if stack_access.kind == "W":
            pushed = next(
                (v for v in values if v is not None), ctx.opaque(42)
            )
            state.store(stack_access.address, pushed, 64)
            state.registers["RSP"] = (rsp - 8) & 0xFFFFFFFFFFFFFFFF
        else:
            loaded = state.load(stack_access.address, 64)
            for i, (spec, op) in enumerate(
                zip(form.operands, instruction.operands)
            ):
                if (
                    spec.written
                    and spec.fixed != "RSP"
                    and isinstance(op, RegisterOperand)
                ):
                    state.write_register(op.register, loaded)
            state.registers["RSP"] = (rsp + 8) & 0xFFFFFFFFFFFFFFFF
    return accesses
