"""Previously published instruction data, as cited in Section 7.3.

These tables hold what Intel's manuals, Agner Fog's instruction tables, the
LLVM scheduling models, Granlund, AIDA64, and IACA report for the paper's
case-study instructions.  The benchmarks compare the tool's measurements
against them and should reproduce both the agreements and the documented
discrepancies (e.g. Fog's 3 cycles vs. everyone else's 4 for SHLD on
Nehalem — explained by the per-pair latencies lat(R1,R1)=3, lat(R2,R1)=4).
"""

from __future__ import annotations

#: AESDEC XMM1, XMM2 latency, per source (Section 7.3.1).
#: "measured" entries are per-pair; published sources give a single value.
AES_LATENCY = {
    "WSM": {
        "intel_2012": 6,
        "iaca_2.1": 6,
        "aida64": 6,
        "uops": 3,
        "expected_pairs": {("op1", "op1"): 6, ("op2", "op1"): 6},
    },
    "SNB": {
        "intel": 8,
        "fog": 8,
        "aida64": 8,
        "iaca_2.1": 7,
        "llvm": 7,
        "uops": 2,
        "expected_pairs": {("op1", "op1"): 8, ("op2", "op1"): 1},
    },
    "IVB": {
        "intel": 8,
        "fog": 8,
        "aida64": 8,
        "iaca_2.1": 7,
        "llvm": 7,
        "uops": 2,
        "expected_pairs": {("op1", "op1"): 8, ("op2", "op1"): 1},
    },
    "HSW": {
        "intel": 7,
        "fog": 7,
        "iaca": 7,
        "llvm": 7,
        "uops": 1,
        "expected_pairs": {("op1", "op1"): 7, ("op2", "op1"): 7},
    },
}

#: SHLD R1, R2, imm latency (Section 7.3.2).
SHLD_LATENCY = {
    "NHM": {
        "intel": 4,
        "granlund": 4,
        "iaca": 4,
        "aida64": 4,
        "fog": 3,
        "expected_pairs": {("op1", "op1"): 3, ("op2", "op1"): 4},
        "expected_same_register": None,  # Nehalem: no same-reg effect
    },
    "SKL": {
        "intel": 3,
        "llvm": 3,
        "fog": 3,
        "granlund": 1,
        "aida64": 1,
        "expected_pairs": {("op1", "op1"): 3, ("op2", "op1"): 3},
        "expected_same_register": 1,
    },
}

#: MOVQ2DQ port usage on Skylake (Section 7.3.3).
MOVQ2DQ_PORTS = {
    "SKL": {
        "fog": "1*p0 + 1*p15",
        "iaca": "2*p5",
        "llvm": "2*p5",
        "expected": "1*p0 + 1*p015",
    },
}

#: MOVDQ2Q port usage (Section 7.3.4).
MOVDQ2Q_PORTS = {
    "HSW": {
        "iaca_2.1": "1*p5 + 1*p015",
        "iaca_2.2+": "1*p01 + 1*p015",
        "llvm": "1*p01 + 1*p015",
        "fog": "1*p01 + 1*p5",
        "expected": "1*p015 + 1*p5",
    },
    "SNB": {
        "iaca": "1*p015 + 1*p5",
        "llvm": "1*p015 + 1*p5",
        "fog": "2*p015",
        "expected": "1*p015 + 1*p5",
    },
}

#: Instructions with latency differences between operand pairs that the
#: tool should (re)discover (Section 7.3.5).  Non-memory variants.
MULTI_LATENCY_INSTRUCTIONS = (
    "ADC",
    "CMOVBE",
    "CMOVA",
    "IMUL",
    "PSHUFB",
    "ROL",
    "ROR",
    "SAR",
    "SBB",
    "SHL",
    "SHR",
    "MPSADBW",
    "VPBLENDVB",
    "PSLLD",
    "PSRAD",
    "PSRLD",
    "XADD",
    "XCHG",
)

#: Dependency-breaking idioms discovered by the tool that are NOT in the
#: Optimization Manual's list (Section 7.3.6).
UNDOCUMENTED_ZERO_IDIOMS = (
    "PCMPGTB",
    "PCMPGTW",
    "PCMPGTD",
    "PCMPGTQ",
    "VPCMPGTB",
    "VPCMPGTW",
    "VPCMPGTD",
    "VPCMPGTQ",
)
