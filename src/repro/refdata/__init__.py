"""Published reference numbers used by the Section 7.3 case studies."""

from repro.refdata.published import (
    AES_LATENCY,
    MOVDQ2Q_PORTS,
    MOVQ2DQ_PORTS,
    MULTI_LATENCY_INSTRUCTIONS,
    SHLD_LATENCY,
    UNDOCUMENTED_ZERO_IDIOMS,
)

__all__ = [
    "AES_LATENCY",
    "MOVDQ2Q_PORTS",
    "MOVQ2DQ_PORTS",
    "MULTI_LATENCY_INSTRUCTIONS",
    "SHLD_LATENCY",
    "UNDOCUMENTED_ZERO_IDIOMS",
]
