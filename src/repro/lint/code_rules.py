"""RPR1xx: AST checkers for this repository's code contracts.

Each rule encodes an invariant that some subsystem relies on but that no
generic linter can know:

* ``RPR101``/``RPR102`` — the content-key, codec, and cache modules must
  be deterministic: no wall clocks, no entropy sources, no ``id()``, and
  no unordered-set iteration feeding serialized output.
* ``RPR110`` — plan generators (the *plan* stage of the
  plan/execute/interpret split) must stay measurement-free.
* ``RPR112`` — loops must not iterate freshly concatenated sequences
  (the PR-2 ``_next_event`` bug class: a per-call copy of two live
  containers).
* ``RPR113`` — only :mod:`repro.pipeline` / :mod:`repro.measure` may
  construct :class:`~repro.pipeline.core.Core` directly; everything
  else goes through ``build_core`` so timing-tier selection
  (``REPRO_SIM``, ``kernel=``) stays observable and in one place.
* ``RPR120`` — classes crossing the sweep worker queues must not carry
  unpicklable state (lambdas, locks, open handles, generators).
* ``RPR130``/``RPR131`` — the measurement layer raises only the
  ``BackendError`` taxonomy, and no broad ``except`` may silently
  swallow a ``TransientBackendError``.
* ``RPR140``/``RPR141`` — every ``RunStatistics`` counter is rendered
  by ``cli._STATS_LINES``, and every backend snapshot field folded by
  ``fold_snapshot`` has a matching counter (the PR-3 ``zip`` bug class).
* ``RPR150`` — every append-mode ``open()`` outside
  :mod:`repro.core.journal` is a crash-safety bypass: durable appends
  must go through the shared checksummed writer so torn-tail recovery,
  CRCs, durability policy, and crash points cover them.

Facts for the cross-file rules (and for the ``RPR203`` catalog-reference
check in :mod:`repro.lint.model_rules`) are extracted here so they ride
the per-file cache.
"""

from __future__ import annotations

import ast
from itertools import chain
from string import Formatter
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.framework import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Violation,
    fact_extractor,
    file_rule,
    fileset_rule,
    register_rule,
)

#: Modules that build content keys, serialize results, or persist caches.
DETERMINISM_MODULES = (
    "core/cache.py",
    "core/journal.py",
    "core/result.py",
    "core/experiment.py",
)

#: Modules holding the plan stage of the four inference algorithms.
PLAN_MODULES = (
    "core/latency.py",
    "core/port_usage.py",
    "core/throughput.py",
    "core/blocking.py",
)

#: Classes whose instances cross the sweep worker queues (``core/sweep.py``
#: puts them on ``out_queue``).  Fixtures can opt a class in with a
#: ``# repro-lint: queue-crossing`` marker on its ``class`` line.
QUEUE_CLASSES = frozenset(
    {
        ("core/runner.py", "FormFailure"),
        ("core/runner.py", "RunStatistics"),
        ("measure/backend.py", "MeasurementConfig"),
    }
)

QUEUE_MARKER = "repro-lint: queue-crossing"

#: The only exception types the measurement path may construct and raise
#: (plus ``NotImplementedError`` for abstract methods).
ALLOWED_RAISES = frozenset(
    {
        "BackendError",
        "TransientBackendError",
        "PermanentBackendError",
        "BackendTimeout",
        "NotImplementedError",
    }
)

RPR101 = register_rule(
    "RPR101",
    "nondeterministic-call",
    SEVERITY_ERROR,
    "wall clock / entropy / id() call inside a determinism-contract "
    "module",
)
RPR102 = register_rule(
    "RPR102",
    "unordered-set-serialization",
    SEVERITY_ERROR,
    "unordered set iteration or serialization inside a "
    "determinism-contract module",
)
RPR110 = register_rule(
    "RPR110",
    "impure-plan-generator",
    SEVERITY_ERROR,
    "plan generator measures or touches an executor",
)
RPR112 = register_rule(
    "RPR112",
    "loop-over-concatenation",
    SEVERITY_WARNING,
    "loop iterates a freshly concatenated sequence",
)
RPR113 = register_rule(
    "RPR113",
    "direct-core-construction",
    SEVERITY_ERROR,
    "Core constructed outside pipeline/measure; use build_core",
)
RPR120 = register_rule(
    "RPR120",
    "unpicklable-queue-field",
    SEVERITY_ERROR,
    "queue-crossing class stores unpicklable state in a field",
)
RPR130 = register_rule(
    "RPR130",
    "non-taxonomy-raise",
    SEVERITY_ERROR,
    "measurement path raises outside the BackendError taxonomy",
)
RPR131 = register_rule(
    "RPR131",
    "swallowed-transient",
    SEVERITY_ERROR,
    "broad except silently swallows TransientBackendError",
)
RPR140 = register_rule(
    "RPR140",
    "unrendered-stat-counter",
    SEVERITY_ERROR,
    "RunStatistics counter missing from cli._STATS_LINES",
)
RPR141 = register_rule(
    "RPR141",
    "unregistered-snapshot-field",
    SEVERITY_ERROR,
    "snapshot field has no RunStatistics counter for fold_snapshot",
)
RPR150 = register_rule(
    "RPR150",
    "raw-append-outside-journal",
    SEVERITY_ERROR,
    "append-mode open() bypasses the shared crash-safe journal writer",
)


def _dotted(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a","b","c"]`` for pure Name/Attribute chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Descendants of *root* without crossing into nested function or
    class scopes (their bodies have their own contracts)."""
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _violation(rule, path: str, node: ast.AST, message: str) -> Violation:
    return Violation(
        code=rule.code,
        severity=rule.severity,
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
    )


# ---------------------------------------------------------------------------
# RPR101 — determinism: banned calls
# ---------------------------------------------------------------------------

#: (module, attribute) call suffixes that read a wall clock or entropy.
#: ``time.monotonic``/``time.sleep`` stay legal: the flock retry loop in
#: ``core/cache.py`` uses them for pacing, never for key material.
_BANNED_SUFFIXES = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
        ("os", "urandom"),
        ("uuid", "uuid1"),
        ("uuid", "uuid4"),
    }
)


@file_rule(RPR101, DETERMINISM_MODULES)
def check_nondeterministic_calls(
    path: str, tree: ast.AST, lines: Sequence[str]
) -> List[Violation]:
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Name) and node.func.id == "id":
            violations.append(
                _violation(
                    RPR101, path, node,
                    "id() is address-dependent and must not reach "
                    "content keys or serialized output",
                )
            )
            continue
        parts = _dotted(node.func)
        if parts is None or len(parts) < 2:
            continue
        suffix = (parts[-2], parts[-1])
        if suffix in _BANNED_SUFFIXES:
            violations.append(
                _violation(
                    RPR101, path, node,
                    f"call to {'.'.join(parts)} is nondeterministic; "
                    "determinism-contract modules must not read clocks "
                    "or entropy",
                )
            )
        elif parts[0] == "random":
            violations.append(
                _violation(
                    RPR101, path, node,
                    f"call to {'.'.join(parts)} uses the unseeded "
                    "module-level random generator",
                )
            )
    return violations


# ---------------------------------------------------------------------------
# RPR102 — determinism: unordered sets reaching iteration/serialization
# ---------------------------------------------------------------------------


def _is_unordered(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _scan_serialized(node: ast.AST, path: str,
                     out: List[Violation]) -> None:
    if _is_unordered(node):
        out.append(
            _violation(
                RPR102, path, node,
                "unordered set reaches json serialization; wrap it in "
                "sorted(...) to fix the element order",
            )
        )
        return
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    ):
        return  # sorted(...) fixes the order of whatever is inside
    for child in ast.iter_child_nodes(node):
        _scan_serialized(child, path, out)


@file_rule(RPR102, DETERMINISM_MODULES)
def check_set_serialization(
    path: str, tree: ast.AST, lines: Sequence[str]
) -> List[Violation]:
    violations: List[Violation] = []
    for node in ast.walk(tree):
        iters = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters = [node.iter]
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)
        ):
            iters = [gen.iter for gen in node.generators]
        for it in iters:
            if _is_unordered(it):
                violations.append(
                    _violation(
                        RPR102, path, it,
                        "iteration over an unordered set; iterate "
                        "sorted(...) so downstream output is "
                        "deterministic",
                    )
                )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("dump", "dumps")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "json"
        ):
            for arg in chain(
                node.args, (k.value for k in node.keywords)
            ):
                _scan_serialized(arg, path, violations)
    return violations


# ---------------------------------------------------------------------------
# RPR110 — plan purity
# ---------------------------------------------------------------------------


def _has_own_yield(func: ast.AST) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom))
        for node in _own_nodes(func)
    )


@file_rule(RPR110, PLAN_MODULES)
def check_plan_purity(
    path: str, tree: ast.AST, lines: Sequence[str]
) -> List[Violation]:
    violations: List[Violation] = []
    for stmt in getattr(tree, "body", []):
        if isinstance(stmt, ast.ImportFrom) and stmt.module and (
            stmt.module == "repro.measure.executor"
        ):
            violations.append(
                _violation(
                    RPR110, path, stmt,
                    "module-level executor import in a plan module; "
                    "defer it into the one-shot drive wrapper",
                )
            )
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        is_plan = (
            node.name.startswith("plan")
            or node.name.startswith("_plan")
            or _has_own_yield(node)
        )
        if not is_plan:
            continue
        for inner in _own_nodes(node):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr.startswith("measure")
            ):
                violations.append(
                    _violation(
                        RPR110, path, inner,
                        f"plan generator {node.name}() calls "
                        f".{inner.func.attr}(); measurements must flow "
                        "through the yielded batch",
                    )
                )
            elif isinstance(inner, ast.Name) and inner.id in (
                "measure_isolated",
                "ExperimentExecutor",
            ):
                violations.append(
                    _violation(
                        RPR110, path, inner,
                        f"plan generator {node.name}() references "
                        f"{inner.id}; plans must not execute",
                    )
                )
    return violations


# ---------------------------------------------------------------------------
# RPR112 — loops over fresh concatenations
# ---------------------------------------------------------------------------


@file_rule(RPR112)
def check_concat_loops(
    path: str, tree: ast.AST, lines: Sequence[str]
) -> List[Violation]:
    violations = []
    for node in ast.walk(tree):
        iters = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters = [node.iter]
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)
        ):
            iters = [gen.iter for gen in node.generators]
        for it in iters:
            if isinstance(it, ast.BinOp) and isinstance(it.op, ast.Add):
                violations.append(
                    _violation(
                        RPR112, path, it,
                        "loop iterates a freshly concatenated sequence "
                        "(builds a throwaway copy each call); iterate "
                        "itertools.chain(...) over the live containers",
                    )
                )
    return violations


# ---------------------------------------------------------------------------
# RPR113 — Core construction outside the timing-tier entry point
# ---------------------------------------------------------------------------

#: Modules allowed to construct :class:`Core` directly: the pipeline
#: itself and the measurement layer that owns tier selection.
_CORE_CONSTRUCTION_PREFIXES = ("pipeline/", "measure/")


def _in_core_layer(path: str) -> bool:
    return any(
        f"/{prefix}" in path or path.startswith(prefix)
        for prefix in _CORE_CONSTRUCTION_PREFIXES
    )


@file_rule(RPR113)
def check_direct_core_construction(
    path: str, tree: ast.AST, lines: Sequence[str]
) -> List[Violation]:
    if _in_core_layer(path):
        return []
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        parts = _dotted(node.func)
        if parts and parts[-1] == "Core":
            violations.append(
                _violation(
                    RPR113, path, node,
                    "direct Core construction outside pipeline/measure; "
                    "go through repro.pipeline.core.build_core so "
                    "timing-tier selection (REPRO_SIM, kernel=) stays "
                    "in one place",
                )
            )
    return violations


# ---------------------------------------------------------------------------
# RPR120 — picklability of queue-crossing classes
# ---------------------------------------------------------------------------

_UNPICKLABLE_FACTORIES = frozenset(
    {"Lock", "RLock", "Event", "Condition", "Semaphore",
     "BoundedSemaphore", "Queue", "open"}
)


def _queue_crossing(path: str, node: ast.ClassDef,
                    lines: Sequence[str]) -> bool:
    if any(
        path.endswith(suffix) and node.name == name
        for suffix, name in QUEUE_CLASSES
    ):
        return True
    def_line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
    return QUEUE_MARKER in def_line


@file_rule(RPR120)
def check_queue_picklability(
    path: str, tree: ast.AST, lines: Sequence[str]
) -> List[Violation]:
    violations: List[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not _queue_crossing(path, node, lines):
            continue
        for stmt in node.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = stmt.value
            if value is None:
                continue
            for inner in ast.walk(value):
                reason = None
                if isinstance(inner, ast.Lambda):
                    reason = "a lambda (unpicklable as instance state)"
                elif isinstance(inner, ast.GeneratorExp):
                    reason = "a generator (unpicklable)"
                elif isinstance(inner, ast.Call):
                    parts = _dotted(inner.func)
                    if parts and parts[-1] in _UNPICKLABLE_FACTORIES:
                        reason = (
                            f"{'.'.join(parts)}() (locks, queues, and "
                            "open handles do not pickle)"
                        )
                if reason is not None:
                    violations.append(
                        _violation(
                            RPR120, path, inner,
                            f"queue-crossing class {node.name} stores "
                            f"{reason} in a field default",
                        )
                    )
    return violations


# ---------------------------------------------------------------------------
# RPR130 — measurement-path raise taxonomy
# ---------------------------------------------------------------------------


def _in_measure_layer(path: str) -> bool:
    return "/measure/" in path or path.startswith("measure/")


def _measurement_functions(
    tree: ast.AST,
) -> Iterator[ast.AST]:
    """Functions bound by the taxonomy contract: ``measure*`` /
    ``_measure*`` / ``_dispatch*`` functions anywhere, plus every method
    of a ``*Backend`` class."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name.endswith(
            "Backend"
        ):
            for stmt in node.body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield stmt
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name.lstrip("_").startswith(
                "measure"
            ) or node.name.startswith("_dispatch"):
                yield node


@file_rule(RPR130)
def check_raise_taxonomy(
    path: str, tree: ast.AST, lines: Sequence[str]
) -> List[Violation]:
    if not _in_measure_layer(path):
        return []
    violations: List[Violation] = []
    seen: set = set()
    for func in _measurement_functions(tree):
        if func in seen:
            continue
        seen.add(func)
        for node in _own_nodes(func):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            if not isinstance(node.exc, ast.Call):
                continue  # re-raise of a caught object
            parts = _dotted(node.exc.func)
            if parts is None:
                continue
            if parts[-1] not in ALLOWED_RAISES:
                violations.append(
                    _violation(
                        RPR130, path, node,
                        f"measurement path raises {parts[-1]}; only "
                        "the BackendError taxonomy may cross this "
                        "layer (retry/quarantine dispatch on it)",
                    )
                )
    return violations


# ---------------------------------------------------------------------------
# RPR131 — broad except swallowing transients
# ---------------------------------------------------------------------------


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(
        isinstance(t, ast.Name) and t.id in ("Exception", "BaseException")
        for t in types
    )


@file_rule(RPR131)
def check_swallowed_transients(
    path: str, tree: ast.AST, lines: Sequence[str]
) -> List[Violation]:
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler) or not _is_broad(node):
            continue
        body_nodes = []
        for stmt in node.body:
            body_nodes.append(stmt)
            body_nodes.extend(_own_nodes(stmt))
        reraises = any(isinstance(n, ast.Raise) for n in body_nodes)
        uses_error = node.name is not None and any(
            isinstance(n, ast.Name) and n.id == node.name
            for n in body_nodes
        )
        if not reraises and not uses_error:
            violations.append(
                _violation(
                    RPR131, path, node,
                    "broad except neither re-raises nor records the "
                    "error; a TransientBackendError would be silently "
                    "swallowed instead of retried",
                )
            )
    return violations


# ---------------------------------------------------------------------------
# Facts for the cross-file stats rules and the catalog-reference check
# ---------------------------------------------------------------------------


def _class_fields(node: ast.ClassDef) -> List[str]:
    fields = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            fields.append(stmt.target.id)
    return fields


def _template_fields(template: str) -> List[str]:
    fields = []
    for _, name, _, _ in Formatter().parse(template):
        if not name:
            continue
        base = name.split(".")[0].split("[")[0]
        if base and not base.isdigit():
            fields.append(base)
    return fields


@fact_extractor
def extract_stats_facts(path: str, tree: ast.AST) -> Dict[str, Any]:
    facts: Dict[str, Any] = {}
    snapshots: Dict[str, Any] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if node.name == "RunStatistics":
                facts["run_statistics"] = {
                    "line": node.lineno,
                    "fields": _class_fields(node),
                }
            elif node.name.endswith("Stats") and any(
                isinstance(base, ast.Name) and base.id == "NamedTuple"
                for base in node.bases
            ):
                snapshots[node.name] = {
                    "line": node.lineno,
                    "fields": _class_fields(node),
                }
        elif isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "_STATS_LINES"
            for t in node.targets
        ):
            fields = []
            for inner in ast.walk(node.value):
                if isinstance(inner, ast.Constant) and isinstance(
                    inner.value, str
                ):
                    fields.extend(_template_fields(inner.value))
            facts["stats_lines"] = {
                "line": node.lineno,
                "fields": sorted(set(fields)),
            }
    if snapshots:
        facts["snapshots"] = snapshots
    return facts


@fact_extractor
def extract_catalog_refs(path: str, tree: ast.AST) -> Dict[str, Any]:
    refs: List[Dict[str, Any]] = []

    def literal(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        parts = _dotted(node.func)
        if not parts:
            continue
        name = parts[-1]
        if name in ("by_uid", "forms_for_mnemonic", "get_uarch"):
            if len(node.args) >= 1:
                value = literal(node.args[0])
                if value is not None:
                    kind = {
                        "by_uid": "uid",
                        "forms_for_mnemonic": "mnemonic",
                        "get_uarch": "uarch",
                    }[name]
                    refs.append(
                        {"kind": kind, "value": value,
                         "line": node.lineno}
                    )
        elif name == "override" and len(node.args) == 2:
            uarch = literal(node.args[0])
            uid = literal(node.args[1])
            if uarch is not None:
                refs.append(
                    {"kind": "uarch", "value": uarch,
                     "line": node.lineno}
                )
            if uid is not None:
                refs.append(
                    {"kind": "uid", "value": uid, "line": node.lineno}
                )
    return {"catalog_refs": refs} if refs else {}


# ---------------------------------------------------------------------------
# RPR140 / RPR141 — stats registration (fileset rules)
# ---------------------------------------------------------------------------


def _gather(facts_by_path: Dict[str, Dict[str, Any]],
            key: str) -> List[Tuple[str, Dict[str, Any]]]:
    return [
        (path, facts[key])
        for path, facts in sorted(facts_by_path.items())
        if key in facts
    ]


@fileset_rule(RPR140)
def check_stats_rendered(
    facts_by_path: Dict[str, Dict[str, Any]]
) -> List[Violation]:
    violations = []
    stats = _gather(facts_by_path, "run_statistics")
    lines = _gather(facts_by_path, "stats_lines")
    for lines_path, lines_fact in lines:
        rendered = set(lines_fact["fields"])
        for stats_path, stats_fact in stats:
            for fld in stats_fact["fields"]:
                if fld not in rendered:
                    violations.append(
                        Violation(
                            code=RPR140.code,
                            severity=RPR140.severity,
                            path=lines_path,
                            line=lines_fact["line"],
                            col=1,
                            message=(
                                f"RunStatistics counter {fld!r} "
                                f"(declared in {stats_path}) is not "
                                "rendered by any _STATS_LINES "
                                "template; add a row or placeholder"
                            ),
                        )
                    )
    return violations


# ---------------------------------------------------------------------------
# RPR150 — durable appends go through the shared journal writer
# ---------------------------------------------------------------------------

#: Append modes legal outside :mod:`repro.core.journal`: exactly the
#: lock-file idiom — ``open(lock_path, "a+")`` creates the sibling lock
#: without truncating it and never writes a byte through the handle.
_ALLOWED_APPEND_MODES = frozenset({"a+"})


@file_rule(RPR150)
def check_raw_append(
    path: str, tree: ast.AST, lines: Sequence[str]
) -> List[Violation]:
    """Flag append-mode ``open()`` calls outside the journal module.

    An append that bypasses :func:`repro.core.journal.append_entry`
    gets none of the crash-safety machinery — no per-line CRC, no
    torn-tail self-healing, no durability policy, no crash points —
    so a SIGKILL mid-write silently re-introduces the exact corruption
    class PR 9 eliminated.
    """
    if path.endswith("core/journal.py"):
        return []
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        parts = _dotted(node.func)
        if not parts or parts[-1] != "open":
            continue
        mode: Optional[ast.AST] = (
            node.args[1] if len(node.args) >= 2 else None
        )
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if not (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
        ):
            continue
        if "a" not in mode.value:
            continue
        if mode.value in _ALLOWED_APPEND_MODES:
            continue
        violations.append(
            _violation(
                RPR150, path, node,
                f"open(..., {mode.value!r}) appends outside "
                "repro.core.journal; route durable appends through "
                "journal.append_entry / quarantine_lines ('a+' lock "
                "files are exempt)",
            )
        )
    return violations


@fileset_rule(RPR141)
def check_snapshot_registered(
    facts_by_path: Dict[str, Dict[str, Any]]
) -> List[Violation]:
    violations = []
    stats = _gather(facts_by_path, "run_statistics")
    if not stats:
        return []
    counters: set = set()
    for _, fact in stats:
        counters.update(fact["fields"])
    for path, facts in sorted(facts_by_path.items()):
        for cls, snap in sorted(facts.get("snapshots", {}).items()):
            for fld in snap["fields"]:
                if fld not in counters:
                    violations.append(
                        Violation(
                            code=RPR141.code,
                            severity=RPR141.severity,
                            path=path,
                            line=snap["line"],
                            col=1,
                            message=(
                                f"snapshot field {cls}.{fld} has no "
                                "RunStatistics counter; fold_snapshot "
                                "folds by field name and would fail "
                                "on it"
                            ),
                        )
                    )
    return violations
