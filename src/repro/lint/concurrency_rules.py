"""Concurrency invariants of the persistence layer (RPR160–RPR163).

The crash-safety story of PRs 7 and 9 — a flock-guarded work-stealing
queue, checksummed journals with fenced leases, named crash-injection
sites — rests on invariants the chaos tests can only *sample*:

* every store mutation happens under its owning lock (RPR160);
* the lock classes form an acyclic order, so ``cache gc``, drainers,
  and ``doctor --repair`` cannot deadlock (RPR161);
* every fenced write-through checks token freshness before touching a
  store (RPR162);
* every durable journal write site is named in the ``CRASH_SITES``
  registry, so new write paths cannot escape the crash suite (RPR163).

This module *proves* those invariants statically, the way
``code_rules`` proves the determinism contracts.  The analysis is an
intraprocedural lock-scope inference plus one level of call-graph
reasoning, tuned to this repository's idioms:

* ``flock_bounded(handle, salt=..., name="<class>")`` acquires a lock
  **class** ("queue", "store", "manifest", "quarantine"); statements
  after it in the function run under that class (locks are released in
  ``finally`` blocks at function end — the *linear* model is sound for
  that shape, and conservative otherwise).
* A function that calls one of its parameters under a lock (e.g.
  ``WorkQueue._transaction`` running ``mutate(state)``) is a *callback
  runner*: a nested function passed to it inherits the runner's lock.
* A naked store mutation in a helper is covered when **every**
  in-module call site holds the required lock (the
  ``_write_state``-under-``_transaction`` shape).
* Same-class multi-acquisition (GC holding every queue lock) is legal
  only when the acquiring loop's iterable is provably sorted — the
  global-order argument that makes it deadlock-free.

The statically inferred model is exported via :func:`build_lock_model`
and cross-checked against the dynamic lock/fence trace recorder
(``REPRO_LOCK_TRACE``, :mod:`repro.core.journal`) by the test suite:
disagreement in either direction fails.
"""

from __future__ import annotations

import ast
import itertools
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.code_rules import _dotted, _violation
from repro.lint.framework import (
    SEVERITY_ERROR,
    Violation,
    fact_extractor,
    file_rule,
    fileset_rule,
    register_rule,
)

#: The modules owning durable state; everything else is "above" the
#: persistence layer and may only mutate stores through their APIs.
PERSISTENCE_SUFFIXES = (
    "core/journal.py",
    "core/workqueue.py",
    "core/cache.py",
    "core/doctor.py",
)

#: The trusted writer implementation: journal.py *is* the locking and
#: crash-point machinery, so RPR160's lockset checks do not apply to it
#: (RPR163 covers its write paths instead).
JOURNAL_SUFFIX = "core/journal.py"

#: Journal writer entry points -> 0-based positional index of the
#: ``kind`` argument (for crash-site resolution at call sites).
WRITER_KIND_ARG = {
    "append_entry": 2,
    "publish_blob": 2,
    "quarantine_lines": 3,
}

#: ``publish_blob`` kinds whose callers must hold a transaction lock,
#: and which lock class that is.
PUBLISH_KIND_LOCK = {"queue": "queue", "manifest": "manifest"}

#: Substrings marking a parameter as a fencing token.
FENCE_HINTS = ("fence", "token")

RPR160 = register_rule(
    "RPR160",
    "lockset-violation",
    SEVERITY_ERROR,
    "store mutation reachable outside its owning lock",
)
RPR161 = register_rule(
    "RPR161",
    "lock-order-cycle",
    SEVERITY_ERROR,
    "lock acquisition order admits a deadlock cycle",
)
RPR162 = register_rule(
    "RPR162",
    "unfenced-write-through",
    SEVERITY_ERROR,
    "deposit/write-through path lacks a dominating fence-token check",
)
RPR163 = register_rule(
    "RPR163",
    "uncovered-crash-site",
    SEVERITY_ERROR,
    "journal write site not named in the CRASH_SITES registry",
)


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------


def _expr_calls(node: ast.AST) -> Iterable[ast.Call]:
    """Every Call in *node*, without descending into nested function,
    class, or lambda bodies (they run later, under their own locks)."""
    stack = list(ast.iter_child_nodes(node))
    if isinstance(node, ast.Call):
        yield node
    while stack:
        current = stack.pop()
        if isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
        ):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


def _all_calls(tree: ast.AST) -> Iterable[ast.Call]:
    """Every Call anywhere in *tree*, nested scopes included."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def _const_kwarg(call: ast.Call, name: str) -> Optional[str]:
    for keyword in call.keywords:
        if keyword.arg == name and isinstance(keyword.value, ast.Constant):
            if isinstance(keyword.value.value, str):
                return keyword.value.value
    return None


def _has_kwarg(call: ast.Call, name: str) -> bool:
    return any(keyword.arg == name for keyword in call.keywords)


def _writer_kind(call: ast.Call, writer: str) -> Optional[str]:
    """The literal ``kind`` a writer call passes: a string, ``None``
    when omitted (the writer's default applies), or ``"?"`` when passed
    but not a literal (unresolvable — skipped, never guessed)."""
    for keyword in call.keywords:
        if keyword.arg == "kind":
            if isinstance(keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str
            ):
                return keyword.value.value
            return "?"
    index = WRITER_KIND_ARG[writer]
    if len(call.args) > index:
        node = call.args[index]
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return "?"
    return None


def _crash_site_template(call: ast.Call) -> Optional[Tuple[str, str]]:
    """``maybe_crash(f"{kind}.suffix")`` -> ``(param_name, suffix)``;
    ``maybe_crash("literal.site")`` -> ``("", full_site)``."""
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return "", arg.value
    if isinstance(arg, ast.JoinedStr) and len(arg.values) == 2:
        first, second = arg.values
        if (
            isinstance(first, ast.FormattedValue)
            and isinstance(first.value, ast.Name)
            and isinstance(second, ast.Constant)
            and isinstance(second.value, str)
            and second.value.startswith(".")
        ):
            return first.value.id, second.value[1:]
    return None


def _provably_sorted(
    expr: Optional[ast.AST], assigns: Dict[str, ast.AST], depth: int = 4
) -> bool:
    """Whether *expr* provably iterates in one global order: a direct
    ``sorted(...)`` call, or (through up to *depth* hops of local
    assignments) a list comprehension over one."""
    if expr is None or depth <= 0:
        return False
    if isinstance(expr, ast.Call):
        dotted = _dotted(expr.func)
        return bool(dotted) and dotted[-1] == "sorted"
    if isinstance(expr, ast.Name):
        return _provably_sorted(assigns.get(expr.id), assigns, depth - 1)
    if isinstance(expr, ast.ListComp) and len(expr.generators) == 1:
        return _provably_sorted(
            expr.generators[0].iter, assigns, depth - 1
        )
    return False


def _bails_out(body: Sequence[ast.stmt]) -> bool:
    """Whether a branch body aborts the write path (return/raise/
    continue at its top level)."""
    return any(
        isinstance(stmt, (ast.Return, ast.Raise, ast.Continue))
        for stmt in body
    )


def _fence_params(names: Iterable[str]) -> Set[str]:
    return {
        name
        for name in names
        if any(hint in name.lower() for hint in FENCE_HINTS)
    }


# ---------------------------------------------------------------------------
# Per-function lock-scope analysis
# ---------------------------------------------------------------------------


class _FunctionScan:
    """The linear lock model of one function body.

    Tracks the ordered list of lock classes held after each statement
    (acquisitions persist to function end — the repo releases in
    ``finally`` blocks), and records every event the rules care about
    with the held set at that point.
    """

    def __init__(
        self,
        node: ast.AST,
        outer_params: Set[str],
        base_held: Tuple[str, ...] = (),
    ):
        self.node = node
        self.name = getattr(node, "name", "<lambda>")
        self.params = {
            arg.arg
            for arg in itertools.chain(
                node.args.posonlyargs, node.args.args, node.args.kwonlyargs
            )
        }
        self.outer_params = set(outer_params)
        self.param_chain = self.params | self.outer_params
        self.fence_chain = _fence_params(self.param_chain)
        self.base_held = tuple(base_held)
        self.held: List[str] = list(base_held)
        self.assigns: Dict[str, ast.AST] = {}
        self.tainted: Set[str] = set(self.fence_chain)
        self.guarded = False
        #: (lock, line)
        self.acquires: List[Tuple[str, int]] = []
        #: (held, acquired, line)
        self.edges: List[Tuple[str, str, int]] = []
        #: (lock, line) — same-class multi-acquisition without a proof
        self.unsorted: List[Tuple[str, int]] = []
        #: locks whose loop acquisition is provably sorted
        self.ordered: Set[str] = set()
        #: (callee simple name, held, line, arg names)
        self.calls: List[Tuple[str, Tuple[str, ...], int, Tuple[str, ...]]] = []
        #: (param name, held, line, guarded, node)
        self.param_calls: List[
            Tuple[str, Tuple[str, ...], int, bool, ast.Call]
        ] = []
        #: (kind-or-None, held, line, node)
        self.publishes: List[
            Tuple[Optional[str], Tuple[str, ...], int, ast.Call]
        ] = []
        #: (writer, kind-or-None-or-"?", line)
        self.write_calls: List[Tuple[str, Optional[str], int]] = []
        #: (attr, held, line, node)
        self.raw_writes: List[Tuple[str, Tuple[str, ...], int, ast.Call]] = []
        #: (kind, held, line)
        self.trace_writes: List[Tuple[str, Tuple[str, ...], int]] = []
        #: nested function definitions, by name
        self.nested: Dict[str, ast.AST] = {}
        self._walk(node.body, [])

    # -- events --------------------------------------------------------

    def _mentions_tainted(self, expr: ast.AST) -> bool:
        return any(
            isinstance(sub, ast.Name) and sub.id in self.tainted
            for sub in ast.walk(expr)
        )

    def _acquire(self, call: ast.Call, loops: List[Optional[ast.AST]]) -> None:
        lock = _const_kwarg(call, "name") or "store"
        line = call.lineno
        if loops:
            if _provably_sorted(loops[-1], self.assigns):
                self.ordered.add(lock)
            else:
                self.unsorted.append((lock, line))
        elif lock in self.held:
            self.unsorted.append((lock, line))
        if lock not in self.held:
            for held in self.held:
                self.edges.append((held, lock, line))
            self.held.append(lock)
        self.acquires.append((lock, line))

    def _handle_call(
        self, call: ast.Call, loops: List[Optional[ast.AST]]
    ) -> None:
        held = tuple(self.held)
        dotted = _dotted(call.func)
        simple = dotted[-1] if dotted else None
        if simple == "flock_bounded":
            self._acquire(call, loops)
            return
        if simple in WRITER_KIND_ARG:
            kind = _writer_kind(call, simple)
            self.write_calls.append((simple, kind, call.lineno))
            if simple == "publish_blob":
                self.publishes.append((kind, held, call.lineno, call))
        if simple == "trace_event" and call.args:
            first = call.args[0]
            store = _const_kwarg(call, "store")
            if (
                isinstance(first, ast.Constant)
                and first.value == "write"
                and store is not None
            ):
                self.trace_writes.append((store, held, call.lineno))
        if isinstance(call.func, ast.Name):
            if simple in self.param_chain:
                self.param_calls.append(
                    (simple, held, call.lineno, self.guarded, call)
                )
            else:
                argnames = tuple(
                    arg.id for arg in call.args if isinstance(arg, ast.Name)
                )
                self.calls.append((simple, held, call.lineno, argnames))
        elif isinstance(call.func, ast.Attribute):
            base = call.func.value
            attr = call.func.attr
            if attr in ("write", "writelines", "truncate") and isinstance(
                base, ast.Name
            ):
                self.raw_writes.append((attr, held, call.lineno, call))
            elif isinstance(base, ast.Name):
                argnames = tuple(
                    arg.id for arg in call.args if isinstance(arg, ast.Name)
                )
                self.calls.append((attr, held, call.lineno, argnames))

    def _scan_value(
        self, node: Optional[ast.AST], loops: List[Optional[ast.AST]]
    ) -> None:
        if node is None:
            return
        for call in _expr_calls(node):
            self._handle_call(call, loops)

    # -- statement walk ------------------------------------------------

    def _walk(
        self, stmts: Sequence[ast.stmt], loops: List[Optional[ast.AST]]
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.nested[stmt.name] = stmt
                continue
            if isinstance(stmt, ast.ClassDef):
                continue
            if isinstance(stmt, ast.Assign):
                self._scan_value(stmt.value, loops)
                tainting = self._mentions_tainted(stmt.value)
                for target in stmt.targets:
                    elts = (
                        target.elts
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for elt in elts:
                        if isinstance(elt, ast.Name):
                            self.assigns[elt.id] = stmt.value
                            if tainting:
                                self.tainted.add(elt.id)
                continue
            if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                self._scan_value(stmt.value, loops)
                continue
            if isinstance(stmt, ast.If):
                self._scan_value(stmt.test, loops)
                if (
                    self.fence_chain
                    and self._mentions_tainted(stmt.test)
                    and _bails_out(stmt.body)
                ):
                    self.guarded = True
                self._walk(stmt.body, loops)
                self._walk(stmt.orelse, loops)
                continue
            if isinstance(stmt, ast.For):
                self._scan_value(stmt.iter, loops)
                self._walk(stmt.body, loops + [stmt.iter])
                self._walk(stmt.orelse, loops)
                continue
            if isinstance(stmt, ast.While):
                self._scan_value(stmt.test, loops)
                self._walk(stmt.body, loops + [None])
                self._walk(stmt.orelse, loops)
                continue
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._scan_value(item.context_expr, loops)
                self._walk(stmt.body, loops)
                continue
            if isinstance(stmt, ast.Try):
                self._walk(stmt.body, loops)
                for handler in stmt.handlers:
                    self._walk(handler.body, loops)
                self._walk(stmt.orelse, loops)
                self._walk(stmt.finalbody, loops)
                continue
            for child in ast.iter_child_nodes(stmt):
                self._scan_value(child, loops)


# ---------------------------------------------------------------------------
# Module-level assembly: callbacks, caller coverage
# ---------------------------------------------------------------------------


class _ModuleScan:
    """Every function of a module analyzed, with the two one-level
    interprocedural refinements applied:

    * nested functions passed to a *callback runner* (a function that
      calls one of its parameters under a lock) are re-analyzed with
      the runner's lock as their base held set;
    * events with an empty held set inherit the **common** held set of
      all in-module call sites of their enclosing function (``None``
      when the function is never called locally).
    """

    def __init__(self, tree: ast.AST):
        self.scans: List[_FunctionScan] = []
        #: module-level function name -> scan (for the cross-module map)
        self.module_functions: Dict[str, _FunctionScan] = {}
        self._collect(tree, set(), top_level=True)
        self._apply_runner_inheritance()
        self.caller_held = self._common_caller_held()

    def _collect(
        self, root: ast.AST, outer_params: Set[str], top_level: bool
    ) -> None:
        for node in ast.iter_child_nodes(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scan = _FunctionScan(node, outer_params)
                self.scans.append(scan)
                if top_level:
                    self.module_functions.setdefault(node.name, scan)
                self._collect(
                    node, outer_params | scan.params, top_level=False
                )
            elif isinstance(node, ast.ClassDef):
                for method in ast.iter_child_nodes(node):
                    if isinstance(
                        method, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        scan = _FunctionScan(method, set())
                        self.scans.append(scan)
                        self._collect(
                            method, scan.params, top_level=False
                        )

    def _apply_runner_inheritance(self) -> None:
        runner_held: Dict[str, Tuple[str, ...]] = {}
        for scan in self.scans:
            for _pname, held, _line, _guarded, _node in scan.param_calls:
                if held:
                    runner_held.setdefault(scan.name, held)
        if not runner_held:
            return
        replacements: Dict[ast.AST, _FunctionScan] = {}
        for scan in self.scans:
            for callee, _held, _line, argnames in scan.calls:
                base = runner_held.get(callee)
                if base is None:
                    continue
                for argname in argnames:
                    nested = scan.nested.get(argname)
                    if nested is not None:
                        replacements[nested] = _FunctionScan(
                            nested,
                            scan.params | scan.outer_params,
                            base_held=base,
                        )
        if replacements:
            self.scans = [
                replacements.get(scan.node, scan) for scan in self.scans
            ]

    def _common_caller_held(self) -> Dict[str, Optional[Set[str]]]:
        sites: Dict[str, List[Set[str]]] = {}
        for scan in self.scans:
            for callee, held, _line, _argnames in scan.calls:
                sites.setdefault(callee, []).append(set(held))
        common: Dict[str, Optional[Set[str]]] = {}
        for callee, helds in sites.items():
            merged = set(helds[0])
            for held in helds[1:]:
                merged &= held
            common[callee] = merged
        return common

    def effective_held(
        self, scan: _FunctionScan, held: Tuple[str, ...]
    ) -> Tuple[str, ...]:
        """*held* itself when non-empty, else the locks every in-module
        caller of the function provably holds."""
        if held:
            return held
        inherited = self.caller_held.get(scan.name)
        if inherited:
            return tuple(sorted(inherited))
        return ()


def _scan_module(tree: ast.AST) -> _ModuleScan:
    return _ModuleScan(tree)


# ---------------------------------------------------------------------------
# Journal writer + crash registry extraction
# ---------------------------------------------------------------------------


def _journal_writers(tree: ast.AST) -> Dict[str, Dict[str, Any]]:
    """Per top-level function of journal.py: crash-site templates, the
    ``kind`` parameter and its default, the internal flock class, and
    whether the function writes durable bytes (binary-append open or an
    atomic ``os.replace`` publish)."""
    writers: Dict[str, Dict[str, Any]] = {}
    for node in ast.iter_child_nodes(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        args = node.args
        params = [
            arg.arg
            for arg in itertools.chain(args.posonlyargs, args.args)
        ]
        defaults = list(args.defaults)
        default_by_param: Dict[str, Any] = {}
        for param, default in zip(params[len(params) - len(defaults):],
                                  defaults):
            if isinstance(default, ast.Constant):
                default_by_param[param] = default.value
        suffixes: Set[str] = set()
        fixed_sites: Set[str] = set()
        kind_param = None
        lock = None
        durable = False
        for call in _expr_calls(node):
            dotted = _dotted(call.func)
            simple = dotted[-1] if dotted else None
            if simple in ("maybe_crash", "_crash_armed"):
                template = _crash_site_template(call)
                if template is None:
                    continue
                param, suffix = template
                if param:
                    kind_param = param
                    suffixes.add(suffix)
                else:
                    fixed_sites.add(suffix)
            elif simple == "flock_bounded":
                lock = _const_kwarg(call, "name") or "store"
            elif simple == "open" and len(call.args) >= 2:
                mode = call.args[1]
                if isinstance(mode, ast.Constant) and mode.value in (
                    "ab", "ab+"
                ):
                    durable = True
            elif simple == "replace" and dotted[:-1] == ["os"]:
                durable = True
        kind_default = default_by_param.get(kind_param or "kind")
        writers[node.name] = {
            "kind_param": kind_param,
            "kind_default": (
                kind_default if isinstance(kind_default, str) else None
            ),
            "suffixes": sorted(suffixes),
            "fixed_sites": sorted(fixed_sites),
            "lock": lock,
            "durable": durable,
            "line": node.lineno,
        }
    return writers


def _crash_registry(tree: ast.AST) -> Optional[Dict[str, Any]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "CRASH_SITES"
            for target in node.targets
        ):
            continue
        if isinstance(node.value, (ast.Tuple, ast.List)):
            sites = [
                elt.value
                for elt in node.value.elts
                if isinstance(elt, ast.Constant)
                and isinstance(elt.value, str)
            ]
            return {"sites": sorted(sites), "line": node.lineno}
    return None


def _is_persistence(posix_path: str) -> bool:
    return any(posix_path.endswith(s) for s in PERSISTENCE_SUFFIXES)


# ---------------------------------------------------------------------------
# Facts
# ---------------------------------------------------------------------------


@fact_extractor
def extract_concurrency_facts(
    posix_path: str, tree: ast.AST
) -> Dict[str, Any]:
    """Concurrency facts for the fileset rules and the exported model.

    All values are JSON-serializable and deterministically ordered, so
    they round-trip through the per-file lint cache.
    """
    facts: Dict[str, Any] = {}
    write_calls: List[List[Any]] = []
    for call in _all_calls(tree):
        dotted = _dotted(call.func)
        simple = dotted[-1] if dotted else None
        if simple in WRITER_KIND_ARG:
            write_calls.append(
                [simple, _writer_kind(call, simple), call.lineno]
            )
    if write_calls:
        facts["conc_write_calls"] = sorted(
            write_calls, key=lambda item: (item[2], item[0])
        )
    registry = _crash_registry(tree)
    if registry is not None:
        facts["conc_crash_registry"] = registry
    if posix_path.endswith(JOURNAL_SUFFIX):
        facts["conc_writers"] = _journal_writers(tree)
    if not _is_persistence(posix_path):
        return facts

    module = _scan_module(tree)
    locks: Dict[str, List[str]] = {}
    for name, scan in sorted(module.module_functions.items()):
        acquired = sorted({lock for lock, _line in scan.acquires})
        if acquired:
            locks[name] = acquired
    edges: Set[Tuple[str, str, int]] = set()
    calls: List[List[Any]] = []
    unsorted: List[List[Any]] = []
    ordered: Set[str] = set()
    publishes: List[List[Any]] = []
    trace_writes: List[List[Any]] = []
    for scan in module.scans:
        edges.update(scan.edges)
        ordered.update(scan.ordered)
        for lock, line in scan.unsorted:
            unsorted.append([lock, line])
        for callee, held, line, _argnames in scan.calls:
            if held:
                calls.append([callee, list(held), line])
        for pname, held, line, _guarded, _node in scan.param_calls:
            # The fenced write-through contract: a callback run under a
            # lock in a fence-carrying scope is a store append.
            if held and scan.fence_chain:
                edges.add((held[-1], "store", line))
        for kind, held, line, _node in scan.publishes:
            if kind in (None, "?"):
                continue
            effective = module.effective_held(scan, held)
            publishes.append([kind, list(effective), line])
        for kind, held, line in scan.trace_writes:
            effective = module.effective_held(scan, held)
            trace_writes.append([kind, list(effective), line])
    if locks:
        facts["conc_locks"] = locks
    if edges:
        facts["conc_edges"] = [
            list(edge) for edge in sorted(edges)
        ]
    if calls:
        facts["conc_calls"] = sorted(
            calls, key=lambda item: (item[2], item[0])
        )
    if unsorted:
        facts["conc_unsorted"] = sorted(
            unsorted, key=lambda item: (item[1], item[0])
        )
    if ordered:
        facts["conc_ordered"] = sorted(ordered)
    if publishes:
        facts["conc_publishes"] = sorted(
            publishes, key=lambda item: (item[2], item[0])
        )
    if trace_writes:
        facts["conc_trace_writes"] = sorted(
            trace_writes, key=lambda item: (item[2], item[0])
        )
    return facts


# ---------------------------------------------------------------------------
# RPR160 — lockset violations
# ---------------------------------------------------------------------------


@file_rule(RPR160)
def check_locksets(
    posix_path: str, tree: ast.AST, lines: Sequence[str]
) -> Iterable[Violation]:
    """Store mutations must happen under their owning lock.

    In the persistence modules (journal.py excepted — it *implements*
    the locking), a ``publish_blob`` of a queue/manifest state needs
    the matching transaction lock held (directly, or by every in-module
    caller), and raw ``write``/``truncate`` calls on store handles need
    *some* flock.  Outside the persistence layer, calling
    ``publish_blob`` at all is a layering violation: whole-file states
    are queue/manifest internals (appends have a sanctioned public
    path, ``journal.append_entry`` — see RPR150).
    """
    if posix_path.endswith(JOURNAL_SUFFIX):
        return []
    violations: List[Violation] = []
    if not _is_persistence(posix_path):
        for call in _all_calls(tree):
            dotted = _dotted(call.func)
            if dotted and dotted[-1] == "publish_blob":
                violations.append(
                    _violation(
                        RPR160,
                        posix_path,
                        call,
                        "publish_blob() outside the persistence layer: "
                        "whole-file states are owned by WorkQueue / "
                        "SweepManifest; mutate stores through their APIs",
                    )
                )
        return violations
    module = _scan_module(tree)
    for scan in module.scans:
        for kind, held, _line, node in scan.publishes:
            required = PUBLISH_KIND_LOCK.get(kind or "")
            if required is None:
                continue
            effective = module.effective_held(scan, held)
            if required not in effective:
                violations.append(
                    _violation(
                        RPR160,
                        posix_path,
                        node,
                        f"publish_blob(kind={kind!r}) reachable without "
                        f"the {required!r} lock: hold it here, or in "
                        "every caller of this helper",
                    )
                )
        for attr, held, _line, node in scan.raw_writes:
            effective = module.effective_held(scan, held)
            if not effective:
                violations.append(
                    _violation(
                        RPR160,
                        posix_path,
                        node,
                        f"raw .{attr}() on a store handle outside any "
                        "flock: concurrent writers can interleave "
                        "mid-record",
                    )
                )
    return violations


# ---------------------------------------------------------------------------
# RPR161 — lock-order graph and cycle detection
# ---------------------------------------------------------------------------


def _assemble_lock_graph(
    facts_by_path: Dict[str, Dict[str, Any]],
):
    """The global lock-order graph: intra-file edges plus one level of
    cross-file call resolution (a call under lock H to a module-level
    function that acquires X contributes H -> X).

    Returns ``(edges, same_class, unsorted, ordered)`` where *edges*
    maps ``(held, acquired)`` to the first ``(path, line)`` witnessing
    it, and *same_class* lists held-lock re-acquisitions through
    callees.
    """
    function_locks: Dict[str, Set[str]] = {}
    for path in sorted(facts_by_path):
        for name, locks in (
            facts_by_path[path].get("conc_locks") or {}
        ).items():
            function_locks.setdefault(name, set()).update(locks)
    edges: Dict[Tuple[str, str], Tuple[str, int]] = {}
    same_class: List[Tuple[str, str, str, int]] = []
    unsorted: List[Tuple[str, str, int]] = []
    ordered: Set[str] = set()
    for path in sorted(facts_by_path):
        facts = facts_by_path[path]
        for held, acquired, line in facts.get("conc_edges") or ():
            edges.setdefault((held, acquired), (path, line))
        for lock, line in facts.get("conc_unsorted") or ():
            unsorted.append((lock, path, line))
        ordered.update(facts.get("conc_ordered") or ())
        for callee, held, line in facts.get("conc_calls") or ():
            for lock in sorted(function_locks.get(callee, ())):
                for holder in held:
                    if holder == lock:
                        same_class.append((callee, lock, path, line))
                    else:
                        edges.setdefault((holder, lock), (path, line))
    return edges, same_class, unsorted, ordered


def _find_cycle_edges(
    edges: Dict[Tuple[str, str], Tuple[str, int]],
) -> List[Tuple[Tuple[str, str], List[str]]]:
    """Every edge that closes a cycle, with one witnessing path back."""
    adjacency: Dict[str, List[str]] = {}
    for held, acquired in edges:
        adjacency.setdefault(held, []).append(acquired)
    for targets in adjacency.values():
        targets.sort()

    def path_back(start: str, goal: str) -> Optional[List[str]]:
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for target in reversed(adjacency.get(node, ())):
                if target not in seen:
                    seen.add(target)
                    stack.append((target, path + [target]))
        return None

    closing = []
    for held, acquired in sorted(edges):
        back = path_back(acquired, held)
        if back is not None:
            closing.append(((held, acquired), back))
    return closing


@fileset_rule(RPR161)
def check_lock_order(
    facts_by_path: Dict[str, Dict[str, Any]],
) -> Iterable[Violation]:
    """The lock classes must form a partial order.

    Any cycle in the assembled graph is a deadlock two concurrent
    processes can realize (``cache gc`` vs. a drainer vs. ``doctor
    --repair``); same-class multi-acquisition needs a provably sorted
    acquisition order to be deadlock-free.
    """
    edges, same_class, unsorted, _ordered = _assemble_lock_graph(
        facts_by_path
    )
    violations: List[Violation] = []

    def anchored(path: str, line: int, message: str) -> Violation:
        return Violation(
            code=RPR161.code,
            severity=RPR161.severity,
            path=path,
            line=line,
            col=1,
            message=message,
        )

    for lock, path, line in sorted(unsorted, key=lambda i: (i[1], i[2])):
        violations.append(
            anchored(
                path,
                line,
                f"multiple {lock!r} locks acquired in an order that is "
                "not provably sorted: concurrent multi-acquirers can "
                "deadlock (iterate a sorted() listing)",
            )
        )
    for callee, lock, path, line in sorted(
        same_class, key=lambda i: (i[2], i[3])
    ):
        violations.append(
            anchored(
                path,
                line,
                f"{callee}() acquires the {lock!r} lock class while the "
                "caller already holds it: same-class nesting deadlocks "
                "when the two acquisitions hit different files",
            )
        )
    for (held, acquired), back in _find_cycle_edges(edges):
        path, line = edges[(held, acquired)]
        cycle = " -> ".join([held, acquired] + back[1:])
        violations.append(
            anchored(
                path,
                line,
                f"lock-order cycle: acquiring {acquired!r} while "
                f"holding {held!r} closes the cycle {cycle}; two "
                "processes taking these in opposite order deadlock",
            )
        )
    return violations


# ---------------------------------------------------------------------------
# RPR162 — fencing-token flow
# ---------------------------------------------------------------------------


@file_rule(RPR162)
def check_fencing(
    posix_path: str, tree: ast.AST, lines: Sequence[str]
) -> Iterable[Violation]:
    """Every fenced write-through dominates on a freshness check.

    A function whose parameter scope carries a fencing token and which
    invokes a callable parameter (the store write-through) must test
    the token (or a value derived from it) and bail out *before* the
    call.  Call sites of ``.deposit(...)`` must pass a real token — a
    name or attribute mentioning ``fence``/``token`` — not a constant.
    """
    quick = any(
        any(hint in line for hint in FENCE_HINTS) for line in lines
    )
    violations: List[Violation] = []
    if quick:
        module = _scan_module(tree)
        for scan in module.scans:
            if not scan.fence_chain:
                continue
            fence_names = ", ".join(sorted(scan.fence_chain))
            for pname, _held, _line, guarded, node in scan.param_calls:
                if not guarded:
                    violations.append(
                        _violation(
                            RPR162,
                            posix_path,
                            node,
                            f"write-through callback {pname}() runs "
                            "without a dominating freshness check of "
                            f"the fencing token ({fence_names}): a "
                            "zombie holder of a stolen lease can "
                            "corrupt the store",
                        )
                    )
    for call in _all_calls(tree):
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "deposit"
        ):
            continue
        fence_arg: Optional[ast.AST] = None
        for keyword in call.keywords:
            if keyword.arg == "fence":
                fence_arg = keyword.value
        if fence_arg is None and len(call.args) > 2:
            fence_arg = call.args[2]
        if fence_arg is None:
            continue
        dotted = _dotted(fence_arg)
        token_like = bool(dotted) and any(
            any(hint in part.lower() for hint in FENCE_HINTS)
            for part in dotted
        )
        if not token_like:
            violations.append(
                _violation(
                    RPR162,
                    posix_path,
                    fence_arg,
                    "deposit() fence argument is not a fencing token "
                    "(pass the unit's fence/token, never a constant "
                    "or unrelated value)",
                )
            )
    return violations


# ---------------------------------------------------------------------------
# RPR163 — crash-site coverage
# ---------------------------------------------------------------------------


def _expected_sites(
    facts_by_path: Dict[str, Dict[str, Any]],
    writers: Dict[str, Dict[str, Any]],
):
    """Crash sites the tree's write calls actually reach: for every
    call of a journal writer with resolvable kind K, the writer's
    ``{K}.{suffix}`` templates (plus any literal sites)."""
    expected: Set[str] = set()
    per_call: List[Tuple[str, int, str, Set[str]]] = []
    for path in sorted(facts_by_path):
        for writer, kind, line in (
            facts_by_path[path].get("conc_write_calls") or ()
        ):
            spec = writers.get(writer)
            if spec is None or kind == "?":
                continue
            resolved = kind if kind is not None else spec["kind_default"]
            if resolved is None:
                continue
            sites = {
                f"{resolved}.{suffix}" for suffix in spec["suffixes"]
            }
            sites.update(spec["fixed_sites"])
            if sites:
                per_call.append((path, line, resolved, sites))
                expected.update(sites)
    for spec in writers.values():
        expected.update(spec["fixed_sites"])
        default = spec["kind_default"]
        if default is not None:
            expected.update(
                f"{default}.{suffix}" for suffix in spec["suffixes"]
            )
    return expected, per_call


@fileset_rule(RPR163)
def check_crash_site_coverage(
    facts_by_path: Dict[str, Dict[str, Any]],
) -> Iterable[Violation]:
    """The ``CRASH_SITES`` registry must match the real write sites.

    Both directions: a journal write whose crash sites are not all
    registered escapes the crash-chaos suite (flagged at the call); a
    registry entry no write site can reach is stale (flagged at the
    registry, only when the whole persistence layer is in the fileset);
    and a durable journal writer with no crash points at all is
    invisible to the harness (flagged at its definition).
    """
    registry = None
    registry_path = None
    writers: Dict[str, Dict[str, Any]] = {}
    writer_paths: List[str] = []
    for path in sorted(facts_by_path):
        facts = facts_by_path[path]
        if registry is None and "conc_crash_registry" in facts:
            registry = facts["conc_crash_registry"]
            registry_path = path
        if "conc_writers" in facts:
            writers.update(facts["conc_writers"])
            writer_paths.append(path)
    if registry is None or not writers:
        return []
    registered = set(registry["sites"])
    violations: List[Violation] = []
    expected, per_call = _expected_sites(facts_by_path, writers)
    for path, line, kind, sites in per_call:
        missing = sorted(sites - registered)
        if missing:
            violations.append(
                Violation(
                    code=RPR163.code,
                    severity=RPR163.severity,
                    path=path,
                    line=line,
                    col=1,
                    message=(
                        f"journal write of kind {kind!r} reaches crash "
                        "sites missing from CRASH_SITES: "
                        + ", ".join(missing)
                        + " — register them so the crash-chaos suite "
                        "covers this path"
                    ),
                )
            )
    for writer_path in writer_paths:
        for name, spec in sorted(
            (facts_by_path[writer_path].get("conc_writers") or {}).items()
        ):
            if (
                spec["durable"]
                and not spec["suffixes"]
                and not spec["fixed_sites"]
            ):
                violations.append(
                    Violation(
                        code=RPR163.code,
                        severity=RPR163.severity,
                        path=writer_path,
                        line=spec["line"],
                        col=1,
                        message=(
                            f"durable writer {name}() declares no "
                            "crash points: every journal write path "
                            "must call maybe_crash() so the chaos "
                            "suite can kill inside it"
                        ),
                    )
                )
    whole_layer = all(
        any(path.endswith(suffix) for path in facts_by_path)
        for suffix in PERSISTENCE_SUFFIXES
    )
    if whole_layer:
        for stale in sorted(registered - expected):
            violations.append(
                Violation(
                    code=RPR163.code,
                    severity=RPR163.severity,
                    path=registry_path,
                    line=registry["line"],
                    col=1,
                    message=(
                        f"CRASH_SITES entry {stale!r} matches no "
                        "actual journal write site: stale registry "
                        "entries hide coverage gaps"
                    ),
                )
            )
    return violations


# ---------------------------------------------------------------------------
# The exported static model (checked against the dynamic trace)
# ---------------------------------------------------------------------------


def build_lock_model(root: Optional[str] = None) -> Dict[str, Any]:
    """Assemble the static lock model from the real persistence layer.

    Returns a dict with:

    * ``edges`` — sorted ``[held, acquired]`` lock-order pairs;
    * ``ordered_self`` — lock classes legally multi-acquired in a
      provably sorted order;
    * ``required_lock`` — store kind -> the lock class that must be
      held when a durable write of that kind happens (derived from the
      writers' internal flocks, publish call sites, and traced
      in-place rewrites);
    * ``locks`` — every known lock class.

    The dynamic oracle (``REPRO_LOCK_TRACE``) is validated against this
    in both directions by the test suite.
    """
    if root is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
    facts_by_path: Dict[str, Dict[str, Any]] = {}
    for rel in itertools.chain(PERSISTENCE_SUFFIXES, ("measure/faults.py",)):
        path = os.path.join(root, *rel.split("/"))
        with open(path, "r", encoding="utf-8") as handle:
            tree = ast.parse(handle.read())
        facts_by_path[rel] = extract_concurrency_facts(rel, tree)
    edges, _same, _unsorted, ordered = _assemble_lock_graph(facts_by_path)
    writers: Dict[str, Dict[str, Any]] = {}
    for facts in facts_by_path.values():
        writers.update(facts.get("conc_writers") or {})
    required: Dict[str, str] = {}
    for path in sorted(facts_by_path):
        facts = facts_by_path[path]
        for writer, kind, _line in facts.get("conc_write_calls") or ():
            spec = writers.get(writer)
            if spec is None or spec["lock"] is None or kind == "?":
                continue
            resolved = kind if kind is not None else spec["kind_default"]
            if resolved is not None:
                required.setdefault(resolved, spec["lock"])
        for kind, held, _line in facts.get("conc_publishes") or ():
            if held:
                required.setdefault(kind, held[-1])
        for kind, held, _line in facts.get("conc_trace_writes") or ():
            if held:
                required.setdefault(kind, held[-1])
    for spec in writers.values():
        if spec["lock"] is not None and spec["kind_default"] is not None:
            required.setdefault(spec["kind_default"], spec["lock"])
    locks = set(ordered) | set(required.values())
    for held, acquired in edges:
        locks.update((held, acquired))
    return {
        "edges": sorted([held, acquired] for held, acquired in edges),
        "ordered_self": sorted(ordered),
        "required_lock": dict(sorted(required.items())),
        "locks": sorted(locks),
    }
