"""The repro-lint engine: rules, suppressions, caching, reports.

The engine is deliberately small: a **file rule** is a function run over
one parsed module (``(path, tree, lines) -> violations``); a **fact
extractor** distills per-file facts (stats counters, snapshot fields,
hard-coded catalog references) that **fileset rules** cross-check after
every file was visited.  Each phase is pure and deterministic: the same
file set produces the same report regardless of traversal order, which
the property tests assert by shuffling.

Per-file results (violations + facts) are cached in a JSON file keyed by
the file's SHA-256 and :data:`LINT_VERSION`, so a CI run on an unchanged
tree skips the AST pass entirely.  Fileset rules re-run from cached
facts — they are cheap dictionary comparisons.

Suppressions are inline and justified::

    risky_line()  # repro-lint: disable=RPR101 (clock feeds a log, not a key)

A suppression without a justification is itself a violation
(:data:`RPR100`): the acceptance bar for this repo is *few* suppressions,
each explaining why the contract is intentionally bent.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Bumped whenever a rule changes behaviour: invalidates every cache
#: entry written by older rule sets.
LINT_VERSION = "2"

#: Severity tiers.  Both fail the run (exit 1); the tier tells a reader
#: whether the finding is a broken contract (``error``) or a smell the
#: contract merely discourages (``warning``).
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: The meta-rule for suppressions without a justification.
RPR100 = "RPR100"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=("
    r"[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
    r"(.*)$"
)


@dataclass(frozen=True)
class Violation:
    """One finding: a rule code anchored to a file position."""

    code: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple:
        return (self.path, self.line, self.col, self.code, self.message)

    def fingerprint(self) -> Tuple[str, str, str]:
        """Identity for ``--baseline`` matching: deliberately excludes
        line/col so accepted findings survive unrelated edits above
        them."""
        return (self.path, self.code, self.message)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Violation":
        return cls(
            code=data["code"],
            severity=data["severity"],
            path=data["path"],
            line=data["line"],
            col=data["col"],
            message=data["message"],
        )


@dataclass(frozen=True)
class Rule:
    """Metadata of one rule code (the catalog ``repro lint --list-rules``
    and ``docs/static-analysis.md`` present)."""

    code: str
    name: str
    severity: str
    summary: str


#: code -> Rule, populated by the registration decorators.
_RULES: Dict[str, Rule] = {}

#: (rule code, path-suffix filter or None, checker) triples.
_FILE_RULES: List[Tuple[Rule, Optional[Tuple[str, ...]], Callable]] = []

#: Per-file fact extractors: ``(posix_path, tree) -> dict``.
_FACT_EXTRACTORS: List[Callable[[str, ast.AST], Dict[str, Any]]] = []

#: Fileset rules: ``(rule, fn(facts_by_path) -> violations)``.
_FILESET_RULES: List[Tuple[Rule, Callable]] = []

_RULES[RPR100] = Rule(
    code=RPR100,
    name="unjustified-suppression",
    severity=SEVERITY_ERROR,
    summary="a repro-lint suppression comment carries no justification",
)

#: Emitted when a file cannot be parsed at all.
RPR999 = "RPR999"
_RULES[RPR999] = Rule(
    code=RPR999,
    name="unparseable-file",
    severity=SEVERITY_ERROR,
    summary="the file does not parse; no rule can check it",
)


def register_rule(code: str, name: str, severity: str,
                  summary: str) -> Rule:
    if code in _RULES:
        raise AssertionError(f"duplicate lint rule code {code}")
    rule = Rule(code=code, name=name, severity=severity, summary=summary)
    _RULES[code] = rule
    return rule


def file_rule(
    rule: Rule, path_suffixes: Optional[Sequence[str]] = None
) -> Callable:
    """Register ``fn(path, tree, lines) -> Iterable[Violation]`` to run
    on every linted file (or only those whose posix path ends with one
    of *path_suffixes*)."""

    def decorate(fn: Callable) -> Callable:
        _FILE_RULES.append(
            (rule, tuple(path_suffixes) if path_suffixes else None, fn)
        )
        return fn

    return decorate


def fact_extractor(fn: Callable) -> Callable:
    _FACT_EXTRACTORS.append(fn)
    return fn


def fileset_rule(rule: Rule) -> Callable:
    def decorate(fn: Callable) -> Callable:
        _FILESET_RULES.append((rule, fn))
        return fn

    return decorate


def _ensure_rules_loaded() -> None:
    """Import the rule modules (registration happens at import time)."""
    from repro.lint import code_rules  # noqa: F401


def all_rules() -> List[Rule]:
    _ensure_rules_loaded()
    from repro.lint.model_rules import MODEL_RULES  # registered lazily

    catalog = dict(_RULES)
    for rule in MODEL_RULES.values():
        catalog.setdefault(rule.code, rule)
    return [catalog[code] for code in sorted(catalog)]


def rule_for(code: str) -> Rule:
    return _RULES[code]


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def parse_suppressions(
    posix_path: str, lines: Sequence[str]
) -> Tuple[Dict[int, Set[str]], List[Violation]]:
    """Per-line suppressed codes, plus RPR100 findings for suppressions
    whose trailing text carries no justification."""
    suppressed: Dict[int, Set[str]] = {}
    meta: List[Violation] = []
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {part.strip() for part in match.group(1).split(",")}
        suppressed[lineno] = codes
        justification = match.group(2).strip().strip("—-:() .")
        if not justification:
            meta.append(
                Violation(
                    code=RPR100,
                    severity=SEVERITY_ERROR,
                    path=posix_path,
                    line=lineno,
                    col=line.index("#") + 1,
                    message=(
                        "suppression of "
                        f"{', '.join(sorted(codes))} has no "
                        "justification; append one, e.g. "
                        "`# repro-lint: disable=RPR101 (why it is safe)`"
                    ),
                )
            )
    return suppressed, meta


# ---------------------------------------------------------------------------
# The per-file pass
# ---------------------------------------------------------------------------


def _lint_one_file(
    posix_path: str, source: str
) -> Tuple[List[Violation], Dict[str, Any], int]:
    """(violations, facts, suppressed_count) for one module."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return (
            [
                Violation(
                    code="RPR999",
                    severity=SEVERITY_ERROR,
                    path=posix_path,
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    message=f"file does not parse: {error.msg}",
                )
            ],
            {},
            0,
        )
    suppressed_lines, violations = parse_suppressions(posix_path, lines)
    raw: List[Violation] = []
    for rule, suffixes, checker in _FILE_RULES:
        if suffixes is not None and not any(
            posix_path.endswith(suffix) for suffix in suffixes
        ):
            continue
        raw.extend(checker(posix_path, tree, lines))
    suppressed_count = 0
    for violation in raw:
        if violation.code in suppressed_lines.get(violation.line, ()):
            suppressed_count += 1
            continue
        violations.append(violation)
    facts: Dict[str, Any] = {}
    for extractor in _FACT_EXTRACTORS:
        facts.update(extractor(posix_path, tree))
    return violations, facts, suppressed_count


# ---------------------------------------------------------------------------
# File collection and caching
# ---------------------------------------------------------------------------


def collect_files(paths: Sequence[str]) -> List[str]:
    """All ``.py`` files under *paths*, sorted, ``__pycache__`` skipped."""
    found: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            found.add(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d != "__pycache__" and not d.endswith(".egg-info")
            )
            for filename in filenames:
                if filename.endswith(".py"):
                    found.add(os.path.join(dirpath, filename))
    return sorted(found)


def display_path(path: str) -> str:
    """Posix-normalized path, relative to the working directory when the
    file lives under it (stable across shuffled input order)."""
    absolute = os.path.abspath(path)
    relative = os.path.relpath(absolute, os.getcwd())
    chosen = absolute if relative.startswith("..") else relative
    return chosen.replace(os.sep, "/")


class LintCache:
    """Sha-keyed per-file memo of (violations, facts, suppressed)."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if path and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    stored = json.load(handle)
            except (OSError, ValueError):
                stored = None
            if (
                isinstance(stored, dict)
                and stored.get("version") == LINT_VERSION
                and isinstance(stored.get("files"), dict)
            ):
                self._entries = stored["files"]

    def get(self, posix_path: str, sha: str):
        entry = self._entries.get(posix_path)
        if entry is None or entry.get("sha") != sha:
            self.misses += 1
            return None
        self.hits += 1
        return (
            [Violation.from_dict(v) for v in entry["violations"]],
            entry["facts"],
            entry["suppressed"],
        )

    def put(
        self,
        posix_path: str,
        sha: str,
        violations: List[Violation],
        facts: Dict[str, Any],
        suppressed: int,
    ) -> None:
        self._entries[posix_path] = {
            "sha": sha,
            "violations": [v.as_dict() for v in violations],
            "facts": facts,
            "suppressed": suppressed,
        }

    def save(self) -> None:
        if not self.path:
            return
        payload = {"version": LINT_VERSION, "files": self._entries}
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class LintReport:
    """The outcome of a lint run, already sorted and filtered."""

    violations: List[Violation] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for violation in self.violations:
            totals[violation.code] = totals.get(violation.code, 0) + 1
        return totals

    def to_json(self) -> str:
        payload = {
            "violations": [v.as_dict() for v in self.violations],
            "counts": self.counts(),
            "files": self.files,
            "suppressed": self.suppressed,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = [v.render() for v in self.violations]
        counts = self.counts()
        summary = (
            f"{len(self.violations)} violation(s) in {self.files} "
            f"file(s), {self.suppressed} suppressed"
        )
        if counts:
            summary += " (" + ", ".join(
                f"{code}: {n}" for code, n in sorted(counts.items())
            ) + ")"
        lines.append(summary)
        return "\n".join(lines)


def _selected(code: str, select: Optional[Sequence[str]],
              ignore: Optional[Sequence[str]]) -> bool:
    """Prefix-based code filtering, like ruff's --select/--ignore."""
    if select and not any(code.startswith(p) for p in select):
        return False
    if ignore and any(code.startswith(p) for p in ignore):
        return False
    return True


def load_baseline(path: str) -> Set[Tuple[str, str, str]]:
    """Fingerprints of a previously accepted ``--json`` report."""
    with open(path, "r", encoding="utf-8") as handle:
        stored = json.load(handle)
    entries = stored.get("violations", []) if isinstance(stored, dict) \
        else stored
    return {
        Violation.from_dict(entry).fingerprint() for entry in entries
    }


def filter_violations(
    violations: Iterable[Violation],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Set[Tuple[str, str, str]]] = None,
) -> List[Violation]:
    kept = [
        violation
        for violation in violations
        if _selected(violation.code, select, ignore)
        and (baseline is None or violation.fingerprint() not in baseline)
    ]
    return sorted(kept, key=Violation.sort_key)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_paths(
    paths: Sequence[str],
    cache_path: Optional[str] = None,
    catalog_refs: bool = True,
) -> LintReport:
    """Run the code-invariant rules (and the catalog-reference fileset
    check, unless disabled) over every ``.py`` file under *paths*.

    Returns an **unfiltered** report; ``--select/--ignore/--baseline``
    are applied by :func:`run_lint` so the cache stores complete runs.
    """
    _ensure_rules_loaded()
    cache = LintCache(cache_path)
    violations: List[Violation] = []
    facts_by_path: Dict[str, Dict[str, Any]] = {}
    suppressed = 0
    files = collect_files(paths)
    for path in files:
        posix_path = display_path(path)
        with open(path, "rb") as handle:
            blob = handle.read()
        sha = hashlib.sha256(blob).hexdigest()
        cached = cache.get(posix_path, sha)
        if cached is None:
            result = _lint_one_file(
                posix_path, blob.decode("utf-8", errors="replace")
            )
            cache.put(posix_path, sha, *result)
            cached = result
        file_violations, facts, file_suppressed = cached
        violations.extend(file_violations)
        facts_by_path[posix_path] = facts
        suppressed += file_suppressed
    for rule, checker in _FILESET_RULES:
        violations.extend(checker(facts_by_path))
    if catalog_refs:
        from repro.lint.model_rules import catalog_reference_violations

        violations.extend(catalog_reference_violations(facts_by_path))
    cache.save()
    return LintReport(
        violations=sorted(violations, key=Violation.sort_key),
        files=len(files),
        suppressed=suppressed,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )


def default_target() -> str:
    """The package source tree, found from the installed location."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def run_lint(
    paths: Optional[Sequence[str]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
    cache_path: Optional[str] = None,
    model: Optional[bool] = None,
) -> LintReport:
    """Everything ``repro lint`` does: code rules over *paths* (default:
    the installed ``repro`` package) plus — by default when linting the
    package itself — the model-consistency pass."""
    if model is None:
        model = paths is None
    target = list(paths) if paths else [default_target()]
    report = lint_paths(target, cache_path=cache_path)
    violations = list(report.violations)
    if model:
        from repro.lint.model_rules import model_violations

        violations.extend(model_violations())
    baseline = load_baseline(baseline_path) if baseline_path else None
    report.violations = filter_violations(
        violations, select=select, ignore=ignore, baseline=baseline
    )
    return report
