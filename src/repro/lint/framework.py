"""The repro-lint engine: rules, suppressions, caching, reports.

The engine is deliberately small: a **file rule** is a function run over
one parsed module (``(path, tree, lines) -> violations``); a **fact
extractor** distills per-file facts (stats counters, snapshot fields,
hard-coded catalog references) that **fileset rules** cross-check after
every file was visited.  Each phase is pure and deterministic: the same
file set produces the same report regardless of traversal order, which
the property tests assert by shuffling.

Per-file results (violations + facts) are cached in a JSON file keyed by
the file's SHA-256 and :data:`LINT_VERSION`, so a CI run on an unchanged
tree skips the AST pass entirely.  Fileset rules re-run from cached
facts — they are cheap dictionary comparisons.

Suppressions are inline and justified::

    risky_line()  # repro-lint: disable=RPR101 (clock feeds a log, not a key)

A suppression without a justification is itself a violation
(:data:`RPR100`): the acceptance bar for this repo is *few* suppressions,
each explaining why the contract is intentionally bent.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Bumped whenever the cache *format* changes.  Rule-behaviour changes
#: no longer need a bump: the cache is additionally keyed on
#: :func:`rules_signature`, a hash of the rule modules' sources, so any
#: edit to the lint package invalidates stale entries automatically.
LINT_VERSION = "3"

#: Severity tiers.  Both fail the run (exit 1); the tier tells a reader
#: whether the finding is a broken contract (``error``) or a smell the
#: contract merely discourages (``warning``).
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: The meta-rule for suppressions without a justification.
RPR100 = "RPR100"


class LintUsageError(Exception):
    """A caller mistake (bad path, bad git base), as opposed to a lint
    finding: the CLI reports it on stderr and exits 1 without a run."""


_RULES_SIGNATURE: Optional[str] = None


def rules_signature() -> str:
    """A digest of every rule module's source (plus :data:`LINT_VERSION`).

    Cache entries are keyed on this, so editing any file of the lint
    package — a new rule, a changed message, a fixed false positive —
    invalidates prior cached results without anyone remembering to bump
    a version constant."""
    global _RULES_SIGNATURE
    if _RULES_SIGNATURE is None:
        digest = hashlib.sha256()
        digest.update(LINT_VERSION.encode("utf-8"))
        package_dir = os.path.dirname(os.path.abspath(__file__))
        for name in sorted(os.listdir(package_dir)):
            if not name.endswith(".py"):
                continue
            digest.update(name.encode("utf-8") + b"\x00")
            with open(os.path.join(package_dir, name), "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\x00")
        _RULES_SIGNATURE = digest.hexdigest()
    return _RULES_SIGNATURE

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=("
    r"[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
    r"(.*)$"
)


@dataclass(frozen=True)
class Violation:
    """One finding: a rule code anchored to a file position."""

    code: str
    severity: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple:
        return (self.path, self.line, self.col, self.code, self.message)

    def fingerprint(self) -> Tuple[str, str, str]:
        """Identity for ``--baseline`` matching: deliberately excludes
        line/col so accepted findings survive unrelated edits above
        them."""
        return (self.path, self.code, self.message)

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Violation":
        return cls(
            code=data["code"],
            severity=data["severity"],
            path=data["path"],
            line=data["line"],
            col=data["col"],
            message=data["message"],
        )


@dataclass(frozen=True)
class Rule:
    """Metadata of one rule code (the catalog ``repro lint --list-rules``
    and ``docs/static-analysis.md`` present)."""

    code: str
    name: str
    severity: str
    summary: str


#: code -> Rule, populated by the registration decorators.
_RULES: Dict[str, Rule] = {}

#: (rule code, path-suffix filter or None, checker) triples.
_FILE_RULES: List[Tuple[Rule, Optional[Tuple[str, ...]], Callable]] = []

#: Per-file fact extractors: ``(posix_path, tree) -> dict``.
_FACT_EXTRACTORS: List[Callable[[str, ast.AST], Dict[str, Any]]] = []

#: Fileset rules: ``(rule, fn(facts_by_path) -> violations)``.
_FILESET_RULES: List[Tuple[Rule, Callable]] = []

_RULES[RPR100] = Rule(
    code=RPR100,
    name="unjustified-suppression",
    severity=SEVERITY_ERROR,
    summary="a repro-lint suppression comment carries no justification",
)

#: Emitted when a file cannot be parsed at all.
RPR999 = "RPR999"
_RULES[RPR999] = Rule(
    code=RPR999,
    name="unparseable-file",
    severity=SEVERITY_ERROR,
    summary="the file does not parse; no rule can check it",
)


def register_rule(code: str, name: str, severity: str,
                  summary: str) -> Rule:
    if code in _RULES:
        raise AssertionError(f"duplicate lint rule code {code}")
    rule = Rule(code=code, name=name, severity=severity, summary=summary)
    _RULES[code] = rule
    return rule


def file_rule(
    rule: Rule, path_suffixes: Optional[Sequence[str]] = None
) -> Callable:
    """Register ``fn(path, tree, lines) -> Iterable[Violation]`` to run
    on every linted file (or only those whose posix path ends with one
    of *path_suffixes*)."""

    def decorate(fn: Callable) -> Callable:
        _FILE_RULES.append(
            (rule, tuple(path_suffixes) if path_suffixes else None, fn)
        )
        return fn

    return decorate


def fact_extractor(fn: Callable) -> Callable:
    _FACT_EXTRACTORS.append(fn)
    return fn


def fileset_rule(rule: Rule) -> Callable:
    def decorate(fn: Callable) -> Callable:
        _FILESET_RULES.append((rule, fn))
        return fn

    return decorate


def _ensure_rules_loaded() -> None:
    """Import the rule modules (registration happens at import time)."""
    from repro.lint import code_rules  # noqa: F401
    from repro.lint import concurrency_rules  # noqa: F401


def all_rules() -> List[Rule]:
    _ensure_rules_loaded()
    from repro.lint.model_rules import MODEL_RULES  # registered lazily

    catalog = dict(_RULES)
    for rule in MODEL_RULES.values():
        catalog.setdefault(rule.code, rule)
    return [catalog[code] for code in sorted(catalog)]


def rule_for(code: str) -> Rule:
    return _RULES[code]


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def parse_suppressions(
    posix_path: str, lines: Sequence[str]
) -> Tuple[Dict[int, Set[str]], List[Violation]]:
    """Per-line suppressed codes, plus RPR100 findings for suppressions
    whose trailing text carries no justification."""
    suppressed: Dict[int, Set[str]] = {}
    meta: List[Violation] = []
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {part.strip() for part in match.group(1).split(",")}
        suppressed[lineno] = codes
        justification = match.group(2).strip().strip("—-:() .")
        if not justification:
            meta.append(
                Violation(
                    code=RPR100,
                    severity=SEVERITY_ERROR,
                    path=posix_path,
                    line=lineno,
                    col=line.index("#") + 1,
                    message=(
                        "suppression of "
                        f"{', '.join(sorted(codes))} has no "
                        "justification; append one, e.g. "
                        "`# repro-lint: disable=RPR101 (why it is safe)`"
                    ),
                )
            )
    return suppressed, meta


# ---------------------------------------------------------------------------
# The per-file pass
# ---------------------------------------------------------------------------


def _lint_one_file(
    posix_path: str, source: str
) -> Tuple[List[Violation], Dict[str, Any], int]:
    """(violations, facts, suppressed_count) for one module."""
    lines = source.splitlines()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return (
            [
                Violation(
                    code="RPR999",
                    severity=SEVERITY_ERROR,
                    path=posix_path,
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    message=f"file does not parse: {error.msg}",
                )
            ],
            {},
            0,
        )
    suppressed_lines, violations = parse_suppressions(posix_path, lines)
    raw: List[Violation] = []
    for rule, suffixes, checker in _FILE_RULES:
        if suffixes is not None and not any(
            posix_path.endswith(suffix) for suffix in suffixes
        ):
            continue
        raw.extend(checker(posix_path, tree, lines))
    suppressed_count = 0
    for violation in raw:
        if violation.code in suppressed_lines.get(violation.line, ()):
            suppressed_count += 1
            continue
        violations.append(violation)
    facts: Dict[str, Any] = {}
    for extractor in _FACT_EXTRACTORS:
        facts.update(extractor(posix_path, tree))
    if suppressed_lines:
        # Fileset rules anchor violations back into files after the
        # per-file pass; record the suppression map (JSON-safe string
        # keys — facts round-trip through the cache) so those findings
        # honor inline suppressions too.
        facts["_suppressed_lines"] = {
            str(line): sorted(codes)
            for line, codes in suppressed_lines.items()
        }
    return violations, facts, suppressed_count


# ---------------------------------------------------------------------------
# File collection and caching
# ---------------------------------------------------------------------------


def collect_files(paths: Sequence[str]) -> List[str]:
    """All ``.py`` files under *paths*, sorted, ``__pycache__`` skipped.

    A path that does not exist raises :class:`LintUsageError`: a typo'd
    target silently linting zero files would report a clean run."""
    found: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            found.add(path)
            continue
        if not os.path.isdir(path):
            raise LintUsageError(f"no such file or directory: {path}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d != "__pycache__" and not d.endswith(".egg-info")
            )
            for filename in filenames:
                if filename.endswith(".py"):
                    found.add(os.path.join(dirpath, filename))
    return sorted(found)


def changed_paths(base: str = "HEAD", root: Optional[str] = None
                  ) -> List[str]:
    """The ``.py`` files changed relative to git ref *base* (deletions
    excluded), for ``repro lint --changed``.

    When the repo-wide gate's root (:func:`default_target`) lives inside
    the diffed repository, only changed files under it are returned —
    ``--changed`` approximates the full gate on a subset, and must never
    be *stricter* than it (the gate does not lint ``tests/``).  Diffing
    some other repository leaves every changed ``.py`` file in scope.

    An unusable base or a non-repository raises :class:`LintUsageError`.
    Files deleted from disk since the diff are dropped; an empty list is
    a legitimate result (nothing to lint)."""
    import subprocess

    command = [
        "git", "diff", "--name-only", "--diff-filter=d", base, "--",
    ]
    try:
        proc = subprocess.run(
            command,
            cwd=root,
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError as error:
        raise LintUsageError(f"cannot run git: {error}")
    if proc.returncode != 0:
        detail = proc.stderr.strip().splitlines()
        raise LintUsageError(
            f"git diff against {base!r} failed: "
            + (detail[0] if detail else "unknown error")
        )
    prefix = root or "."
    gate_root = os.path.abspath(default_target())
    repo_root = os.path.abspath(prefix)
    gate_scoped = gate_root.startswith(repo_root + os.sep)
    changed = []
    for line in proc.stdout.splitlines():
        if not line.endswith(".py"):
            continue
        path = os.path.join(prefix, line) if prefix != "." else line
        if gate_scoped:
            absolute = os.path.abspath(path)
            if absolute != gate_root and not absolute.startswith(
                gate_root + os.sep
            ):
                continue
        if os.path.isfile(path):
            changed.append(path)
    return sorted(changed)


def display_path(path: str) -> str:
    """Posix-normalized path, relative to the working directory when the
    file lives under it (stable across shuffled input order)."""
    absolute = os.path.abspath(path)
    relative = os.path.relpath(absolute, os.getcwd())
    chosen = absolute if relative.startswith("..") else relative
    return chosen.replace(os.sep, "/")


class LintCache:
    """Sha-keyed per-file memo of (violations, facts, suppressed)."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self._entries: Dict[str, Dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if path and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    stored = json.load(handle)
            except (OSError, ValueError):
                stored = None
            if (
                isinstance(stored, dict)
                and stored.get("version") == LINT_VERSION
                and stored.get("rules") == rules_signature()
                and isinstance(stored.get("files"), dict)
            ):
                self._entries = stored["files"]

    def get(self, posix_path: str, sha: str):
        entry = self._entries.get(posix_path)
        if entry is None or entry.get("sha") != sha:
            self.misses += 1
            return None
        self.hits += 1
        return (
            [Violation.from_dict(v) for v in entry["violations"]],
            entry["facts"],
            entry["suppressed"],
        )

    def put(
        self,
        posix_path: str,
        sha: str,
        violations: List[Violation],
        facts: Dict[str, Any],
        suppressed: int,
    ) -> None:
        self._entries[posix_path] = {
            "sha": sha,
            "violations": [v.as_dict() for v in violations],
            "facts": facts,
            "suppressed": suppressed,
        }

    def save(self) -> None:
        if not self.path:
            return
        payload = {
            "version": LINT_VERSION,
            "rules": rules_signature(),
            "files": self._entries,
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class LintReport:
    """The outcome of a lint run, already sorted and filtered."""

    violations: List[Violation] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for violation in self.violations:
            totals[violation.code] = totals.get(violation.code, 0) + 1
        return totals

    def to_payload(self) -> Dict[str, Any]:
        """The stable JSON shape of a run (shared by ``--json`` and the
        ``--baseline`` loader)."""
        return {
            "violations": [v.as_dict() for v in self.violations],
            "counts": self.counts(),
            "files": self.files,
            "suppressed": self.suppressed,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        lines = [v.render() for v in self.violations]
        counts = self.counts()
        summary = (
            f"{len(self.violations)} violation(s) in {self.files} "
            f"file(s), {self.suppressed} suppressed"
        )
        if counts:
            summary += " (" + ", ".join(
                f"{code}: {n}" for code, n in sorted(counts.items())
            ) + ")"
        lines.append(summary)
        return "\n".join(lines)


def _selected(code: str, select: Optional[Sequence[str]],
              ignore: Optional[Sequence[str]]) -> bool:
    """Prefix-based code filtering, like ruff's --select/--ignore."""
    if select and not any(code.startswith(p) for p in select):
        return False
    if ignore and any(code.startswith(p) for p in ignore):
        return False
    return True


def load_baseline(path: str) -> Set[Tuple[str, str, str]]:
    """Fingerprints of a previously accepted ``--json`` report."""
    with open(path, "r", encoding="utf-8") as handle:
        stored = json.load(handle)
    entries = stored.get("violations", []) if isinstance(stored, dict) \
        else stored
    return {
        Violation.from_dict(entry).fingerprint() for entry in entries
    }


def filter_violations(
    violations: Iterable[Violation],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Set[Tuple[str, str, str]]] = None,
) -> List[Violation]:
    kept = [
        violation
        for violation in violations
        if _selected(violation.code, select, ignore)
        and (baseline is None or violation.fingerprint() not in baseline)
    ]
    return sorted(kept, key=Violation.sort_key)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def _lint_worker(item: Tuple[str, str]):
    """Process-pool entry: rule registration happens per worker (the
    registries are module globals, rebuilt on child import)."""
    posix_path, source = item
    _ensure_rules_loaded()
    return _lint_one_file(posix_path, source)


def lint_paths(
    paths: Sequence[str],
    cache_path: Optional[str] = None,
    catalog_refs: bool = True,
    jobs: Optional[int] = None,
) -> LintReport:
    """Run the code-invariant rules (and the catalog-reference fileset
    check, unless disabled) over every ``.py`` file under *paths*.

    With ``jobs > 1`` the per-file passes of cache misses run in a
    process pool; results are merged in sorted file order, so the
    report is byte-identical to a serial run.

    Returns an **unfiltered** report; ``--select/--ignore/--baseline``
    are applied by :func:`run_lint` so the cache stores complete runs.
    """
    _ensure_rules_loaded()
    cache = LintCache(cache_path)
    violations: List[Violation] = []
    facts_by_path: Dict[str, Dict[str, Any]] = {}
    suppressed = 0
    files = collect_files(paths)
    results_by_path: Dict[str, Tuple[List[Violation], Dict[str, Any], int]] = {}
    pending: List[Tuple[str, str, str]] = []  # (posix, source, sha)
    for path in files:
        posix_path = display_path(path)
        with open(path, "rb") as handle:
            blob = handle.read()
        sha = hashlib.sha256(blob).hexdigest()
        cached = cache.get(posix_path, sha)
        if cached is None:
            pending.append(
                (posix_path, blob.decode("utf-8", errors="replace"), sha)
            )
        else:
            results_by_path[posix_path] = cached
    fresh = None
    if jobs and jobs > 1 and len(pending) > 1:
        try:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                fresh = list(
                    pool.map(
                        _lint_worker,
                        [(posix, source) for posix, source, _sha in pending],
                        chunksize=8,
                    )
                )
        except (ImportError, OSError, PermissionError):
            fresh = None  # no usable multiprocessing here: run serially
    if fresh is None:
        fresh = [
            _lint_one_file(posix, source)
            for posix, source, _sha in pending
        ]
    for (posix_path, _source, sha), result in zip(pending, fresh):
        cache.put(posix_path, sha, *result)
        results_by_path[posix_path] = result
    for path in files:
        posix_path = display_path(path)
        file_violations, facts, file_suppressed = results_by_path[posix_path]
        violations.extend(file_violations)
        facts_by_path[posix_path] = facts
        suppressed += file_suppressed
    crossfile: List[Violation] = []
    for rule, checker in _FILESET_RULES:
        crossfile.extend(checker(facts_by_path))
    if catalog_refs:
        from repro.lint.model_rules import catalog_reference_violations

        crossfile.extend(catalog_reference_violations(facts_by_path))
    for violation in crossfile:
        at_line = (
            facts_by_path.get(violation.path, {})
            .get("_suppressed_lines", {})
            .get(str(violation.line), ())
        )
        if violation.code in at_line:
            suppressed += 1
        else:
            violations.append(violation)
    cache.save()
    return LintReport(
        violations=sorted(violations, key=Violation.sort_key),
        files=len(files),
        suppressed=suppressed,
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )


def default_target() -> str:
    """The package source tree, found from the installed location."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def run_lint(
    paths: Optional[Sequence[str]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
    cache_path: Optional[str] = None,
    model: Optional[bool] = None,
    jobs: Optional[int] = None,
) -> LintReport:
    """Everything ``repro lint`` does: code rules over *paths* (default:
    the installed ``repro`` package) plus — by default when linting the
    package itself — the model-consistency pass."""
    if model is None:
        model = paths is None
    target = list(paths) if paths else [default_target()]
    report = lint_paths(target, cache_path=cache_path, jobs=jobs)
    violations = list(report.violations)
    if model:
        from repro.lint.model_rules import model_violations

        violations.extend(model_violations())
    baseline = load_baseline(baseline_path) if baseline_path else None
    report.violations = filter_violations(
        violations, select=select, ignore=ignore, baseline=baseline
    )
    return report
