"""RPR2xx: consistency of the ground-truth model against itself.

Unlike the ``RPR1xx`` family these rules do not read source text: they
import the machine-facing tables (:mod:`repro.uarch`), the instruction
catalog (:mod:`repro.isa`), and the IACA version registry, build every
``(form, microarchitecture)`` entry, and cross-check the results — the
same internal-consistency discipline the paper applies to its published
port mappings.

* ``RPR201`` — every port named by a functional-unit map or a built
  µop decomposition exists on that microarchitecture.
* ``RPR202`` — every µop that occupies the divider has a value class
  the generation's :meth:`~repro.uarch.model.UarchConfig.divider_timing`
  can resolve.
* ``RPR203`` — hard-coded catalog references in the source
  (``by_uid("...")``, ``forms_for_mnemonic("...")``, ``@override(...)``)
  resolve against the real catalog.  Harvested per-file by
  :mod:`repro.lint.code_rules`, checked here.
* ``RPR204`` — cross-table references hold: overrides name real
  generations and forms, declared IACA versions are known to the
  analyzer, and the blocking-instruction discovery's prerequisites
  (store units in every port map, a MOV store blocker, at least one
  candidate) are satisfiable.
* ``RPR205`` — every catalog category has a table rule, so
  ``build_entry`` cannot raise ``KeyError`` mid-sweep.

:func:`model_violations` accepts injected *uarches*/*database* so tests
can seed a fake port (``p9``) or an uncovered category and watch the
pass fail.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.lint.framework import (
    SEVERITY_ERROR,
    Rule,
    Violation,
    display_path,
    register_rule,
)

RPR201 = register_rule(
    "RPR201",
    "nonexistent-port",
    SEVERITY_ERROR,
    "port map or µop table references a port the uarch does not have",
)
RPR202 = register_rule(
    "RPR202",
    "missing-divider-class",
    SEVERITY_ERROR,
    "divider µop without a resolvable value class",
)
RPR203 = register_rule(
    "RPR203",
    "dangling-catalog-reference",
    SEVERITY_ERROR,
    "hard-coded uid/mnemonic/uarch literal not found in the catalog",
)
RPR204 = register_rule(
    "RPR204",
    "broken-cross-table-reference",
    SEVERITY_ERROR,
    "override / IACA-version / blocking prerequisite is inconsistent",
)
RPR205 = register_rule(
    "RPR205",
    "uncovered-category",
    SEVERITY_ERROR,
    "catalog category without a table rule (build_entry would raise)",
)

MODEL_RULES: Dict[str, Rule] = {
    rule.code: rule for rule in (RPR201, RPR202, RPR203, RPR204, RPR205)
}

#: The value classes :meth:`UarchConfig.divider_timing` can resolve.
DIVIDER_CLASSES = ("int_div", "fp_div", "fp_sqrt")


def _violation(rule: Rule, path: str, line: int,
               message: str) -> Violation:
    return Violation(
        code=rule.code,
        severity=rule.severity,
        path=path,
        line=line,
        col=1,
        message=message,
    )


def _default_database():
    from repro.isa.database import load_default_database

    return load_default_database()


# ---------------------------------------------------------------------------
# RPR203 — catalog references harvested from source facts
# ---------------------------------------------------------------------------


def catalog_reference_violations(
    facts_by_path: Dict[str, Dict[str, Any]],
    database=None,
    uarch_names: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Check every harvested ``catalog_refs`` fact against the catalog.

    Imports nothing when no file contained a hard-coded reference, so
    linting a plain fixture tree stays import-free.
    """
    refs = [
        (path, ref)
        for path, facts in sorted(facts_by_path.items())
        for ref in facts.get("catalog_refs", [])
    ]
    if not refs:
        return []
    if database is None:
        database = _default_database()
    if uarch_names is None:
        from repro.uarch.configs import ALL_UARCHES

        uarch_names = set()
        for uarch in ALL_UARCHES:
            uarch_names.add(uarch.name)
            uarch_names.add(uarch.full_name)
    violations = []
    for path, ref in refs:
        kind, value, line = ref["kind"], ref["value"], ref["line"]
        if kind == "uid" and value not in database:
            violations.append(
                _violation(
                    RPR203, path, line,
                    f"uid {value!r} is not in the instruction catalog",
                )
            )
        elif kind == "mnemonic" and not database.forms_for_mnemonic(
            value
        ):
            violations.append(
                _violation(
                    RPR203, path, line,
                    f"mnemonic {value!r} has no forms in the "
                    "instruction catalog",
                )
            )
        elif kind == "uarch" and value not in uarch_names:
            violations.append(
                _violation(
                    RPR203, path, line,
                    f"{value!r} names no known microarchitecture",
                )
            )
    return violations


# ---------------------------------------------------------------------------
# RPR201/202/204/205 — the imported-model pass
# ---------------------------------------------------------------------------


def model_violations(
    uarches=None, database=None
) -> List[Violation]:
    """Cross-check the ground-truth tables; empty list means consistent.

    *uarches*/*database* are injectable for tests (e.g. a
    ``dataclasses.replace``-d generation with a fake port 9).
    """
    from repro.core.blocking import _find_store_blocker, _is_candidate
    from repro.iaca.analyzer import ALL_VERSIONS
    from repro.uarch import configs as configs_mod
    from repro.uarch import overrides as overrides_mod
    from repro.uarch import tables

    if uarches is None:
        uarches = configs_mod.ALL_UARCHES
    if database is None:
        database = _default_database()

    configs_path = display_path(configs_mod.__file__)
    tables_path = display_path(tables.__file__)
    violations: List[Violation] = []

    # RPR205: every category the catalog uses has a rule.
    categories = sorted({form.category for form in database})
    covered = set(tables._RULES)
    for category in categories:
        if category not in covered:
            violations.append(
                _violation(
                    RPR205, tables_path, 1,
                    f"category {category!r} has no table rule; "
                    "build_entry raises KeyError for every form in it",
                )
            )

    uarch_names = set()
    for uarch in uarches:
        uarch_names.add(uarch.name)
        ports = set(uarch.ports)

        # RPR201: functional-unit maps stay inside the real port set.
        for unit, unit_ports in sorted(
            uarch.fu_map.items(), key=lambda item: item[0]
        ):
            ghost = sorted(set(unit_ports) - ports)
            if ghost:
                violations.append(
                    _violation(
                        RPR201, configs_path, 1,
                        f"functional unit {unit!r} on {uarch.name} "
                        f"references nonexistent port(s) "
                        f"{', '.join(map(str, ghost))} "
                        f"(has {sorted(ports)})",
                    )
                )

        # RPR204: declared IACA versions are known to the analyzer.
        for version in uarch.iaca_versions:
            if version not in ALL_VERSIONS:
                violations.append(
                    _violation(
                        RPR204, configs_path, 1,
                        f"{uarch.name} declares IACA version "
                        f"{version!r}, unknown to the analyzer "
                        f"(knows {', '.join(ALL_VERSIONS)})",
                    )
                )

        # RPR204: blocking discovery needs the store units (the store
        # combinations come from the documented port layout).
        for unit in ("store_addr", "store_data"):
            if unit not in uarch.fu_map:
                violations.append(
                    _violation(
                        RPR204, configs_path, 1,
                        f"{uarch.name} has no {unit!r} functional "
                        "unit; blocking discovery cannot block the "
                        "store ports",
                    )
                )

        # RPR201/RPR202 over every built entry.  Ghost ports are
        # aggregated per (uarch, port): one seeded fake port would
        # otherwise drown the report in per-form repeats.
        ghost_uids: Dict[int, List[str]] = {}
        for form in database:
            try:
                entry = tables.build_entry(form, uarch)
            except KeyError:
                continue  # reported once by RPR205 above
            if entry is None:
                continue
            uops = entry.uops + (entry.same_reg_uops or ())
            occupies_divider = False
            for uop in uops:
                for port in sorted(set(uop.ports) - ports):
                    ghost_uids.setdefault(port, []).append(form.uid)
                if uop.divider_cycles > 0:
                    occupies_divider = True
            if entry.divider_class is not None and (
                entry.divider_class not in DIVIDER_CLASSES
            ):
                violations.append(
                    _violation(
                        RPR202, tables_path, 1,
                        f"{form.uid} on {uarch.name} has divider "
                        f"class {entry.divider_class!r}; "
                        "divider_timing() resolves only "
                        f"{', '.join(DIVIDER_CLASSES)}",
                    )
                )
            elif occupies_divider and entry.divider_class is None:
                violations.append(
                    _violation(
                        RPR202, tables_path, 1,
                        f"{form.uid} on {uarch.name} occupies the "
                        "divider but has no value class; latency "
                        "inference cannot pick operand values for it",
                    )
                )
        for port, uids in sorted(ghost_uids.items()):
            violations.append(
                _violation(
                    RPR201, tables_path, 1,
                    f"{len(uids)} entr{'y' if len(uids) == 1 else 'ies'}"
                    f" on {uarch.name} dispatch to nonexistent port "
                    f"{port} (e.g. {uids[0]})",
                )
            )

    # RPR204: overrides reference real generations and forms.
    overrides_path = display_path(overrides_mod.__file__)
    for override_uarch, override_uid in sorted(overrides_mod._OVERRIDES):
        if override_uarch not in uarch_names:
            violations.append(
                _violation(
                    RPR204, overrides_path, 1,
                    f"override registered for unknown "
                    f"microarchitecture {override_uarch!r}",
                )
            )
        if override_uid not in database:
            violations.append(
                _violation(
                    RPR204, overrides_path, 1,
                    f"override registered for unknown form "
                    f"{override_uid!r}",
                )
            )

    # RPR204: blocking discovery is satisfiable on this catalog.
    if not any(_is_candidate(form) for form in database):
        violations.append(
            _violation(
                RPR204, tables_path, 1,
                "no instruction in the catalog qualifies as a "
                "blocking-instruction candidate",
            )
        )
    if _find_store_blocker(database, None) is None:
        violations.append(
            _violation(
                RPR204, tables_path, 1,
                "no MOV store form qualifies as the store blocker "
                "(64-bit GPR store required)",
            )
        )

    return sorted(violations, key=Violation.sort_key)
