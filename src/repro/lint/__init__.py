"""repro-lint: the repo's own invariant checker (``repro lint``).

Generic linters know Python; they do not know this repository's
contracts — that content-key and codec modules must be deterministic,
that plan generators never measure, that every ``RunStatistics`` counter
is rendered, or that a port-usage table may only name ports the
microarchitecture has.  Two past bugs (the parallel-tuple ``zip`` in the
stats fold, the dead-list iteration in ``_next_event``) were violations
of exactly such contracts; this package encodes them as checkable rules.

Three rule families:

* **Code invariants** (``RPR1xx``, :mod:`repro.lint.code_rules`) —
  ``ast``-visitor checks over the source tree, with inline
  ``# repro-lint: disable=RPRnnn (justification)`` suppressions.
* **Concurrency invariants** (``RPR160``–``RPR163``,
  :mod:`repro.lint.concurrency_rules`) — lockset, lock-order,
  fencing-token, and crash-site-coverage analysis of the persistence
  layer, cross-validated against the dynamic ``REPRO_LOCK_TRACE``
  recorder by the test suite.
* **Model consistency** (``RPR2xx``, :mod:`repro.lint.model_rules`) — a
  data-driven pass that imports the ground-truth tables
  (:mod:`repro.uarch`) and the instruction catalog and cross-checks
  them.

Entry points: :func:`run_lint` (everything, as the CLI does it),
:func:`lint_paths` (code rules only), and
:func:`~repro.lint.model_rules.model_violations` (model pass only).
"""

from repro.lint.framework import (
    LINT_VERSION,
    LintReport,
    LintUsageError,
    Rule,
    Violation,
    all_rules,
    changed_paths,
    lint_paths,
    rules_signature,
    run_lint,
)
from repro.lint.model_rules import model_violations

__all__ = [
    "LINT_VERSION",
    "LintReport",
    "LintUsageError",
    "Rule",
    "Violation",
    "all_rules",
    "changed_paths",
    "lint_paths",
    "model_violations",
    "rules_signature",
    "run_lint",
]
