"""Per-version IACA instruction tables.

An :class:`IacaEntry` is what IACA "knows" about an instruction variant on
one generation in one version: a total µop count, a detailed per-µop port
view, and (for the versions that still support latency analysis) a single
scalar latency.  Entries start from the hardware ground truth and then have
the errata of :mod:`repro.iaca.errata` applied, so IACA is right most of the
time and wrong in exactly the ways the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.iaca import errata
from repro.isa.instruction import InstructionForm
from repro.uarch.model import UarchConfig
from repro.uarch.tables import build_entry
from repro.uarch.uops import UarchEntry


@dataclass(frozen=True)
class IacaEntry:
    """IACA's view of one instruction variant."""

    uops_total: int
    #: Detailed per-port view: (port set, µop count).  May be inconsistent
    #: with ``uops_total`` (the VHADDPD detail-view bug).
    port_view: Tuple[Tuple[FrozenSet[int], int], ...]
    latency: Optional[float]
    supported: bool = True

    def port_counts(self) -> Dict[FrozenSet[int], int]:
        counts: Dict[FrozenSet[int], int] = {}
        for ports, n in self.port_view:
            counts[ports] = counts.get(ports, 0) + n
        return counts


def _critical_path_latency(entry: UarchEntry) -> float:
    """Longest path through the µop DAG (IACA's single-value latency)."""
    finish: List[float] = []
    for index, uop in enumerate(entry.uops):
        start = 0.0
        for ref in uop.inputs:
            if ref[0] == "uop" and ref[1] < index:
                start = max(start, finish[ref[1]] + uop.input_delay(ref))
        latency = uop.latency
        for lat in uop.output_latencies.values():
            latency = max(latency, lat)
        finish.append(start + latency)
    return max(finish) if finish else 0.0


def _true_port_view(entry: UarchEntry) -> List[Tuple[FrozenSet[int], int]]:
    view: Dict[FrozenSet[int], int] = {}
    for uop in entry.uops:
        if uop.ports:
            view[uop.ports] = view.get(uop.ports, 0) + 1
    return sorted(view.items(), key=lambda item: sorted(item[0]))


def iaca_entry(
    form: InstructionForm, uarch: UarchConfig, version: str
) -> Optional[IacaEntry]:
    """IACA's table entry for *form* on *uarch* in *version*.

    Returns ``None`` when the generation has no ground truth at all (the
    form does not exist there); an unsupported-by-IACA form returns an
    entry with ``supported=False``.
    """
    truth = build_entry(form, uarch)
    if truth is None:
        return None
    if errata.synthesized_unsupported(form, uarch):
        return IacaEntry(0, (), None, supported=False)

    uops_total = len(truth.uops)
    port_view = _true_port_view(truth)
    latency: Optional[float] = _critical_path_latency(truth)

    effects = errata.named_errata(form, uarch, version)
    uop_error = errata.synthesized_uop_error(form, uarch)
    if uop_error is not None:
        effects.append(uop_error)
    if errata.synthesized_port_error(form, uarch):
        effects.append("synth_port")

    for effect in effects:
        uops_total, port_view, latency = _apply(
            effect, uarch, uops_total, port_view, latency
        )
    return IacaEntry(uops_total, tuple(port_view), latency)


def _apply(effect, uarch, uops_total, port_view, latency):
    view = list(port_view)
    if effect == "drop_load":
        load_ports = uarch.fu_ports("load")
        for i, (ports, n) in enumerate(view):
            if ports == load_ports:
                if n > 1:
                    view[i] = (ports, n - 1)
                else:
                    del view[i]
                uops_total -= 1
                break
    elif effect == "spurious_store":
        view.append((uarch.fu_ports("store_addr"), 1))
        view.append((uarch.fu_ports("store_data"), 1))
        uops_total += 2
    elif effect == "extra_uop":
        view.append((uarch.fu_ports("int_alu"), 1))
        uops_total += 1
    elif effect == "bswap_two_uops":
        view.append((uarch.fu_ports("int_alu"), 1))
        uops_total += 1
    elif effect == "detail_view_mismatch":
        # Total stays (3 for VHADDPD) but the per-port view shows only the
        # FP-add µop.
        view = [
            (ports, n) for ports, n in view
            if ports == uarch.fu_ports("vec_fp_add")
        ]
    elif effect == "minps_extra_port":
        view = [
            (
                ports | frozenset({5})
                if ports == uarch.fu_ports("vec_fp_add")
                else ports,
                n,
            )
            for ports, n in view
        ]
    elif effect == "sahf_extra_ports":
        view = [
            (
                ports | uarch.fu_ports("int_alu")
                if ports == uarch.fu_ports("shift")
                else ports,
                n,
            )
            for ports, n in view
        ]
    elif effect == "movdq2q_wrong_ports":
        view = [
            (
                frozenset({0, 1})
                if ports == uarch.fu_ports("vec_shuffle")
                else ports,
                n,
            )
            for ports, n in view
        ]
    elif effect == "movq2dq_port5":
        view = [(frozenset({5}), n) for ports, n in view]
    elif effect == "lock_miscount":
        view.append((uarch.fu_ports("int_alu"), 2))
        uops_total += 2
    elif effect == "rep_fixed_count":
        uops_total = max(1, uops_total - 2)
        if view:
            ports, n = view[0]
            view[0] = (ports, max(1, n - 2))
    elif effect == "synth_port":
        mem = errata.memory_ports(uarch)
        compute_groups = [
            i for i in range(len(view)) if not (view[i][0] & mem)
        ]
        if compute_groups:
            # Replace the port set of the largest compute µop group.
            index = max(
                compute_groups,
                key=lambda i: (len(view[i][0]), sorted(view[i][0])),
            )
            ports, n = view[index]
            view[index] = (errata.port_error_variant(ports, uarch), n)
    elif effect == "aes_latency_7":
        latency = 7.0
    return uops_total, view, latency
