"""IACA errata: the deliberate divergences between IACA's instruction
tables and the hardware's ground truth.

Two sources:

1. **Named errata** — every discrepancy the paper reports in Section 7.2 is
   reproduced exactly (missing load µops, spurious store µops, variant
   confusion, per-version port differences, detail-view sum mismatches).
2. **Synthesized errata** — real IACA contains many more undocumented bugs
   than the paper names; since the binaries are unobservable, we synthesize
   additional errata deterministically (seeded on the form uid and the
   generation) at rates that land the hardware/IACA agreement in the bands
   Table 1 reports.  This substitution is documented in DESIGN.md.
"""

from __future__ import annotations

import hashlib
from typing import FrozenSet, List, Optional

from repro.isa.instruction import InstructionForm
from repro.uarch.model import UarchConfig

#: Per-generation synthesized port-errata rates (per mill), tuned so that
#: the port-agreement column of Table 1 lands in the paper's 91-98% band.
PORT_ERRATA_RATE = {
    "NHM": 47, "WSM": 54, "SNB": 18, "IVB": 26,
    "HSW": 36, "BDW": 74, "SKL": 90, "KBL": 90, "CFL": 90,
}

#: Synthesized µop-count errata rate (per mill); Table 1's µops column
#: reports 91.0-93.3% agreement (after excluding REP and LOCK).
UOP_ERRATA_RATE = 72

#: Forms IACA does not support at all (per mill).
UNSUPPORTED_RATE = 25


def _bucket(*parts: str) -> int:
    """Deterministic pseudo-random value in [0, 1000)."""
    digest = hashlib.sha256("|".join(parts).encode()).digest()
    return int.from_bytes(digest[:4], "big") % 1000


def synthesized_unsupported(form: InstructionForm,
                            uarch: UarchConfig) -> bool:
    return _bucket("unsupported", form.uid, uarch.name) < UNSUPPORTED_RATE


def synthesized_uop_error(form: InstructionForm,
                          uarch: UarchConfig) -> Optional[str]:
    """Returns the kind of µop-count error, or None.

    The error applies to *all* IACA versions for the generation (the paper
    counts a µop mismatch only when no version agrees).
    """
    if _bucket("uops", form.uid, uarch.name) >= UOP_ERRATA_RATE:
        return None
    if form.reads_memory:
        return "drop_load"  # the IMUL-on-Nehalem class of bug
    return "extra_uop"


def synthesized_port_error(form: InstructionForm,
                           uarch: UarchConfig) -> bool:
    rate = PORT_ERRATA_RATE.get(uarch.name, 40)
    return _bucket("ports", form.uid, uarch.name) < rate


def memory_ports(uarch: UarchConfig) -> FrozenSet[int]:
    """Ports attached to load/store units."""
    return (
        uarch.fu_ports("load")
        | uarch.fu_ports("store_addr")
        | uarch.fu_ports("store_data")
    )


def port_error_variant(
    combination: FrozenSet[int], uarch: UarchConfig
) -> FrozenSet[int]:
    """A deterministic wrong port set for a synthesized port erratum.

    Real IACA table bugs confuse compute units with one another, never
    with the dedicated load/store ports, so candidates exclude those.
    """
    mem = memory_ports(uarch)
    candidates = sorted(
        {
            c
            for c in uarch.fu_map.values()
            if c != combination and not (c & mem)
        },
        key=sorted,
    )
    if not candidates:
        return combination
    index = _bucket("portvariant", "".join(map(str, sorted(combination))),
                    uarch.name) % len(candidates)
    return candidates[index]


# ---------------------------------------------------------------------------
# Named errata (Section 7.2 / 7.3): (predicate description, effect)
# ---------------------------------------------------------------------------


def named_errata(
    form: InstructionForm, uarch: UarchConfig, version: str
) -> List[str]:
    """Effect tags for the paper's named IACA discrepancies."""
    effects: List[str] = []
    mnemonic = form.mnemonic
    base = mnemonic[1:] if mnemonic.startswith("V") else mnemonic

    # "Several instructions that read from memory do not have a µop that
    # can use a port with a load unit (e.g., IMUL on Nehalem)."
    if uarch.name == "NHM" and mnemonic == "IMUL" and form.reads_memory:
        effects.append("drop_load")

    # "Instructions (like TEST mem, R on Nehalem) that have a store data
    # and a store address µop in IACA, even though they do not write to
    # the memory."
    if (
        uarch.name == "NHM"
        and mnemonic == "TEST"
        and form.reads_memory
        and not form.writes_memory
    ):
        effects.append("spurious_store")

    # "On Skylake the 32-bit BSWAP has one µop, the 64-bit two; in IACA,
    # both variants have two."
    if (
        uarch.name in ("SKL", "KBL", "CFL")
        and mnemonic == "BSWAP"
        and form.operands[0].width == 32
    ):
        effects.append("bswap_two_uops")

    # "VHADDPD on Skylake: IACA reports three µops in total, but the
    # detailed (per port) view only shows one µop."
    if uarch.name in ("SKL", "KBL", "CFL") and base in (
        "HADDPD", "HADDPS", "HSUBPD", "HSUBPS"
    ):
        effects.append("detail_view_mismatch")

    # "VMINPS on Skylake: in IACA 2.3 it can use ports 0, 1, and 5; in
    # IACA 3.0 and on the hardware only ports 0 and 1."
    if (
        uarch.name in ("SKL", "KBL", "CFL")
        and version == "2.3"
        and base in ("MINPS", "MINPD", "MINSS", "MINSD",
                     "MAXPS", "MAXPD", "MAXSS", "MAXSD")
    ):
        effects.append("minps_extra_port")

    # "SAHF on Haswell: hardware and IACA 2.1 use ports 0 and 6; IACA 2.2,
    # 2.3, and 3.0 additionally use ports 1 and 5."
    if (
        uarch.name in ("HSW", "BDW")
        and mnemonic == "SAHF"
        and version in ("2.2", "2.3", "3.0")
    ):
        effects.append("sahf_extra_ports")

    # "MOVDQ2Q on Haswell: IACA 2.1 matches the hardware (1*p5 + 1*p015);
    # IACA 2.2, 2.3, 3.0 report 1*p01 + 1*p015."
    if (
        uarch.name in ("HSW", "BDW")
        and mnemonic == "MOVDQ2Q"
        and version in ("2.2", "2.3", "3.0")
    ):
        effects.append("movdq2q_wrong_ports")

    # "MOVQ2DQ on Skylake: IACA reports both µops on port 5 only."
    if uarch.name in ("SKL", "KBL", "CFL") and mnemonic == "MOVQ2DQ":
        effects.append("movq2dq_port5")

    # LOCK-prefixed instructions: "IACA in most cases reports a µop count
    # that is different from our measurements."
    if form.has_attribute("lock"):
        effects.append("lock_miscount")

    # REP-prefixed: variable µop count on hardware; IACA uses a fixed one.
    if form.has_attribute("rep"):
        effects.append("rep_fixed_count")

    # AES on Sandy/Ivy Bridge: IACA 2.1 (and the LLVM model) report a
    # latency of 7 cycles instead of the measured 8 (Section 7.3.1).
    if (
        uarch.name in ("SNB", "IVB")
        and base in ("AESDEC", "AESDECLAST", "AESENC", "AESENCLAST")
    ):
        effects.append("aes_latency_7")

    return effects
