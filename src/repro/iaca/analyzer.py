"""The IACA-style static analyzer, as a measurement backend.

IACA treats the analyzed code as the body of a loop and reports
steady-state throughput and port bindings for many iterations (Section 6.3)
— which is exactly what the paper's measurement protocol averages, so the
same inference algorithms run unchanged on top of it.

Faithfully to the original (Section 7.2), the analysis ignores dependencies
on status flags (the CMC example), dependencies through memory (the
store/load example), and latency differences between operand pairs.  µops
are bound to ports by the same min-max LP used in Section 5.3.2, i.e. the
scheduler is assumed perfect.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.experiment import Experiment, ExperimentFailure
from repro.iaca.tables import IacaEntry, iaca_entry
from repro.isa.instruction import Instruction, InstructionForm
from repro.pipeline.core import CounterValues
from repro.uarch.model import UarchConfig

#: All IACA versions that ever existed in this reproduction.
ALL_VERSIONS = ("2.1", "2.2", "2.3", "3.0")

#: Versions that still support latency analysis (dropped in 2.2+).
LATENCY_VERSIONS = ("2.1",)


def iaca_versions_for(uarch: UarchConfig) -> Tuple[str, ...]:
    """The IACA versions supporting this generation (Table 1, column 4)."""
    return tuple(uarch.iaca_versions)


class IacaBackend:
    """A measurement backend that runs code "on top of IACA"."""

    def __init__(self, uarch: UarchConfig, version: str):
        if version not in ALL_VERSIONS:
            raise ValueError(f"unknown IACA version: {version}")
        if version not in uarch.iaca_versions:
            raise ValueError(
                f"IACA {version} does not support {uarch.full_name}"
            )
        self.uarch = uarch
        self.version = version
        self.name = f"iaca{version}-{uarch.name}"
        self._entries: Dict[str, Optional[IacaEntry]] = {}

    # ------------------------------------------------------------------

    def entry(self, form: InstructionForm) -> Optional[IacaEntry]:
        uid = form.uid
        if uid not in self._entries:
            self._entries[uid] = iaca_entry(form, self.uarch, self.version)
        return self._entries[uid]

    def supports(self, form: InstructionForm) -> bool:
        entry = self.entry(form)
        return entry is not None and entry.supported

    def supports_latency(self) -> bool:
        return self.version in LATENCY_VERSIONS

    def scalar_latency(self, form: InstructionForm) -> Optional[float]:
        """IACA's single-value latency (versions <= 2.1 only)."""
        if not self.supports_latency():
            return None
        entry = self.entry(form)
        if entry is None or not entry.supported:
            return None
        return entry.latency

    # ------------------------------------------------------------------

    def measure(
        self,
        code: Sequence[Instruction],
        init: Optional[Dict[str, int]] = None,
    ) -> CounterValues:
        """Static steady-state analysis of *code* as a loop body.

        ``init`` is accepted for interface compatibility and ignored: a
        static analyzer knows nothing about register contents, which is
        precisely why it cannot model value-dependent divider timing.
        """
        port_loads: Dict[int, float] = {p: 0.0 for p in self.uarch.ports}
        total_uops = 0.0
        for instruction in code:
            entry = self.entry(instruction.form)
            if entry is None or not entry.supported:
                raise ValueError(
                    f"IACA {self.version} does not support "
                    f"{instruction.form.uid}"
                )
            total_uops += entry.uops_total
            for ports, n in entry.port_view:
                for _ in range(n):
                    # Least-loaded binding, like the hardware scheduler's
                    # steady state; IACA's reports show the same balanced
                    # fractional spreads.
                    port = min(
                        ports, key=lambda p: (port_loads[p], p)
                    )
                    port_loads[port] += 1.0
        bound = max(port_loads.values()) if port_loads else 0.0
        # The front end issues at most `issue_width` µops per cycle.
        cycles = max(bound, total_uops / self.uarch.issue_width)
        return CounterValues(
            cycles=cycles,
            port_uops=port_loads,
            uops=total_uops,
            instructions=len(code),
        )

    def measure_many(self, experiments: Sequence[Experiment]) -> List:
        """Batch protocol of the experiment executor (see
        :class:`~repro.measure.executor.ExperimentExecutor`): analyze
        each experiment, capturing per-experiment failures instead of
        aborting the batch."""
        outcomes: List = []
        for experiment in experiments:
            try:
                outcomes.append(
                    self.measure(
                        list(experiment.code), experiment.init_dict()
                    )
                )
            except Exception as error:
                outcomes.append(
                    ExperimentFailure(
                        error,
                        key=experiment.content_key(),
                        tag=experiment.tag,
                    )
                )
        return outcomes
