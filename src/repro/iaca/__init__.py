"""Reimplementation of Intel IACA (the comparison substrate of Section 6.3).

IACA is a closed-source static analyzer that treats a code sequence as a
loop body and reports steady-state throughput and port bindings.  This
reimplementation reproduces its *documented* behaviours and its *documented
bugs* (Section 7.2): it ignores dependencies on status flags and through
memory, its per-version instruction tables disagree with the hardware for a
deterministic set of instruction variants (including every named case of
Section 7.2), latency analysis exists only in versions up to 2.1/2.2, and
each version supports a different set of microarchitectures (Table 1).
"""

from repro.iaca.analyzer import IacaBackend, iaca_versions_for
from repro.iaca.tables import IacaEntry, iaca_entry

__all__ = ["IacaBackend", "IacaEntry", "iaca_entry", "iaca_versions_for"]
