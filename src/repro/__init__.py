"""uops.info reproduction: characterizing latency, throughput, and port
usage of x86 instructions on Intel Core microarchitectures.

Reproduction of Abel & Reineke, "uops.info: Characterizing Latency,
Throughput, and Port Usage of Instructions on Intel Microarchitectures"
(ASPLOS 2019).  The physical processors are replaced by a cycle-accurate
out-of-order pipeline simulator observed exclusively through performance
counters; everything else — the instruction-set description, the
microbenchmark generators, Algorithm 1, the per-operand-pair latency
chains, the throughput LP, the IACA comparison, the XML output — is
implemented as described in the paper.

Quick start::

    from repro import characterize

    result = characterize("ADD_R64_R64", "SKL")
    print(result.summary())
"""

from repro.core.cache import ResultCache
from repro.core.result import InstructionCharacterization
from repro.core.runner import CharacterizationRunner
from repro.core.sweep import SweepEngine
from repro.isa.database import load_default_database
from repro.measure.backend import HardwareBackend, MeasurementConfig
from repro.uarch.configs import ALL_UARCHES, get_uarch

__version__ = "1.0.0"

__all__ = [
    "ALL_UARCHES",
    "CharacterizationRunner",
    "HardwareBackend",
    "InstructionCharacterization",
    "MeasurementConfig",
    "ResultCache",
    "SweepEngine",
    "characterize",
    "get_uarch",
    "load_default_database",
]


def characterize(
    form_uid: str, uarch_name: str
) -> InstructionCharacterization:
    """Characterize one instruction variant on one generation.

    Args:
        form_uid: e.g. ``"ADD_R64_R64"`` or ``"AESDEC_XMM_XMM"``.
        uarch_name: e.g. ``"SKL"`` or ``"Skylake"``.
    """
    database = load_default_database()
    backend = HardwareBackend(get_uarch(uarch_name))
    runner = CharacterizationRunner(backend, database)
    outcome = runner.characterize(database.by_uid(form_uid))
    if outcome is None:
        raise ValueError(
            f"{form_uid} cannot be measured on {uarch_name}"
        )
    return outcome
