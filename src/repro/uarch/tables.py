"""Category-driven construction of ground-truth µop tables.

For every (instruction form, microarchitecture) pair, :func:`build_entry`
produces the :class:`~repro.uarch.uops.UarchEntry` the pipeline simulator
executes.  Rules are keyed on the form's semantic category; functional-unit
names are resolved through the generation's port map, and generation groups
(`Nehalem/Westmere`, `Sandy/Ivy Bridge`, `Haswell/Broadwell`,
`Skylake/Kaby/Coffee Lake`) encode the evolution the paper's case studies
observe (AES µop counts, ADC decomposition, SHLD same-register behaviour,
MOVQ2DQ/MOVDQ2Q port assignments, ...).

Memory operands are handled uniformly: a read memory slot contributes a load
µop feeding the kernel µops, a written slot contributes store-address and
store-data µops consuming the kernel result — mirroring how real Intel cores
crack memory-operand instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.isa.instruction import (
    ATTR_DEP_BREAKING,
    ATTR_UNSUPPORTED,
    ATTR_ZERO_IDIOM,
    InstructionForm,
)
from repro.isa.operands import OperandKind
from repro.uarch.model import UarchConfig
from repro.uarch.uops import (
    DOMAIN_FVEC,
    DOMAIN_INT,
    DOMAIN_IVEC,
    KIND_ALU,
    KIND_LOAD,
    KIND_STORE_ADDR,
    KIND_STORE_DATA,
    Ref,
    UarchEntry,
    UopSpec,
)

# Generation groups.
PRE_SNB = ("NHM", "WSM")
SNB_GROUP = ("SNB", "IVB")
HSW_GROUP = ("HSW", "BDW")
SKL_GROUP = ("SKL", "KBL", "CFL")


def OP(i: int) -> Ref:
    return ("op", i)


FLAGS: Ref = ("flags",)


def UOP(k: int) -> Ref:
    return ("uop", k)


def ADDR(i: int) -> Ref:
    return ("addr", i)


@dataclass
class KUop:
    """A not-yet-finalized µop in a kernel plan.

    ``fu`` may be a functional-unit name (resolved through the generation's
    port map) or an explicit port set.  Inputs referring to memory slots are
    rewritten to load-µop outputs during finalization.
    """

    fu: Union[str, frozenset]
    latency: int = 1
    inputs: Tuple[Ref, ...] = ()
    outputs: Tuple[Ref, ...] = ()
    input_delays: Dict[Ref, int] = field(default_factory=dict)
    output_latencies: Dict[Ref, int] = field(default_factory=dict)
    kind: str = KIND_ALU
    divider_cycles: int = 0
    domain: str = DOMAIN_INT


Plan = List[KUop]
RuleResult = Union[Plan, Tuple[Plan, Optional[Plan]]]
Rule = Callable[[InstructionForm, UarchConfig], RuleResult]

_RULES: Dict[str, Rule] = {}


def rule(*categories: str) -> Callable[[Rule], Rule]:
    def decorate(fn: Rule) -> Rule:
        for category in categories:
            if category in _RULES:
                raise AssertionError(f"duplicate rule for {category}")
            _RULES[category] = fn
        return fn

    return decorate


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def auto_inputs(form: InstructionForm, skip: Sequence[int] = ()) -> Tuple:
    """Default dataflow inputs: every read slot plus flags if read."""
    refs: List[Ref] = []
    for i, spec in enumerate(form.operands):
        if i in skip or spec.kind == OperandKind.IMM:
            continue
        if spec.read:
            refs.append(OP(i))
    if form.flags_read:
        refs.append(FLAGS)
    return tuple(refs)


def auto_outputs(form: InstructionForm, skip: Sequence[int] = ()) -> Tuple:
    refs: List[Ref] = []
    for i, spec in enumerate(form.operands):
        if i in skip or spec.kind == OperandKind.IMM:
            continue
        if spec.written:
            refs.append(OP(i))
    if form.flags_written:
        refs.append(FLAGS)
    return tuple(refs)


def single(
    form: InstructionForm,
    fu: str,
    latency: int = 1,
    domain: str = DOMAIN_INT,
    **kwargs,
) -> Plan:
    """A one-µop plan with the default inputs and outputs."""
    return [
        KUop(
            fu=fu,
            latency=latency,
            inputs=auto_inputs(form),
            outputs=auto_outputs(form),
            domain=domain,
            **kwargs,
        )
    ]


def in_group(uarch: UarchConfig, *groups) -> bool:
    return any(uarch.name in g for g in groups)


def _vec_domain(form: InstructionForm) -> str:
    """Guess the execution domain of a vector instruction from its name."""
    mnem = form.mnemonic.lstrip("V") if form.mnemonic.startswith("V") else \
        form.mnemonic
    if mnem.startswith("P") or "DQ" in mnem:
        return DOMAIN_IVEC
    return DOMAIN_FVEC


# ---------------------------------------------------------------------------
# Integer ALU and moves
# ---------------------------------------------------------------------------


@rule("int_alu", "movsx", "movzx", "bt", "bts", "cbw", "flags_op",
      "mov_imm")
def _int_alu(form, uarch):
    return single(form, "int_alu", 1)


@rule("mov")
def _mov(form, uarch):
    return single(form, "int_alu", 1)


@rule("int_alu_carry")
def _adc(form, uarch):
    if in_group(uarch, SKL_GROUP):
        # One fused µop on the shift/branch units.
        return single(form, "shift", 1)
    if in_group(uarch, HSW_GROUP):
        # Section 5.1: ADC on Haswell is 1*p0156 + 1*p06, not 2*p0156.
        compute = KUop(
            fu="int_alu",
            latency=1,
            inputs=tuple(r for r in auto_inputs(form) if r != FLAGS),
            outputs=(UOP(1),),
        )
        merge = KUop(
            fu="shift",
            latency=1,
            inputs=(UOP(0), FLAGS),
            outputs=auto_outputs(form),
        )
        return [compute, merge]
    compute = KUop(
        fu="int_alu",
        latency=1,
        inputs=tuple(r for r in auto_inputs(form) if r != FLAGS),
        outputs=(UOP(1),),
    )
    merge = KUop(
        fu="int_alu",
        latency=1,
        inputs=(UOP(0), FLAGS),
        outputs=auto_outputs(form),
    )
    return [compute, merge]


@rule("load", "vec_load")
def _load(form, uarch):
    mem_slot = next(
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.MEM
    )
    dst = auto_outputs(form)
    latency = (
        uarch.vec_load_latency
        if form.operands[0].kind in (OperandKind.VEC, OperandKind.MMX)
        else uarch.load_latency
    )
    return [
        KUop(
            fu="load",
            latency=latency,
            inputs=(ADDR(mem_slot),),
            outputs=dst,
            kind=KIND_LOAD,
            domain=_vec_domain(form)
            if form.operands[0].kind == OperandKind.VEC
            else DOMAIN_INT,
        )
    ]


@rule("store", "vec_store")
def _store(form, uarch):
    mem_slot = next(
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.MEM and s.written
    )
    data_refs = tuple(
        OP(i)
        for i, s in enumerate(form.operands)
        if s.kind != OperandKind.IMM and s.read and i != mem_slot
    )
    return [
        KUop(
            fu="store_addr",
            latency=1,
            inputs=(ADDR(mem_slot),),
            outputs=(("staddr", mem_slot),),
            kind=KIND_STORE_ADDR,
        ),
        KUop(
            fu="store_data",
            latency=1,
            inputs=data_refs,
            outputs=(("mem", mem_slot),),
            kind=KIND_STORE_DATA,
        ),
    ]


@rule("lea")
def _lea(form, uarch):
    agen_slot = next(
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.AGEN
    )
    return [
        KUop(
            fu="lea",
            latency=1,
            inputs=(ADDR(agen_slot),),
            outputs=auto_outputs(form),
        )
    ]


@rule("xchg")
def _xchg(form, uarch):
    # Three ALU µops; lat(op0->op1) = 2, lat(op1->op0) = 1 (Section 7.3.5:
    # XCHG is among the instructions with multiple latencies).
    return [
        KUop(fu="int_alu", latency=1, inputs=(OP(0),), outputs=(UOP(2),)),
        KUop(fu="int_alu", latency=1, inputs=(OP(1),), outputs=(OP(0),)),
        KUop(fu="int_alu", latency=1, inputs=(UOP(0),), outputs=(OP(1),)),
    ]


@rule("xadd")
def _xadd(form, uarch):
    return [
        KUop(fu="int_alu", latency=1, inputs=(OP(0), OP(1)),
             outputs=(UOP(2),)),
        KUop(fu="int_alu", latency=1, inputs=(OP(0),), outputs=(OP(1),)),
        KUop(fu="int_alu", latency=1, inputs=(UOP(0),),
             outputs=(OP(0), FLAGS)),
    ]


@rule("bswap")
def _bswap(form, uarch):
    # Section 7.2: on the hardware the 32-bit variant has one µop, the
    # 64-bit variant two (IACA models both with two).
    if form.operands[0].width == 32:
        return single(form, "slow_int", 1)
    return [
        KUop(fu="slow_int", latency=1, inputs=(OP(0),), outputs=(UOP(1),)),
        KUop(fu="int_alu", latency=1, inputs=(UOP(0),), outputs=(OP(0),)),
    ]


# ---------------------------------------------------------------------------
# Shifts and rotates
# ---------------------------------------------------------------------------


def _is_cl_variant(form: InstructionForm) -> bool:
    return any(s.fixed == "CL" for s in form.operands)


@rule("shift")
def _shift(form, uarch):
    if not _is_cl_variant(form):
        # Flags are produced one cycle after the register result
        # (Section 7.3.5: SHL/SHR/SAR have pair-dependent latencies).
        kuop = KUop(
            fu="shift",
            latency=1,
            inputs=auto_inputs(form),
            outputs=auto_outputs(form),
            output_latencies={FLAGS: 2},
        )
        return [kuop]
    if in_group(uarch, PRE_SNB):
        return single(form, "shift", 1)
    # Sandy Bridge on: shift-by-CL carries two flag-merge µops.
    reg_inputs = tuple(r for r in auto_inputs(form) if r != FLAGS)
    out_no_flags = tuple(r for r in auto_outputs(form) if r != FLAGS)
    return [
        KUop(fu="shift", latency=1, inputs=reg_inputs,
             outputs=out_no_flags + (UOP(1),)),
        KUop(fu="shift", latency=1, inputs=(UOP(0), FLAGS),
             outputs=(FLAGS,)),
        KUop(fu="int_alu", latency=1, inputs=(UOP(1),), outputs=()),
    ]


@rule("rotate")
def _rotate(form, uarch):
    if not _is_cl_variant(form):
        return [
            KUop(
                fu="shift",
                latency=1,
                inputs=auto_inputs(form),
                outputs=auto_outputs(form),
                output_latencies={FLAGS: 2},
            )
        ]
    if in_group(uarch, PRE_SNB):
        return single(form, "shift", 1)
    reg_inputs = tuple(r for r in auto_inputs(form) if r != FLAGS)
    out_no_flags = tuple(r for r in auto_outputs(form) if r != FLAGS)
    return [
        KUop(fu="shift", latency=1, inputs=reg_inputs,
             outputs=out_no_flags + (UOP(1),)),
        KUop(fu="shift", latency=1, inputs=(UOP(0), FLAGS),
             outputs=(FLAGS,)),
    ]


@rule("rotate_carry")
def _rotate_carry(form, uarch):
    return [
        KUop(fu="shift", latency=1, inputs=auto_inputs(form),
             outputs=(UOP(1),)),
        KUop(fu="int_alu", latency=1, inputs=(UOP(0),), outputs=(UOP(2),)),
        KUop(fu="shift", latency=1, inputs=(UOP(1),),
             outputs=auto_outputs(form)),
    ]


@rule("shld")
def _shld(form, uarch):
    if in_group(uarch, PRE_SNB):
        # Section 7.3.2 (Nehalem): lat(R1,R1) = 3 but lat(R2,R1) = 4.
        prepare = KUop(
            fu="shift", latency=1, inputs=(OP(1),), outputs=(UOP(1),)
        )
        combine_inputs = (OP(0), UOP(0))
        if form.flags_read:
            combine_inputs += (FLAGS,)
        combine = KUop(
            fu="shift",
            latency=3,
            inputs=combine_inputs,
            outputs=auto_outputs(form),
        )
        return [prepare, combine]
    plan = [
        KUop(
            fu="slow_int",
            latency=3,
            inputs=auto_inputs(form),
            outputs=auto_outputs(form),
        )
    ]
    if in_group(uarch, SKL_GROUP):
        # Section 7.3.2 (Skylake): latency 1 when the same register is used
        # for both operands (Nehalem does not exhibit this).
        same_reg = [
            KUop(
                fu="slow_int",
                latency=1,
                inputs=auto_inputs(form),
                outputs=auto_outputs(form),
            )
        ]
        return plan, same_reg
    return plan


# ---------------------------------------------------------------------------
# Multiplication and division
# ---------------------------------------------------------------------------


@rule("imul")
def _imul(form, uarch):
    # lat(dst->dst) = 3 but lat(src->dst) = 4 on the two-operand form
    # (Section 7.3.5 lists (I)MUL among the multi-latency instructions).
    explicit = [
        i for i, s in enumerate(form.operands)
        if s.kind != OperandKind.IMM
    ]
    delays = {}
    if len(explicit) >= 2 and form.operands[0].read:
        delays[OP(explicit[1])] = 1
    return [
        KUop(
            fu="slow_int",
            latency=3,
            inputs=auto_inputs(form),
            outputs=auto_outputs(form),
            input_delays=delays,
        )
    ]


@rule("mul1")
def _mul1(form, uarch):
    width = form.operands[0].width
    if width == 8:
        return single(form, "slow_int", 3)
    low = KUop(
        fu="slow_int",
        latency=3,
        inputs=(OP(0), OP(1)),
        outputs=(OP(1),),
    )
    high = KUop(
        fu="int_alu",
        latency=4,
        inputs=(OP(0), OP(1)),
        outputs=(OP(2), FLAGS),
    )
    return [low, high]


@rule("div")
def _div(form, uarch):
    timing = uarch.int_div
    width = form.operands[0].width
    filler_count = {8: 0, 16: 1, 32: 2, 64: 3}[width]
    div = KUop(
        fu="divider",
        latency=timing.slow_latency,
        inputs=auto_inputs(form),
        outputs=auto_outputs(form),
        divider_cycles=timing.slow_occupancy,
    )
    plan = [div]
    for k in range(filler_count):
        plan.append(
            KUop(fu="int_alu", latency=1, inputs=(UOP(0),), outputs=())
        )
    return plan


# ---------------------------------------------------------------------------
# Conditional operations, branches, flags
# ---------------------------------------------------------------------------


@rule("cmov")
def _cmov(form, uarch):
    if in_group(uarch, HSW_GROUP, SKL_GROUP) and uarch.name != "HSW":
        return single(form, "int_alu", 1)
    select = KUop(
        fu="int_alu", latency=1, inputs=(OP(0), FLAGS), outputs=(UOP(1),)
    )
    merge = KUop(
        fu="int_alu", latency=1, inputs=(UOP(0), OP(1)),
        outputs=auto_outputs(form),
    )
    return [select, merge]


@rule("cmov_be")
def _cmov_be(form, uarch):
    # CMOV(N)BE reads both CF and ZF and stays a two-µop instruction on all
    # generations (Section 7.3.5: multi-latency).
    select = KUop(
        fu="int_alu", latency=1, inputs=(FLAGS,), outputs=(UOP(1),)
    )
    merge = KUop(
        fu="int_alu", latency=1, inputs=(UOP(0), OP(0), OP(1)),
        outputs=auto_outputs(form),
    )
    return [select, merge]


@rule("setcc")
def _setcc(form, uarch):
    return single(form, "int_alu", 1)


@rule("branch", "jmp", "jmp_indirect")
def _branch(form, uarch):
    return single(form, "branch", 1)


@rule("call")
def _call(form, uarch):
    rsp = next(i for i, s in enumerate(form.operands) if s.fixed == "RSP")
    return [
        KUop(fu="int_alu", latency=1, inputs=(OP(rsp),), outputs=(OP(rsp),)),
        KUop(fu="store_addr", latency=1, inputs=(OP(rsp),),
             outputs=(("staddr", "stack"),), kind=KIND_STORE_ADDR),
        KUop(fu="store_data", latency=1, inputs=(),
             outputs=(("mem", "stack"),), kind=KIND_STORE_DATA),
        KUop(fu="branch", latency=1, inputs=(OP(0),), outputs=()),
    ]


@rule("ret")
def _ret(form, uarch):
    rsp = 0
    return [
        KUop(fu="load", latency=uarch.load_latency, inputs=(OP(rsp),),
             outputs=(("ld", "stack"),), kind=KIND_LOAD),
        KUop(fu="int_alu", latency=1, inputs=(OP(rsp),), outputs=(OP(rsp),)),
        KUop(fu="branch", latency=1, inputs=(("ld", "stack"),), outputs=()),
    ]


@rule("lahf")
def _lahf(form, uarch):
    return single(form, "shift", 1)


@rule("sahf")
def _sahf(form, uarch):
    # Section 7.2: on Haswell hardware (and IACA 2.1) SAHF uses ports 0 and
    # 6; IACA 2.2-3.0 wrongly add ports 1 and 5.
    return single(form, "shift", 1)


@rule("cwd")
def _cwd(form, uarch):
    return single(form, "int_alu", 1)


@rule("bitscan", "popcnt")
def _bitscan(form, uarch):
    return single(form, "slow_int", 3)


# ---------------------------------------------------------------------------
# Stack, locked, string, system
# ---------------------------------------------------------------------------


@rule("push")
def _push(form, uarch):
    rsp = next(i for i, s in enumerate(form.operands) if s.fixed == "RSP")
    data = tuple(
        OP(i)
        for i, s in enumerate(form.operands)
        if i != rsp and s.kind != OperandKind.IMM and s.read
    )
    return [
        KUop(fu="store_addr", latency=1, inputs=(OP(rsp),),
             outputs=(("staddr", "stack"),), kind=KIND_STORE_ADDR),
        KUop(fu="store_data", latency=1, inputs=data,
             outputs=(("mem", "stack"),), kind=KIND_STORE_DATA),
    ]


@rule("pop")
def _pop(form, uarch):
    rsp = next(i for i, s in enumerate(form.operands) if s.fixed == "RSP")
    dst = tuple(
        OP(i)
        for i, s in enumerate(form.operands)
        if i != rsp and s.written and s.kind != OperandKind.MEM
    )
    plan = [
        KUop(fu="load", latency=uarch.load_latency, inputs=(OP(rsp),),
             outputs=dst + (("ld", "stack"),), kind=KIND_LOAD),
    ]
    return plan


@rule("lock_rmw", "xchg_mem", "xadd_mem")
def _lock_rmw(form, uarch):
    mem_slot = next(
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.MEM
    )
    other = tuple(
        OP(i)
        for i, s in enumerate(form.operands)
        if i != mem_slot and s.kind != OperandKind.IMM and s.read
    )
    reg_outs = tuple(
        OP(i)
        for i, s in enumerate(form.operands)
        if i != mem_slot and s.written and s.kind != OperandKind.MEM
    )
    flag_out = (FLAGS,) if form.flags_written else ()
    return [
        KUop(fu="load", latency=uarch.load_latency,
             inputs=(ADDR(mem_slot),), outputs=(("ld", mem_slot),),
             kind=KIND_LOAD),
        KUop(fu="int_alu", latency=16,
             inputs=(("ld", mem_slot),) + other,
             outputs=(UOP(2),) + reg_outs + flag_out),
        KUop(fu="int_alu", latency=1, inputs=(UOP(1),), outputs=()),
        KUop(fu="int_alu", latency=1, inputs=(UOP(1),), outputs=()),
        KUop(fu="store_addr", latency=1, inputs=(ADDR(mem_slot),),
             outputs=(("staddr", mem_slot),), kind=KIND_STORE_ADDR),
        KUop(fu="store_data", latency=1, inputs=(UOP(1),),
             outputs=(("mem", mem_slot),), kind=KIND_STORE_DATA),
    ]


@rule("string_rep")
def _string_rep(form, uarch):
    # REP-prefixed instructions have a variable number of µops on real
    # hardware; our ground truth uses a fixed small iteration count.
    ins = auto_inputs(form)
    outs = auto_outputs(form)
    return [
        KUop(fu="int_alu", latency=1, inputs=ins, outputs=(UOP(1),)),
        KUop(fu="load", latency=uarch.load_latency, inputs=(UOP(0),),
             outputs=(("ld", "stack"),), kind=KIND_LOAD),
        KUop(fu="store_addr", latency=1, inputs=(UOP(0),),
             outputs=(("staddr", "stack"),), kind=KIND_STORE_ADDR),
        KUop(fu="store_data", latency=1, inputs=(("ld", "stack"),),
             outputs=(("mem", "stack"),), kind=KIND_STORE_DATA),
        KUop(fu="int_alu", latency=1, inputs=(UOP(0),), outputs=outs),
        KUop(fu="int_alu", latency=1, inputs=(UOP(4),), outputs=()),
        KUop(fu="int_alu", latency=1, inputs=(UOP(4),), outputs=()),
    ]


@rule("string_one")
def _string_one(form, uarch):
    """MOVSx: one load + one store iteration plus pointer updates."""
    rsi, rdi = 0, 1
    return [
        KUop(fu="load", latency=uarch.load_latency, inputs=(OP(rsi),),
             outputs=(("ld", "stack"),), kind=KIND_LOAD),
        KUop(fu="store_addr", latency=1, inputs=(OP(rdi),),
             outputs=(("staddr", "stack"),), kind=KIND_STORE_ADDR),
        KUop(fu="store_data", latency=1, inputs=(("ld", "stack"),),
             outputs=(("mem", "stack"),), kind=KIND_STORE_DATA),
        KUop(fu="int_alu", latency=1, inputs=(OP(rsi),),
             outputs=(OP(rsi),)),
        KUop(fu="int_alu", latency=1, inputs=(OP(rdi),),
             outputs=(OP(rdi),)),
    ]


@rule("string_load")
def _string_load(form, uarch):
    pointer = 0
    outs = auto_outputs(form)
    return [
        KUop(fu="load", latency=uarch.load_latency,
             inputs=(OP(pointer),), outputs=outs + (("ld", "stack"),),
             kind=KIND_LOAD),
        KUop(fu="int_alu", latency=1, inputs=(OP(pointer),),
             outputs=(OP(pointer),)),
    ]


@rule("string_store")
def _string_store(form, uarch):
    pointer = 0
    data = tuple(
        OP(i) for i, s in enumerate(form.operands)
        if i != pointer and s.read
    )
    return [
        KUop(fu="store_addr", latency=1, inputs=(OP(pointer),),
             outputs=(("staddr", "stack"),), kind=KIND_STORE_ADDR),
        KUop(fu="store_data", latency=1, inputs=data,
             outputs=(("mem", "stack"),), kind=KIND_STORE_DATA),
        KUop(fu="int_alu", latency=1, inputs=(OP(pointer),),
             outputs=(OP(pointer),)),
    ]


@rule("string_cmp")
def _string_cmp(form, uarch):
    rsi, rdi = 0, 1
    return [
        KUop(fu="load", latency=uarch.load_latency, inputs=(OP(rsi),),
             outputs=(("ld", "stack"),), kind=KIND_LOAD),
        KUop(fu="load", latency=uarch.load_latency, inputs=(OP(rdi),),
             outputs=(("ld", "stack"),), kind=KIND_LOAD),
        KUop(fu="int_alu", latency=1, inputs=(UOP(0), UOP(1)),
             outputs=(FLAGS,)),
        KUop(fu="int_alu", latency=1, inputs=(OP(rsi),),
             outputs=(OP(rsi),)),
        KUop(fu="int_alu", latency=1, inputs=(OP(rdi),),
             outputs=(OP(rdi),)),
    ]


@rule("pushf")
def _pushf(form, uarch):
    rsp = 0
    return [
        KUop(fu="int_alu", latency=1, inputs=(FLAGS,), outputs=()),
        KUop(fu="store_addr", latency=1, inputs=(OP(rsp),),
             outputs=(("staddr", "stack"),), kind=KIND_STORE_ADDR),
        KUop(fu="store_data", latency=1, inputs=(UOP(0),),
             outputs=(("mem", "stack"),), kind=KIND_STORE_DATA),
    ]


@rule("popf")
def _popf(form, uarch):
    rsp = 0
    return [
        KUop(fu="load", latency=uarch.load_latency, inputs=(OP(rsp),),
             outputs=(("ld", "stack"),), kind=KIND_LOAD),
        KUop(fu="shift", latency=1, inputs=(("ld", "stack"),),
             outputs=(UOP(2),)),
        KUop(fu="shift", latency=1, inputs=(UOP(1),), outputs=(FLAGS,)),
    ]


@rule("leave")
def _leave(form, uarch):
    rbp, rsp = 0, 1
    return [
        KUop(fu="int_alu", latency=1, inputs=(OP(rbp),),
             outputs=(OP(rsp),)),
        KUop(fu="load", latency=uarch.load_latency, inputs=(OP(rbp),),
             outputs=(OP(rbp), ("ld", "stack")), kind=KIND_LOAD),
    ]


@rule("cmpxchg16b")
def _cmpxchg16b(form, uarch):
    mem_slot = 0
    ins = auto_inputs(form)
    plan = [
        KUop(fu="load", latency=uarch.load_latency,
             inputs=(ADDR(mem_slot),), outputs=(("ld", mem_slot),),
             kind=KIND_LOAD),
        KUop(fu="int_alu", latency=2,
             inputs=(("ld", mem_slot),) + tuple(
                 r for r in ins if r[0] == "op" and r[1] != mem_slot
             ),
             outputs=(OP(1), OP(2), FLAGS)),
        KUop(fu="store_addr", latency=1, inputs=(ADDR(mem_slot),),
             outputs=(("staddr", mem_slot),), kind=KIND_STORE_ADDR),
        KUop(fu="store_data", latency=1, inputs=(UOP(1),),
             outputs=(("mem", mem_slot),), kind=KIND_STORE_DATA),
    ]
    for _ in range(4):
        plan.append(
            KUop(fu="int_alu", latency=1, inputs=(UOP(1),), outputs=())
        )
    return plan


@rule("serializing")
def _serializing(form, uarch):
    plan = []
    for _ in range(4):
        plan.append(
            KUop(fu="int_alu", latency=1, inputs=(), outputs=())
        )
    plan.append(
        KUop(fu="int_alu", latency=1, inputs=auto_inputs(form),
             outputs=auto_outputs(form))
    )
    return plan


@rule("fence")
def _fence(form, uarch):
    return [KUop(fu=frozenset(), latency=1, inputs=(), outputs=())]


@rule("rdtsc")
def _rdtsc(form, uarch):
    plan = [
        KUop(fu="int_alu", latency=5, inputs=(),
             outputs=auto_outputs(form)),
    ]
    for _ in range(5):
        plan.append(KUop(fu="int_alu", latency=1, inputs=(), outputs=()))
    return plan


@rule("nop")
def _nop(form, uarch):
    return [KUop(fu=frozenset(), latency=0, inputs=(), outputs=())]


@rule("pause")
def _pause(form, uarch):
    return [
        KUop(fu=frozenset(), latency=0, inputs=(), outputs=())
        for _ in range(4)
    ]


@rule("unsupported")
def _unsupported(form, uarch):
    raise AssertionError("unsupported instructions have no entry")


# ---------------------------------------------------------------------------
# Vector: moves and cross-file transfers
# ---------------------------------------------------------------------------


@rule("vec_mov")
def _vec_mov(form, uarch):
    return single(form, "vec_logic", 1, domain=_vec_domain(form))


@rule("mmx_mov")
def _mmx_mov(form, uarch):
    return single(form, "mmx_alu", 1, domain=DOMAIN_IVEC)


@rule("vec_from_gpr")
def _vec_from_gpr(form, uarch):
    return single(form, "vec_gpr", 1, domain=DOMAIN_IVEC)


@rule("vec_to_gpr", "vec_movmsk")
def _vec_to_gpr(form, uarch):
    return single(form, "vec_gpr", 2, domain=DOMAIN_IVEC)


@rule("movq2dq")
def _movq2dq(form, uarch):
    if in_group(uarch, SKL_GROUP):
        # Section 7.3.3: one µop on port 0 plus one µop that can use ports
        # 0, 1 AND 5 (prior work reported 1*p0 + 1*p15).
        return [
            KUop(fu="vec_p0", latency=1, inputs=(OP(1),),
                 outputs=(UOP(1),), domain=DOMAIN_IVEC),
            KUop(fu="vec_int_alu", latency=1, inputs=(UOP(0),),
                 outputs=(OP(0),), domain=DOMAIN_IVEC),
        ]
    return [
        KUop(fu="vec_shuffle", latency=1, inputs=(OP(1),),
             outputs=(UOP(1),), domain=DOMAIN_IVEC),
        KUop(fu="vec_logic", latency=1, inputs=(UOP(0),),
             outputs=(OP(0),), domain=DOMAIN_IVEC),
    ]


@rule("movdq2q")
def _movdq2q(form, uarch):
    if in_group(uarch, HSW_GROUP, SKL_GROUP):
        # Section 7.3.4 (Haswell): 1*p5 + 1*p015.
        return [
            KUop(fu="vec_shuffle", latency=1, inputs=(OP(1),),
                 outputs=(UOP(1),), domain=DOMAIN_IVEC),
            KUop(fu="vec_logic", latency=1, inputs=(UOP(0),),
                 outputs=(OP(0),), domain=DOMAIN_IVEC),
        ]
    # Section 7.3.4 (Sandy Bridge): 1*p015 + 1*p5.
    return [
        KUop(fu="vec_logic", latency=1, inputs=(OP(1),),
             outputs=(UOP(1),), domain=DOMAIN_IVEC),
        KUop(fu="vec_shuffle", latency=1, inputs=(UOP(0),),
             outputs=(OP(0),), domain=DOMAIN_IVEC),
    ]


# ---------------------------------------------------------------------------
# Vector: integer
# ---------------------------------------------------------------------------


@rule("vec_int_alu", "vec_int_cmp", "mmx_alu")
def _vec_int_alu(form, uarch):
    fu = "mmx_alu" if form.operands[0].kind == OperandKind.MMX else \
        "vec_int_alu"
    return single(form, fu, 1, domain=DOMAIN_IVEC)


@rule("vec_logic")
def _vec_logic(form, uarch):
    return single(form, "vec_logic", 1, domain=_vec_domain(form))


@rule("vec_int_mul", "vec_psadbw")
def _vec_int_mul(form, uarch):
    latency = 3 if form.category == "vec_psadbw" else 5
    return single(form, "vec_int_mul", latency, domain=DOMAIN_IVEC)


@rule("vec_shift_imm")
def _vec_shift_imm(form, uarch):
    return single(form, "vec_shift", 1, domain=DOMAIN_IVEC)


@rule("vec_shift")
def _vec_shift(form, uarch):
    # Variable shifts: the count operand is needed one cycle later than the
    # data operand (Section 7.3.5: (V)PSLL/PSRL/PSRA are multi-latency).
    count_slot = max(
        i for i, s in enumerate(form.operands)
        if s.kind != OperandKind.IMM and s.read
    )
    kuop = KUop(
        fu="vec_shift",
        latency=1,
        inputs=auto_inputs(form),
        outputs=auto_outputs(form),
        input_delays={OP(count_slot): 1},
        domain=DOMAIN_IVEC,
    )
    return [kuop]


@rule("vec_shuffle", "vec_shuffle_imm", "avx_lane")
def _vec_shuffle(form, uarch):
    latency = 3 if form.category == "avx_lane" else 1
    return single(form, "vec_shuffle", latency, domain=_vec_domain(form))


@rule("vec_pshufb")
def _vec_pshufb(form, uarch):
    control_slot = max(
        i for i, s in enumerate(form.operands)
        if s.kind != OperandKind.IMM and s.read
    )
    fu = "mmx_alu" if form.operands[0].kind == OperandKind.MMX else \
        "vec_shuffle"
    kuop = KUop(
        fu=fu,
        latency=1,
        inputs=auto_inputs(form),
        outputs=auto_outputs(form),
        input_delays={OP(control_slot): 1},
        domain=DOMAIN_IVEC,
    )
    return [kuop]


@rule("vec_blend")
def _vec_blend(form, uarch):
    return single(form, "vec_logic", 1, domain=_vec_domain(form))


@rule("vec_blendv")
def _vec_blendv(form, uarch):
    mask_slot = max(
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.VEC and s.read
    )
    domain = _vec_domain(form)
    if in_group(uarch, SKL_GROUP):
        kuop = KUop(
            fu="vec_blendv",
            latency=1,
            inputs=auto_inputs(form),
            outputs=auto_outputs(form),
            input_delays={OP(mask_slot): 1},
            domain=domain,
        )
        return [kuop]
    if in_group(uarch, HSW_GROUP):
        first = KUop(
            fu="vec_blendv", latency=1,
            inputs=tuple(r for r in auto_inputs(form)
                         if r != OP(mask_slot)),
            outputs=(UOP(1),), domain=domain,
        )
        second = KUop(
            fu="vec_logic", latency=1,
            inputs=(UOP(0), OP(mask_slot)),
            outputs=auto_outputs(form), domain=domain,
        )
        return [first, second]
    # Nehalem/Westmere/Sandy Bridge: two µops that can EACH use ports 0 and
    # 5 — the paper's Section 5.1 example of a usage (2*p05) that
    # isolation-based inference cannot distinguish from 1*p0 + 1*p5.
    first = KUop(
        fu="vec_blendv", latency=1,
        inputs=tuple(r for r in auto_inputs(form) if r != OP(mask_slot)),
        outputs=(UOP(1),), domain=domain,
    )
    second = KUop(
        fu="vec_blendv", latency=1,
        inputs=(UOP(0), OP(mask_slot)),
        outputs=auto_outputs(form), domain=domain,
    )
    return [first, second]


# ---------------------------------------------------------------------------
# Vector: floating point
# ---------------------------------------------------------------------------

_FP_ADD_LATENCY = {"NHM": 3, "WSM": 3, "SNB": 3, "IVB": 3, "HSW": 3,
                   "BDW": 3, "SKL": 4, "KBL": 4, "CFL": 4}
_FP_MUL_LATENCY = {"NHM": 4, "WSM": 4, "SNB": 5, "IVB": 5, "HSW": 5,
                   "BDW": 3, "SKL": 4, "KBL": 4, "CFL": 4}


@rule("vec_fp_add", "vec_fp_cmp", "vec_fp_minmax")
def _vec_fp_add(form, uarch):
    latency = _FP_ADD_LATENCY[uarch.name]
    if form.category in ("vec_fp_cmp", "vec_fp_minmax"):
        latency = min(latency, 3)
    return single(form, "vec_fp_add", latency, domain=DOMAIN_FVEC)


@rule("vec_fp_mul")
def _vec_fp_mul(form, uarch):
    return single(form, "vec_fp_mul", _FP_MUL_LATENCY[uarch.name],
                  domain=DOMAIN_FVEC)


@rule("fma")
def _fma(form, uarch):
    latency = 4 if in_group(uarch, SKL_GROUP) else 5
    return single(form, "fma", latency, domain=DOMAIN_FVEC)


@rule("vec_fp_div")
def _vec_fp_div(form, uarch):
    timing = uarch.fp_div
    kuop = KUop(
        fu="divider",
        latency=timing.slow_latency,
        inputs=auto_inputs(form),
        outputs=auto_outputs(form),
        divider_cycles=timing.slow_occupancy,
        domain=DOMAIN_FVEC,
    )
    return [kuop]


@rule("vec_fp_sqrt")
def _vec_fp_sqrt(form, uarch):
    timing = uarch.fp_sqrt
    kuop = KUop(
        fu="divider",
        latency=timing.slow_latency,
        inputs=auto_inputs(form),
        outputs=auto_outputs(form),
        divider_cycles=timing.slow_occupancy,
        domain=DOMAIN_FVEC,
    )
    return [kuop]


@rule("vec_fp_rcp")
def _vec_fp_rcp(form, uarch):
    return single(form, "vec_fp_mul", 5, domain=DOMAIN_FVEC)


@rule("vec_fp_hadd")
def _vec_fp_hadd(form, uarch):
    # Two shuffles feeding one add: 1*p_add + 2*p_shuffle.  On Skylake
    # this is the VHADDPD 1*p01 + 2*p5 of Section 7.2.
    ins = auto_inputs(form)
    return [
        KUop(fu="vec_shuffle", latency=1, inputs=ins, outputs=(UOP(2),),
             domain=DOMAIN_FVEC),
        KUop(fu="vec_shuffle", latency=1, inputs=ins, outputs=(UOP(2),),
             domain=DOMAIN_FVEC),
        KUop(fu="vec_fp_add", latency=3, inputs=(UOP(0), UOP(1)),
             outputs=auto_outputs(form), domain=DOMAIN_FVEC),
    ]


@rule("vec_fp_round")
def _vec_fp_round(form, uarch):
    ins = auto_inputs(form)
    return [
        KUop(fu="vec_fp_add", latency=4, inputs=ins, outputs=(UOP(1),),
             domain=DOMAIN_FVEC),
        KUop(fu="vec_fp_add", latency=4, inputs=(UOP(0),),
             outputs=auto_outputs(form), domain=DOMAIN_FVEC),
    ]


@rule("vec_dp")
def _vec_dp(form, uarch):
    ins = auto_inputs(form)
    return [
        KUop(fu="vec_fp_mul", latency=5, inputs=ins, outputs=(UOP(2),),
             domain=DOMAIN_FVEC),
        KUop(fu="vec_shuffle", latency=1, inputs=ins, outputs=(UOP(2),),
             domain=DOMAIN_FVEC),
        KUop(fu="vec_fp_add", latency=3, inputs=(UOP(0), UOP(1)),
             outputs=(UOP(3),), domain=DOMAIN_FVEC),
        KUop(fu="vec_fp_add", latency=3, inputs=(UOP(2),),
             outputs=auto_outputs(form), domain=DOMAIN_FVEC),
    ]


@rule("vec_cvt")
def _vec_cvt(form, uarch):
    return single(form, "vec_fp_add", 4, domain=DOMAIN_FVEC)


@rule("vec_cvt_gpr")
def _vec_cvt_gpr(form, uarch):
    gpr_slot = next(
        i for i, s in enumerate(form.operands)
        if s.kind in (OperandKind.GPR, OperandKind.MMX)
    )
    other = tuple(r for r in auto_inputs(form) if r != OP(gpr_slot))
    return [
        KUop(fu="vec_gpr", latency=1, inputs=(OP(gpr_slot),),
             outputs=(UOP(1),), domain=DOMAIN_IVEC),
        KUop(fu="vec_fp_add", latency=4, inputs=(UOP(0),) + other,
             outputs=auto_outputs(form), domain=DOMAIN_FVEC),
    ]


@rule("vec_cvt_to_gpr")
def _vec_cvt_to_gpr(form, uarch):
    return [
        KUop(fu="vec_fp_add", latency=4, inputs=auto_inputs(form),
             outputs=(UOP(1),), domain=DOMAIN_FVEC),
        KUop(fu="vec_gpr", latency=2, inputs=(UOP(0),),
             outputs=auto_outputs(form), domain=DOMAIN_IVEC),
    ]


# ---------------------------------------------------------------------------
# Vector: AES / CLMUL / SAD / extract-insert / tests
# ---------------------------------------------------------------------------


@rule("vec_aes")
def _vec_aes(form, uarch):
    state_slot = 0 if form.operands[0].read else 1
    key_slot = max(
        i for i, s in enumerate(form.operands) if s.read
    )
    one_source = state_slot == key_slot
    if in_group(uarch, PRE_SNB) or one_source:
        # Westmere (Section 7.3.1): three µops, 6 cycles for both operand
        # pairs.  AESIMC/AESKEYGENASSIST use the same decomposition.
        ins = auto_inputs(form)
        return [
            KUop(fu="vec_p0", latency=2, inputs=ins, outputs=(UOP(1),),
                 domain=DOMAIN_IVEC),
            KUop(fu="slow_int", latency=2, inputs=(UOP(0),),
                 outputs=(UOP(2),), domain=DOMAIN_IVEC),
            KUop(fu="vec_shuffle", latency=2, inputs=(UOP(1),),
                 outputs=auto_outputs(form), domain=DOMAIN_IVEC),
        ]
    if in_group(uarch, SNB_GROUP):
        # Sandy/Ivy Bridge (Section 7.3.1): lat(STATE->dst) = 8 but
        # lat(RoundKey->dst) = 1; the round key is only XORed in at the end.
        rounds = KUop(
            fu="vec_shuffle", latency=7, inputs=(OP(state_slot),),
            outputs=(UOP(1),), domain=DOMAIN_IVEC,
        )
        final_xor = KUop(
            fu="vec_p0", latency=1, inputs=(UOP(0), OP(key_slot)),
            outputs=auto_outputs(form), domain=DOMAIN_IVEC,
        )
        return [rounds, final_xor]
    # Haswell on (Section 7.3.1): a single 7-cycle µop; port 5 on
    # Haswell/Broadwell, port 0 on Skylake and its successors.
    return single(form, "vec_aes", 7, domain=DOMAIN_IVEC)


@rule("vec_clmul")
def _vec_clmul(form, uarch):
    if in_group(uarch, PRE_SNB, SNB_GROUP):
        ins = auto_inputs(form)
        return [
            KUop(fu="vec_int_mul", latency=7, inputs=ins,
                 outputs=(UOP(1),), domain=DOMAIN_IVEC),
            KUop(fu="vec_shuffle", latency=1, inputs=(UOP(0),),
                 outputs=auto_outputs(form), domain=DOMAIN_IVEC),
        ]
    return single(form, "vec_int_mul", 6, domain=DOMAIN_IVEC)


@rule("vec_mpsadbw")
def _vec_mpsadbw(form, uarch):
    src_slot = max(
        i for i, s in enumerate(form.operands)
        if s.kind != OperandKind.IMM and s.read
    )
    ins = auto_inputs(form)
    return [
        KUop(fu="vec_shuffle", latency=1, inputs=(OP(src_slot),),
             outputs=(UOP(1),), domain=DOMAIN_IVEC),
        KUop(fu="vec_int_mul", latency=3,
             inputs=(UOP(0),) + tuple(r for r in ins
                                      if r != OP(src_slot)),
             outputs=auto_outputs(form), domain=DOMAIN_IVEC),
    ]


@rule("vec_extract")
def _vec_extract(form, uarch):
    return [
        KUop(fu="vec_shuffle", latency=1, inputs=auto_inputs(form),
             outputs=(UOP(1),), domain=DOMAIN_IVEC),
        KUop(fu="vec_gpr", latency=2, inputs=(UOP(0),),
             outputs=auto_outputs(form), domain=DOMAIN_IVEC),
    ]


@rule("vec_insert")
def _vec_insert(form, uarch):
    gpr_slot = next(
        i for i, s in enumerate(form.operands) if s.kind == OperandKind.GPR
    )
    other = tuple(r for r in auto_inputs(form) if r != OP(gpr_slot))
    return [
        KUop(fu="vec_gpr", latency=1, inputs=(OP(gpr_slot),),
             outputs=(UOP(1),), domain=DOMAIN_IVEC),
        KUop(fu="vec_shuffle", latency=1, inputs=(UOP(0),) + other,
             outputs=auto_outputs(form), domain=DOMAIN_IVEC),
    ]


@rule("vec_ptest")
def _vec_ptest(form, uarch):
    return [
        KUop(fu="vec_logic", latency=1, inputs=auto_inputs(form),
             outputs=(UOP(1),), domain=DOMAIN_IVEC),
        KUop(fu="vec_gpr", latency=1, inputs=(UOP(0),),
             outputs=auto_outputs(form), domain=DOMAIN_IVEC),
    ]


@rule("vec_comis")
def _vec_comis(form, uarch):
    return single(form, "vec_fp_add", 2, domain=DOMAIN_FVEC)


@rule("vzeroupper")
def _vzeroupper(form, uarch):
    return [
        KUop(fu=frozenset(), latency=0, inputs=(), outputs=())
        for _ in range(4)
    ]


@rule("vzeroall")
def _vzeroall(form, uarch):
    return [
        KUop(fu=frozenset(), latency=0, inputs=(), outputs=())
        for _ in range(8)
    ]


# ---------------------------------------------------------------------------
# Later extensions: BMI, ADX, MOVBE, SSE4.2 strings, AVX2
# ---------------------------------------------------------------------------


@rule("movbe_load")
def _movbe_load(form, uarch):
    mem_slot = next(
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.MEM
    )
    return [
        KUop(fu="load", latency=uarch.load_latency,
             inputs=(ADDR(mem_slot),), outputs=(("ld", mem_slot),),
             kind=KIND_LOAD),
        KUop(fu="slow_int", latency=1, inputs=(("ld", mem_slot),),
             outputs=auto_outputs(form)),
    ]


@rule("movbe_store")
def _movbe_store(form, uarch):
    mem_slot = next(
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.MEM
    )
    data = tuple(
        OP(i) for i, s in enumerate(form.operands)
        if s.read and s.kind != OperandKind.IMM and i != mem_slot
    )
    return [
        KUop(fu="slow_int", latency=1, inputs=data, outputs=()),
        KUop(fu="store_addr", latency=1, inputs=(ADDR(mem_slot),),
             outputs=(("staddr", mem_slot),), kind=KIND_STORE_ADDR),
        KUop(fu="store_data", latency=1, inputs=(UOP(0),),
             outputs=(("mem", mem_slot),), kind=KIND_STORE_DATA),
    ]


@rule("crc32", "pdep")
def _crc32(form, uarch):
    return single(form, "slow_int", 3)


@rule("adx", "bmi_shift", "bmi_alu")
def _adx(form, uarch):
    fu = "shift" if form.category in ("adx", "bmi_shift") else "int_alu"
    return single(form, fu, 1)


@rule("bmi_alu2")
def _bmi_alu2(form, uarch):
    return single(form, "int_alu", 1)


@rule("bextr")
def _bextr(form, uarch):
    # Two µops on real hardware: shift + mask.
    return [
        KUop(fu="shift", latency=1, inputs=auto_inputs(form),
             outputs=()),
        KUop(fu="int_alu", latency=1, inputs=(UOP(0),),
             outputs=auto_outputs(form)),
    ]


@rule("mulx")
def _mulx(form, uarch):
    ins = auto_inputs(form)
    return [
        KUop(fu="slow_int", latency=4, inputs=ins,
             outputs=(OP(0),)),
        KUop(fu="slow_int", latency=4, inputs=ins,
             outputs=(OP(1),)),
    ]


@rule("cmpxchg")
def _cmpxchg(form, uarch):
    ins = auto_inputs(form)
    acc_slot = next(
        i for i, s in enumerate(form.operands) if s.implicit
    )
    return [
        KUop(fu="int_alu", latency=1, inputs=ins, outputs=(FLAGS,)),
        KUop(fu="int_alu", latency=1, inputs=(UOP(0),),
             outputs=(OP(0),)),
        KUop(fu="int_alu", latency=1, inputs=(UOP(0),),
             outputs=(OP(acc_slot),)),
    ]


@rule("vec_pmovx", "vec_broadcast")
def _vec_pmovx(form, uarch):
    return single(form, "vec_shuffle", 1, domain=DOMAIN_IVEC)


@rule("vec_extract_store")
def _vec_extract_store(form, uarch):
    mem_slot = next(
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.MEM
    )
    data = tuple(
        OP(i) for i, s in enumerate(form.operands)
        if s.read and s.kind not in (OperandKind.IMM, OperandKind.MEM)
    )
    return [
        KUop(fu="vec_shuffle", latency=1, inputs=data, outputs=(),
             domain=DOMAIN_IVEC),
        KUop(fu="store_addr", latency=1, inputs=(ADDR(mem_slot),),
             outputs=(("staddr", mem_slot),), kind=KIND_STORE_ADDR),
        KUop(fu="store_data", latency=1, inputs=(UOP(0),),
             outputs=(("mem", mem_slot),), kind=KIND_STORE_DATA),
    ]


@rule("vec_phadd")
def _vec_phadd(form, uarch):
    ins = auto_inputs(form)
    return [
        KUop(fu="vec_shuffle", latency=1, inputs=ins, outputs=(),
             domain=DOMAIN_IVEC),
        KUop(fu="vec_shuffle", latency=1, inputs=ins, outputs=(),
             domain=DOMAIN_IVEC),
        KUop(fu="vec_int_alu", latency=1, inputs=(UOP(0), UOP(1)),
             outputs=auto_outputs(form), domain=DOMAIN_IVEC),
    ]


@rule("vec_phminpos")
def _vec_phminpos(form, uarch):
    return single(form, "vec_int_mul", 5, domain=DOMAIN_IVEC)


@rule("vec_string")
def _vec_string(form, uarch):
    ins = auto_inputs(form)
    reg_outs = tuple(
        OP(i) for i, s in enumerate(form.operands) if s.written
    )
    return [
        KUop(fu="vec_int_mul", latency=3, inputs=ins, outputs=(),
             domain=DOMAIN_IVEC),
        KUop(fu="slow_int", latency=3, inputs=(UOP(0),), outputs=(),
             domain=DOMAIN_IVEC),
        KUop(fu="vec_gpr", latency=2, inputs=(UOP(1),),
             outputs=reg_outs + (FLAGS,), domain=DOMAIN_IVEC),
    ]


@rule("vec_var_shift")
def _vec_var_shift(form, uarch):
    count_slot = max(
        i for i, s in enumerate(form.operands)
        if s.kind != OperandKind.IMM and s.read
    )
    return [
        KUop(
            fu="vec_shift",
            latency=1,
            inputs=auto_inputs(form),
            outputs=auto_outputs(form),
            input_delays={OP(count_slot): 1},
            domain=DOMAIN_IVEC,
        )
    ]


@rule("vec_gather")
def _vec_gather(form, uarch):
    """AVX2 gathers: one load µop per modeled lane plus merge µops.

    The VSIB index is an explicit vector operand; all lanes load through
    the base-register memory slot (see DESIGN.md).
    """
    mem_slot = next(
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.MEM
    )
    index_slot = mem_slot + 1
    mask_slot = index_slot + 1
    lanes = 4
    plan = []
    for _ in range(lanes):
        plan.append(
            KUop(fu="load", latency=uarch.vec_load_latency,
                 inputs=(ADDR(mem_slot), OP(index_slot)),
                 outputs=(("ld", mem_slot),), kind=KIND_LOAD,
                 domain=DOMAIN_IVEC)
        )
    plan.append(
        KUop(fu="vec_int_alu", latency=1,
             inputs=tuple(UOP(k) for k in range(lanes))
             + (OP(0), OP(mask_slot)),
             outputs=(OP(0),), domain=DOMAIN_IVEC)
    )
    plan.append(
        KUop(fu="vec_logic", latency=1, inputs=(UOP(lanes),),
             outputs=(OP(mask_slot),), domain=DOMAIN_IVEC)
    )
    return plan


@rule("prefetch")
def _prefetch(form, uarch):
    mem_slot = 0
    return [
        KUop(fu="load", latency=1, inputs=(ADDR(mem_slot),),
             outputs=(("ld", mem_slot),), kind=KIND_LOAD)
    ]


@rule("clflush")
def _clflush(form, uarch):
    mem_slot = 0
    return [
        KUop(fu="store_addr", latency=1, inputs=(ADDR(mem_slot),),
             outputs=(("staddr", mem_slot),), kind=KIND_STORE_ADDR),
        KUop(fu="store_data", latency=1, inputs=(),
             outputs=(("mem", mem_slot),), kind=KIND_STORE_DATA),
    ]


@rule("vec_maskload")
def _vec_maskload(form, uarch):
    mem_slot = next(
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.MEM
    )
    mask_slot = next(
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.VEC and s.read
    )
    return [
        KUop(fu="load", latency=uarch.vec_load_latency,
             inputs=(ADDR(mem_slot),), outputs=(("ld", mem_slot),),
             kind=KIND_LOAD, domain=DOMAIN_FVEC),
        KUop(fu="vec_logic", latency=1,
             inputs=(("ld", mem_slot), OP(mask_slot)),
             outputs=auto_outputs(form), domain=DOMAIN_FVEC),
    ]


@rule("vec_maskstore")
def _vec_maskstore(form, uarch):
    mem_slot = next(
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.MEM
    )
    sources = tuple(
        OP(i) for i, s in enumerate(form.operands)
        if s.read and s.kind == OperandKind.VEC
    )
    return [
        KUop(fu="vec_logic", latency=1, inputs=sources, outputs=(),
             domain=DOMAIN_FVEC),
        KUop(fu="store_addr", latency=1, inputs=(ADDR(mem_slot),),
             outputs=(("staddr", mem_slot),), kind=KIND_STORE_ADDR),
        KUop(fu="store_data", latency=1, inputs=(UOP(0),),
             outputs=(("mem", mem_slot),), kind=KIND_STORE_DATA),
    ]


# ---------------------------------------------------------------------------
# Finalization: memory wrapping and FU resolution
# ---------------------------------------------------------------------------


def supported_on(form: InstructionForm, uarch: UarchConfig) -> bool:
    """Whether the form exists on the given generation."""
    return uarch.supports_extension(form.extension)


def _resolve_ports(fu: Union[str, frozenset], uarch: UarchConfig):
    if isinstance(fu, frozenset):
        return fu
    return uarch.fu_ports(fu)


def _finalize(
    form: InstructionForm, uarch: UarchConfig, plan: Plan
) -> Tuple[UopSpec, ...]:
    """Resolve FU names, insert load/store µops, renumber temp refs."""
    mem_read_slots = [
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.MEM and s.read
    ]
    mem_write_slots = [
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.MEM and s.written
    ]
    agen_slots = {
        i for i, s in enumerate(form.operands)
        if s.kind == OperandKind.AGEN
    }
    explicit_loads = {
        ref[1]
        for k in plan
        if k.kind == KIND_LOAD
        for ref in k.outputs
        if ref[0] == "ld"
    }
    explicit_stores = {
        ref[1]
        for k in plan
        if k.kind == KIND_STORE_DATA
        for ref in k.outputs
        if ref[0] == "mem"
    }

    loads: List[UopSpec] = []
    load_for_slot = {}
    vec_load = any(
        s.kind in (OperandKind.VEC, OperandKind.MMX) for s in form.operands
    )
    for slot in mem_read_slots:
        if slot in explicit_loads or any(
            k.kind == KIND_LOAD for k in plan
        ):
            continue
        latency = uarch.vec_load_latency if vec_load else uarch.load_latency
        loads.append(
            UopSpec(
                ports=_resolve_ports("load", uarch),
                inputs=(ADDR(slot),),
                outputs=(("ld", slot),),
                latency=latency,
                kind=KIND_LOAD,
                domain=DOMAIN_INT,
            )
        )
        load_for_slot[slot] = len(loads) - 1

    kernel_base = len(loads)

    def remap_ref(ref: Ref, *, is_input: bool) -> Ref:
        if ref[0] == "op":
            slot = ref[1]
            if slot in agen_slots:
                return ADDR(slot)
            spec = form.operands[slot]
            if spec.kind == OperandKind.MEM:
                if is_input:
                    return ("ld", slot)
                return ("kmem", slot)  # resolved to a temp below
        if ref[0] == "uop":
            return ("uop", kernel_base + ref[1])
        return ref

    kernel: List[UopSpec] = []
    store_sources: Dict[int, Ref] = {}
    for idx, kuop in enumerate(plan):
        inputs = tuple(remap_ref(r, is_input=True) for r in kuop.inputs)
        outputs = []
        for ref in kuop.outputs:
            mapped = remap_ref(ref, is_input=False)
            if mapped[0] == "uop":
                # Temp results are implicit: every µop k exposes its
                # completion time as ("uop", k); listing it as an output in
                # a rule is purely documentary.
                continue
            if mapped[0] == "kmem":
                # This kernel µop produces the data for a store; route it
                # through a temp consumed by the store-data µop.
                store_sources[mapped[1]] = ("uop", kernel_base + idx)
                continue
            outputs.append(mapped)
        input_delays = {
            remap_ref(r, is_input=True): d
            for r, d in kuop.input_delays.items()
        }
        output_latencies = {
            remap_ref(r, is_input=False): lat
            for r, lat in kuop.output_latencies.items()
            if remap_ref(r, is_input=False)[0] != "kmem"
        }
        kernel.append(
            UopSpec(
                ports=_resolve_ports(kuop.fu, uarch),
                inputs=inputs,
                outputs=tuple(outputs),
                latency=kuop.latency,
                input_delays=input_delays,
                output_latencies=output_latencies,
                kind=kuop.kind,
                divider_cycles=kuop.divider_cycles,
                domain=kuop.domain,
            )
        )

    stores: List[UopSpec] = []
    for slot in mem_write_slots:
        if slot in explicit_stores:
            continue
        data_ref = store_sources.get(slot)
        if data_ref is None:
            # Pure store with no computing µop: the data comes straight
            # from the source operands (handled by the "store" rule, so
            # reaching here means a category forgot the slot).
            data_ref = ("ld", slot) if slot in load_for_slot else ()
            data_inputs = (data_ref,) if data_ref else ()
        else:
            data_inputs = (data_ref,)
        stores.append(
            UopSpec(
                ports=_resolve_ports("store_addr", uarch),
                inputs=(ADDR(slot),),
                outputs=(("staddr", slot),),
                latency=1,
                kind=KIND_STORE_ADDR,
            )
        )
        stores.append(
            UopSpec(
                ports=_resolve_ports("store_data", uarch),
                inputs=data_inputs,
                outputs=(("mem", slot),),
                latency=1,
                kind=KIND_STORE_DATA,
            )
        )
    return tuple(loads + kernel + stores)


def build_entry(
    form: InstructionForm, uarch: UarchConfig
) -> Optional[UarchEntry]:
    """Ground-truth entry for *form* on *uarch*; ``None`` if unavailable."""
    if not supported_on(form, uarch):
        return None
    if form.has_attribute(ATTR_UNSUPPORTED):
        return None
    rule_fn = _RULES.get(form.category)
    if rule_fn is None:
        raise KeyError(
            f"no table rule for category {form.category!r} ({form.uid})"
        )
    result = rule_fn(form, uarch)
    if isinstance(result, tuple):
        plan, same_reg_plan = result
    else:
        plan, same_reg_plan = result, None
    uops = _finalize(form, uarch, plan)
    same_reg = (
        _finalize(form, uarch, same_reg_plan)
        if same_reg_plan is not None
        else None
    )
    zero_idiom = form.has_attribute(ATTR_ZERO_IDIOM)
    from repro.uarch.overrides import apply_overrides

    divider_class = None
    if form.category == "div":
        divider_class = "int_div"
    elif form.category == "vec_fp_div":
        divider_class = "fp_div"
    elif form.category == "vec_fp_sqrt":
        divider_class = "fp_sqrt"
    entry = UarchEntry(
        uops=uops,
        fused_uop_count=_fused_count(uops),
        same_reg_uops=same_reg,
        zero_idiom=zero_idiom,
        zero_idiom_eliminated=zero_idiom and uarch.zero_idiom_elimination,
        dep_breaking=(
            form.has_attribute(ATTR_DEP_BREAKING)
            or _strip_vex(form.mnemonic).startswith("PCMPGT")
        ),
        divider_class=divider_class,
        serializing=form.has_attribute("serializing"),
    )
    return apply_overrides(form, uarch, entry)


def _strip_vex(mnemonic: str) -> str:
    return mnemonic[1:] if mnemonic.startswith("V") else mnemonic


def _fused_count(uops: Tuple[UopSpec, ...]) -> int:
    """µop count in the fused domain (the paper's future work).

    Load µops micro-fuse with the operation that consumes them (when one
    exists), and each store-address/store-data pair fuses into one µop.
    """
    total = len(uops)
    kinds = [u.kind for u in uops]
    has_compute = any(k == KIND_ALU and u.uses_port
                      for k, u in zip(kinds, uops))
    loads = kinds.count(KIND_LOAD)
    store_pairs = min(kinds.count(KIND_STORE_ADDR),
                      kinds.count(KIND_STORE_DATA))
    fused = total - store_pairs
    if has_compute:
        fused -= loads
    return max(1, fused) if total else 0
