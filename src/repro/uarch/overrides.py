"""Named per-form, per-generation overrides of the generic table rules.

Most of the paper's case-study behaviour is expressed directly in the
generation-grouped category rules of :mod:`repro.uarch.tables`.  This module
is the escape hatch for truly irregular single forms: an override is a
function ``(form, uarch, entry) -> entry`` registered for a specific
``(uarch_name, form_uid)`` pair and applied after the generic rule ran.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.isa.instruction import InstructionForm
from repro.uarch.model import UarchConfig
from repro.uarch.uops import UarchEntry

Override = Callable[[InstructionForm, UarchConfig, UarchEntry], UarchEntry]

_OVERRIDES: Dict[Tuple[str, str], Override] = {}


def override(uarch_name: str, form_uid: str) -> Callable[[Override],
                                                         Override]:
    """Register an override for one form on one generation."""

    def decorate(fn: Override) -> Override:
        key = (uarch_name, form_uid)
        if key in _OVERRIDES:
            raise AssertionError(f"duplicate override for {key}")
        _OVERRIDES[key] = fn
        return fn

    return decorate


def apply_overrides(
    form: InstructionForm, uarch: UarchConfig, entry: UarchEntry
) -> UarchEntry:
    fn = _OVERRIDES.get((uarch.name, form.uid))
    return fn(form, uarch, entry) if fn else entry
