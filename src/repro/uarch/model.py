"""The per-microarchitecture machine configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Tuple


@dataclass(frozen=True)
class DividerTiming:
    """Value-dependent timing of the non-pipelined divider unit.

    The paper (Section 5.2.5) measures divider instructions once with
    operand values that lead to high latency and once with values that lead
    to low latency; this class is the ground truth those measurements probe.
    """

    fast_latency: int
    fast_occupancy: int
    slow_latency: int
    slow_occupancy: int

    def timing(self, fast: bool) -> Tuple[int, int]:
        """(latency, divider occupancy) for the given value class."""
        if fast:
            return (self.fast_latency, self.fast_occupancy)
        return (self.slow_latency, self.slow_occupancy)


@dataclass(frozen=True)
class UarchConfig:
    """Static description of one Intel Core generation.

    The functional-unit map ``fu_map`` assigns each functional-unit type the
    set of ports it is attached to (the paper's ``ports : FU -> 2^P``,
    Section 5.1.1); the table builder resolves symbolic unit names like
    ``"int_alu"`` through it, so the same category rules yield different
    ground truth on different generations.
    """

    name: str
    full_name: str
    processor: str
    year: int
    ports: Tuple[int, ...]
    fu_map: Mapping[str, FrozenSet[int]]
    extensions: FrozenSet[str]
    issue_width: int = 4
    retire_width: int = 4
    rob_size: int = 128
    rs_size: int = 36
    load_latency: int = 4
    vec_load_latency: int = 6
    store_forward_latency: int = 5
    move_elimination: bool = False
    vec_bypass_delay: int = 1
    sse_avx_transition_penalty: int = 0
    zero_idiom_elimination: bool = False
    #: Mnemonics whose flag-writing instructions macro-fuse with a
    #: directly following conditional branch (the paper's future work;
    #: Nehalem fuses only CMP/TEST, Sandy Bridge extends the set).
    macro_fusible: FrozenSet[str] = frozenset({"CMP", "TEST"})
    int_div: DividerTiming = DividerTiming(25, 20, 90, 80)
    fp_div: DividerTiming = DividerTiming(11, 5, 14, 12)
    fp_sqrt: DividerTiming = DividerTiming(12, 6, 21, 18)
    iaca_versions: Tuple[str, ...] = ()

    def fu_ports(self, unit: str) -> FrozenSet[int]:
        """Ports attached to a functional unit of the given type."""
        try:
            return self.fu_map[unit]
        except KeyError:
            raise KeyError(
                f"{self.name}: unknown functional unit {unit!r}"
            ) from None

    def supports_extension(self, extension: str) -> bool:
        return extension in self.extensions

    def port_combinations(self) -> Tuple[FrozenSet[int], ...]:
        """The distinct port combinations of all functional units.

        This is the set of combinations for which Algorithm 1 needs blocking
        instructions.
        """
        return tuple(sorted(set(self.fu_map.values()), key=sorted))

    def divider_timing(self, divider_class: str) -> DividerTiming:
        return {
            "int_div": self.int_div,
            "fp_div": self.fp_div,
            "fp_sqrt": self.fp_sqrt,
        }[divider_class]

    def fingerprint_fields(self) -> dict:
        """Every simulation-relevant knob, as a canonical JSON-stable
        dict (all unordered containers sorted).

        Feeds the per-form fingerprints of the incremental sweep
        manifest (:func:`repro.core.cache.form_fingerprint`).  These
        fields are generation-global, so editing any of them (a port
        added to ``fu_map``, a latency bumped, a divider timing changed)
        re-characterizes the whole generation — which is correct, since
        they affect every measurement.
        """

        def timing(t: DividerTiming) -> list:
            return [t.fast_latency, t.fast_occupancy,
                    t.slow_latency, t.slow_occupancy]

        return {
            "name": self.name,
            "ports": list(self.ports),
            "fu_map": {
                unit: sorted(ports)
                for unit, ports in sorted(self.fu_map.items())
            },
            "extensions": sorted(self.extensions),
            "issue_width": self.issue_width,
            "retire_width": self.retire_width,
            "rob_size": self.rob_size,
            "rs_size": self.rs_size,
            "load_latency": self.load_latency,
            "vec_load_latency": self.vec_load_latency,
            "store_forward_latency": self.store_forward_latency,
            "move_elimination": self.move_elimination,
            "vec_bypass_delay": self.vec_bypass_delay,
            "sse_avx_transition_penalty": self.sse_avx_transition_penalty,
            "zero_idiom_elimination": self.zero_idiom_elimination,
            "macro_fusible": sorted(self.macro_fusible),
            "int_div": timing(self.int_div),
            "fp_div": timing(self.fp_div),
            "fp_sqrt": timing(self.fp_sqrt),
        }

    def __str__(self) -> str:
        return self.name
