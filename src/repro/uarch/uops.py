"""µop specifications — the ground-truth decomposition of an instruction.

A :class:`UopSpec` describes one µop of an instruction: the set of execution
ports whose functional units can run it (the paper's ``ports(u)``), its
dataflow inputs and outputs, and its latency contribution.  Per-input delays
and per-output latencies together realize the paper's per-operand-pair
latency definition: for a µop dispatching at
``d = max_i(t_i + input_delay(i))``, output ``o`` becomes ready at
``d + output_latency(o)``, so ``lat(i, o) = input_delay(i) +
output_latency(o)`` whenever input ``i`` is on the critical path.

Dataflow references (``Ref``) are plain tuples:

- ``("op", i)``     — register operand slot *i* of the instruction,
- ``("flags",)``    — the status flags the form reads (input) / writes
  (output),
- ``("addr", i)``   — the address registers of memory/AGEN operand slot *i*,
- ``("ld", i)``     — the data loaded from memory slot *i* (load µop
  output),
- ``("mem", i)``    — the data stored to memory slot *i* (store-data µop
  output),
- ``("uop", k)``    — the result of µop *k* of the same instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

Ref = Tuple

#: µop kinds; loads and stores are dispatched to the memory ports.
KIND_ALU = "alu"
KIND_LOAD = "load"
KIND_STORE_ADDR = "store_addr"
KIND_STORE_DATA = "store_data"

#: Execution domains for bypass-delay modeling (Section 5.2.1: a bypass
#: delay can occur when a floating-point operation consumes the output of an
#: integer operation or vice versa).
DOMAIN_INT = "int"
DOMAIN_IVEC = "ivec"
DOMAIN_FVEC = "fvec"


@dataclass(frozen=True)
class UopSpec:
    """One µop of an instruction's ground-truth decomposition.

    Attributes:
        ports: ports whose functional units can execute this µop.  An empty
            set means the µop never dispatches to an execution port (NOPs,
            µops handled by the reorder buffer).
        inputs: dataflow inputs (see module docstring for the Ref grammar).
        outputs: dataflow outputs.
        latency: cycles from dispatch to result, for outputs without an
            explicit override.
        input_delays: extra cycles before a given input can be consumed.
        output_latencies: per-output overrides of ``latency``.
        kind: ALU / load / store-address / store-data.
        divider_cycles: how long this µop occupies the non-pipelined divider
            unit (0 for µops that do not use it).  May be rescaled at run
            time for value-dependent divider instructions (Section 5.2.5).
        domain: execution domain, for bypass-delay modeling.
    """

    ports: frozenset
    inputs: Tuple[Ref, ...] = ()
    outputs: Tuple[Ref, ...] = ()
    latency: int = 1
    input_delays: Mapping[Ref, int] = field(default_factory=dict)
    output_latencies: Mapping[Ref, int] = field(default_factory=dict)
    kind: str = KIND_ALU
    divider_cycles: int = 0
    domain: str = DOMAIN_INT

    def output_latency(self, ref: Ref) -> int:
        return self.output_latencies.get(ref, self.latency)

    def input_delay(self, ref: Ref) -> int:
        return self.input_delays.get(ref, 0)

    @property
    def uses_port(self) -> bool:
        return bool(self.ports)

    def max_latency(self) -> int:
        values = [self.latency]
        values.extend(self.output_latencies.values())
        values.extend(self.input_delays.values())
        return max(values)


@dataclass(frozen=True)
class UarchEntry:
    """Ground truth for one instruction form on one microarchitecture.

    Attributes:
        uops: the µop decomposition.
        same_reg_uops: alternative decomposition used when the same register
            is given for multiple explicit register operands (Section 7.3.2:
            ``SHLD`` on Skylake has latency 1 in that case instead of 3).
        zero_idiom: the instruction breaks its register dependencies when
            both register operands are equal (``XOR R,R``; Section 3.1).
        zero_idiom_eliminated: additionally, the zero idiom is executed by
            the reorder buffer and uses no execution ports.
        dep_breaking: register dependencies are broken when operands are
            equal, without the result being architecturally zero idiomatic
            (``PCMPGTB R,R``; Section 7.3.6).
        divider_class: value-dependence class for divider instructions
            (``None``, ``"int_div"``, ``"fp_div"``, ``"fp_sqrt"``).
        serializing: drains the pipeline before and after executing.
        fused_uop_count: µop count in the fused domain (micro-fusion of
            load+op and store-address+store-data pairs; the paper's
            future work).  ``None`` means equal to ``len(uops)``.
    """

    uops: Tuple[UopSpec, ...]
    same_reg_uops: Optional[Tuple[UopSpec, ...]] = None
    zero_idiom: bool = False
    zero_idiom_eliminated: bool = False
    dep_breaking: bool = False
    divider_class: Optional[str] = None
    serializing: bool = False
    fused_uop_count: Optional[int] = None

    @property
    def fused_uops(self) -> int:
        if self.fused_uop_count is not None:
            return self.fused_uop_count
        return len(self.uops)

    @property
    def uop_count(self) -> int:
        return len(self.uops)

    def max_latency(self) -> int:
        """Maximum over per-µop latencies plus chain depth, conservatively.

        Used for the ``blockRep`` sizing of Algorithm 1 (line 4), which only
        needs an upper bound of the instruction's critical path.
        """
        return sum(u.max_latency() for u in self.uops)

    def uops_for(self, same_registers: bool) -> Tuple[UopSpec, ...]:
        if same_registers and self.same_reg_uops is not None:
            return self.same_reg_uops
        return self.uops

    def port_usage(self) -> Mapping[frozenset, int]:
        """The true port usage ``pu`` (Section 4.3) of this entry."""
        usage: dict = {}
        for uop in self.uops:
            if uop.uses_port:
                usage[uop.ports] = usage.get(uop.ports, 0) + 1
        return usage


def encode_uop_spec(uop: UopSpec) -> dict:
    """A canonical, JSON-stable encoding of one µop spec.

    Used by the incremental-sweep fingerprints
    (:func:`repro.core.cache.form_fingerprint`): every field that could
    change a simulated measurement participates, and all unordered
    containers (port sets, delay mappings) are sorted so the encoding is
    deterministic across processes and dict orders.
    """
    return {
        "ports": sorted(uop.ports),
        "inputs": [list(ref) for ref in uop.inputs],
        "outputs": [list(ref) for ref in uop.outputs],
        "latency": uop.latency,
        "input_delays": sorted(
            ([list(ref), delay] for ref, delay in uop.input_delays.items()),
            key=repr,
        ),
        "output_latencies": sorted(
            (
                [list(ref), lat]
                for ref, lat in uop.output_latencies.items()
            ),
            key=repr,
        ),
        "kind": uop.kind,
        "divider_cycles": uop.divider_cycles,
        "domain": uop.domain,
    }


def encode_entry(entry: Optional[UarchEntry]) -> Optional[dict]:
    """Canonical encoding of a ground-truth entry (``None`` passes
    through, for forms without an entry on a generation)."""
    if entry is None:
        return None
    return {
        "uops": [encode_uop_spec(uop) for uop in entry.uops],
        "same_reg_uops": (
            [encode_uop_spec(uop) for uop in entry.same_reg_uops]
            if entry.same_reg_uops is not None else None
        ),
        "zero_idiom": entry.zero_idiom,
        "zero_idiom_eliminated": entry.zero_idiom_eliminated,
        "dep_breaking": entry.dep_breaking,
        "divider_class": entry.divider_class,
        "serializing": entry.serializing,
        "fused_uop_count": entry.fused_uop_count,
    }
