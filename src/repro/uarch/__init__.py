"""Per-generation machine descriptions (the simulator's ground truth).

Each Intel Core generation from Nehalem to Coffee Lake is described by a
:class:`~repro.uarch.model.UarchConfig` (ports, functional-unit map, buffer
sizes, divider behaviour) plus a per-instruction-form table of µop
decompositions built by :mod:`repro.uarch.tables` and specialized by the
named case-study overrides in :mod:`repro.uarch.overrides`.

These tables play the role of the real silicon: the inference algorithms in
:mod:`repro.core` never read them — they only observe performance counters —
and the integration tests assert that the algorithms *recover* them.
"""

from repro.uarch.model import UarchConfig
from repro.uarch.configs import ALL_UARCHES, get_uarch
from repro.uarch.uops import UarchEntry, UopSpec
from repro.uarch.tables import build_entry, supported_on

__all__ = [
    "UarchConfig",
    "ALL_UARCHES",
    "get_uarch",
    "UarchEntry",
    "UopSpec",
    "build_entry",
    "supported_on",
]
