"""The nine Intel Core generations of Table 1.

Functional-unit port assignments follow the public shape of each generation:
six execution ports on Nehalem through Ivy Bridge, eight from Haswell on,
with the unit placements that the paper's case studies depend on (e.g. AES
on port 5 on Haswell but port 0 on Skylake, Section 7.3.1; the shift/branch
units on ports 0 and 6 from Haswell on).

Contract (enforced by ``repro lint``, RPR201/RPR204): every port named
by a functional-unit map must exist in that generation's ``ports``
tuple, every generation must place ``store_addr`` and ``store_data``
units (the blocking discovery of Section 5.1.1 depends on them), and
declared ``iaca_versions`` must be known to the analyzer.  The model
pass rebuilds every (form, generation) entry and cross-checks all of
this; seeding a fake port here fails CI.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.uarch.model import DividerTiming, UarchConfig


def _fu(**units: tuple) -> Dict[str, FrozenSet[int]]:
    return {name: frozenset(ports) for name, ports in units.items()}


_BASE_EXTS = frozenset(
    {"BASE", "MMX", "SSE", "SSE2", "SSE3", "SSSE3", "SSE4", "SSE42",
     "POPCNT"}
)
_WSM_EXTS = _BASE_EXTS | {"AES", "PCLMULQDQ"}
_SNB_EXTS = _WSM_EXTS | {"AVX", "AVX_AES"}
_IVB_EXTS = _SNB_EXTS | {"F16C"}
_HSW_EXTS = _IVB_EXTS | {"AVX2", "FMA", "BMI1", "BMI2", "LZCNT", "MOVBE"}
_BDW_EXTS = _HSW_EXTS | {"ADX"}

# ---------------------------------------------------------------------------
# Six-port generations (Figure 1's port layout)
# ---------------------------------------------------------------------------

_NHM_FU = _fu(
    int_alu=(0, 1, 5),
    slow_int=(1,),
    lea=(0, 1),
    shift=(0, 5),
    branch=(5,),
    divider=(0,),
    vec_int_alu=(0, 1, 5),
    vec_logic=(0, 1, 5),
    mmx_alu=(0, 1, 5),
    vec_shuffle=(5,),
    vec_int_mul=(0,),
    vec_shift=(0,),
    vec_fp_add=(1,),
    vec_fp_mul=(0,),
    vec_blendv=(0, 5),
    vec_gpr=(0,),
    vec_p0=(0,),
    vec_aes=(0, 5),
    load=(2,),
    store_addr=(3,),
    store_data=(4,),
)

_SNB_FU = _fu(
    int_alu=(0, 1, 5),
    slow_int=(1,),
    lea=(0, 1),
    shift=(0, 5),
    branch=(5,),
    divider=(0,),
    vec_int_alu=(1, 5),
    vec_logic=(0, 1, 5),
    mmx_alu=(1, 5),
    vec_shuffle=(5,),
    vec_int_mul=(0,),
    vec_shift=(0,),
    vec_fp_add=(1,),
    vec_fp_mul=(0,),
    vec_blendv=(0, 5),
    vec_gpr=(0,),
    vec_p0=(0,),
    vec_aes=(0, 5),
    load=(2, 3),
    store_addr=(2, 3),
    store_data=(4,),
)

# ---------------------------------------------------------------------------
# Eight-port generations
# ---------------------------------------------------------------------------

_HSW_FU = _fu(
    int_alu=(0, 1, 5, 6),
    slow_int=(1,),
    lea=(1, 5),
    shift=(0, 6),
    branch=(0, 6),
    divider=(0,),
    vec_int_alu=(1, 5),
    vec_logic=(0, 1, 5),
    mmx_alu=(1, 5),
    vec_shuffle=(5,),
    vec_int_mul=(0,),
    vec_shift=(0,),
    vec_fp_add=(1,),
    vec_fp_mul=(0, 1),
    fma=(0, 1),
    vec_blendv=(5,),
    vec_gpr=(0,),
    vec_p0=(0,),
    vec_aes=(5,),
    load=(2, 3),
    store_addr=(2, 3, 7),
    store_data=(4,),
)

_SKL_FU = _fu(
    int_alu=(0, 1, 5, 6),
    slow_int=(1,),
    lea=(1, 5),
    shift=(0, 6),
    branch=(0, 6),
    divider=(0,),
    vec_int_alu=(0, 1, 5),
    vec_logic=(0, 1, 5),
    mmx_alu=(0, 1, 5),
    vec_shuffle=(5,),
    vec_int_mul=(0, 1),
    vec_shift=(0, 1),
    vec_fp_add=(0, 1),
    vec_fp_mul=(0, 1),
    fma=(0, 1),
    vec_blendv=(0, 1, 5),
    vec_gpr=(0,),
    vec_p0=(0,),
    vec_aes=(0,),
    load=(2, 3),
    store_addr=(2, 3, 7),
    store_data=(4,),
)

NEHALEM = UarchConfig(
    name="NHM",
    full_name="Nehalem",
    processor="Core i5-750",
    year=2008,
    ports=(0, 1, 2, 3, 4, 5),
    fu_map=_NHM_FU,
    extensions=_BASE_EXTS,
    rob_size=128,
    rs_size=36,
    move_elimination=False,
    zero_idiom_elimination=False,
    int_div=DividerTiming(28, 18, 92, 80),
    fp_div=DividerTiming(10, 7, 14, 12),
    fp_sqrt=DividerTiming(11, 7, 21, 19),
    iaca_versions=("2.1", "2.2"),
)

WESTMERE = UarchConfig(
    name="WSM",
    full_name="Westmere",
    processor="Core i5-650",
    year=2010,
    ports=(0, 1, 2, 3, 4, 5),
    fu_map=_NHM_FU,
    extensions=_WSM_EXTS,
    rob_size=128,
    rs_size=36,
    move_elimination=False,
    zero_idiom_elimination=False,
    int_div=DividerTiming(28, 18, 92, 80),
    fp_div=DividerTiming(10, 7, 14, 12),
    fp_sqrt=DividerTiming(11, 7, 21, 19),
    iaca_versions=("2.1", "2.2"),
)

SANDY_BRIDGE = UarchConfig(
    name="SNB",
    full_name="Sandy Bridge",
    processor="Core i7-2600",
    year=2011,
    ports=(0, 1, 2, 3, 4, 5),
    fu_map=_SNB_FU,
    extensions=_SNB_EXTS,
    rob_size=168,
    rs_size=54,
    move_elimination=False,
    zero_idiom_elimination=True,
    macro_fusible=frozenset({"CMP", "TEST", "ADD", "SUB", "AND", "INC",
                             "DEC"}),
    sse_avx_transition_penalty=70,
    int_div=DividerTiming(26, 16, 88, 70),
    fp_div=DividerTiming(10, 6, 14, 12),
    fp_sqrt=DividerTiming(11, 7, 21, 19),
    iaca_versions=("2.1", "2.2", "2.3"),
)

IVY_BRIDGE = UarchConfig(
    name="IVB",
    full_name="Ivy Bridge",
    processor="Core i5-3470",
    year=2012,
    ports=(0, 1, 2, 3, 4, 5),
    fu_map=_SNB_FU,
    extensions=_IVB_EXTS,
    rob_size=168,
    rs_size=54,
    move_elimination=True,
    zero_idiom_elimination=True,
    macro_fusible=frozenset({"CMP", "TEST", "ADD", "SUB", "AND", "INC",
                             "DEC"}),
    sse_avx_transition_penalty=70,
    int_div=DividerTiming(26, 16, 62, 50),
    fp_div=DividerTiming(10, 6, 14, 12),
    fp_sqrt=DividerTiming(11, 7, 21, 19),
    iaca_versions=("2.1", "2.2", "2.3"),
)

HASWELL = UarchConfig(
    name="HSW",
    full_name="Haswell",
    processor="Xeon E3-1225 v3",
    year=2013,
    ports=(0, 1, 2, 3, 4, 5, 6, 7),
    fu_map=_HSW_FU,
    extensions=_HSW_EXTS,
    rob_size=192,
    rs_size=60,
    move_elimination=True,
    zero_idiom_elimination=True,
    macro_fusible=frozenset({"CMP", "TEST", "ADD", "SUB", "AND", "INC",
                             "DEC"}),
    sse_avx_transition_penalty=70,
    int_div=DividerTiming(26, 10, 96, 74),
    fp_div=DividerTiming(10, 5, 13, 8),
    fp_sqrt=DividerTiming(11, 5, 20, 13),
    iaca_versions=("2.1", "2.2", "2.3", "3.0"),
)

BROADWELL = UarchConfig(
    name="BDW",
    full_name="Broadwell",
    processor="Core i5-5200U",
    year=2014,
    ports=(0, 1, 2, 3, 4, 5, 6, 7),
    fu_map=_HSW_FU,
    extensions=_BDW_EXTS,
    rob_size=192,
    rs_size=60,
    move_elimination=True,
    zero_idiom_elimination=True,
    macro_fusible=frozenset({"CMP", "TEST", "ADD", "SUB", "AND", "INC",
                             "DEC"}),
    sse_avx_transition_penalty=70,
    int_div=DividerTiming(26, 10, 42, 24),
    fp_div=DividerTiming(10, 5, 13, 8),
    fp_sqrt=DividerTiming(11, 5, 20, 13),
    iaca_versions=("2.2", "2.3", "3.0"),
)

SKYLAKE = UarchConfig(
    name="SKL",
    full_name="Skylake",
    processor="Core i7-6500U",
    year=2015,
    ports=(0, 1, 2, 3, 4, 5, 6, 7),
    fu_map=_SKL_FU,
    extensions=_BDW_EXTS,
    rob_size=224,
    rs_size=97,
    move_elimination=True,
    zero_idiom_elimination=True,
    macro_fusible=frozenset({"CMP", "TEST", "ADD", "SUB", "AND", "INC",
                             "DEC"}),
    sse_avx_transition_penalty=0,
    int_div=DividerTiming(26, 10, 42, 24),
    fp_div=DividerTiming(11, 3, 14, 5),
    fp_sqrt=DividerTiming(12, 4, 18, 9),
    iaca_versions=("2.3", "3.0"),
)

KABY_LAKE = UarchConfig(
    name="KBL",
    full_name="Kaby Lake",
    processor="Core i7-7700",
    year=2016,
    ports=(0, 1, 2, 3, 4, 5, 6, 7),
    fu_map=_SKL_FU,
    extensions=_BDW_EXTS,
    rob_size=224,
    rs_size=97,
    move_elimination=True,
    zero_idiom_elimination=True,
    macro_fusible=frozenset({"CMP", "TEST", "ADD", "SUB", "AND", "INC",
                             "DEC"}),
    sse_avx_transition_penalty=0,
    int_div=DividerTiming(26, 10, 42, 24),
    fp_div=DividerTiming(11, 3, 14, 5),
    fp_sqrt=DividerTiming(12, 4, 18, 9),
    iaca_versions=(),
)

COFFEE_LAKE = UarchConfig(
    name="CFL",
    full_name="Coffee Lake",
    processor="Core i7-8700K",
    year=2017,
    ports=(0, 1, 2, 3, 4, 5, 6, 7),
    fu_map=_SKL_FU,
    extensions=_BDW_EXTS,
    rob_size=224,
    rs_size=97,
    move_elimination=True,
    zero_idiom_elimination=True,
    macro_fusible=frozenset({"CMP", "TEST", "ADD", "SUB", "AND", "INC",
                             "DEC"}),
    sse_avx_transition_penalty=0,
    int_div=DividerTiming(26, 10, 42, 24),
    fp_div=DividerTiming(11, 3, 14, 5),
    fp_sqrt=DividerTiming(12, 4, 18, 9),
    iaca_versions=(),
)

#: All generations in chronological order, as in Table 1.
ALL_UARCHES = (
    NEHALEM,
    WESTMERE,
    SANDY_BRIDGE,
    IVY_BRIDGE,
    HASWELL,
    BROADWELL,
    SKYLAKE,
    KABY_LAKE,
    COFFEE_LAKE,
)

_BY_NAME = {u.name: u for u in ALL_UARCHES}
_BY_NAME.update({u.full_name.lower().replace(" ", ""): u
                 for u in ALL_UARCHES})


def get_uarch(name: str) -> UarchConfig:
    """Look up a generation by short name (``"SKL"``) or full name."""
    key = name.strip()
    if key in _BY_NAME:
        return _BY_NAME[key]
    key = key.lower().replace(" ", "").replace("_", "").replace("-", "")
    if key in _BY_NAME:
        return _BY_NAME[key]
    raise KeyError(f"unknown microarchitecture: {name!r}")
