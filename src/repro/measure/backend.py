"""Measurement backends: the hardware (simulator) and the protocol.

:class:`HardwareBackend` reproduces the measurement routine of Algorithm 2
(Section 6.2): the code sequence under analysis is replicated ``n`` times
between serializing boundaries, performance counters are read around the
block, and the difference of two replication factors (10 and 110 in the
paper) cancels the constant overhead.  A warm-up run precedes the measured
runs.  On the deterministic simulator a single repetition suffices; the
100-fold averaging of the paper is kept as a configuration knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Sequence

from repro.isa.instruction import Instruction, InstructionForm
from repro.pipeline.core import Core, CounterValues
from repro.uarch.model import UarchConfig


@dataclass(frozen=True)
class MeasurementConfig:
    """Parameters of the Algorithm 2 protocol.

    The paper uses ``unroll_small=10``, ``unroll_large=110`` and 100
    repetitions; the defaults here are scaled down because the simulator is
    deterministic and cycle-exact, which the tests verify.
    """

    unroll_small: int = 5
    unroll_large: int = 25
    repeats: int = 1
    warmup: bool = True

    #: The paper's exact configuration, for protocol-fidelity tests.
    @classmethod
    def paper(cls) -> "MeasurementConfig":
        return cls(unroll_small=10, unroll_large=110, repeats=3,
                   warmup=True)


class MeasurementBackend(Protocol):
    """What the inference algorithms need from an execution substrate."""

    name: str
    uarch: UarchConfig

    def measure(
        self,
        code: Sequence[Instruction],
        init: Optional[Dict[str, int]] = None,
    ) -> CounterValues:
        """Average per-copy counters for the given code sequence."""

    def supports(self, form: InstructionForm) -> bool:
        """Whether the substrate can execute/analyze the form."""


class HardwareBackend:
    """Measurements on the simulated hardware via performance counters."""

    def __init__(
        self,
        uarch: UarchConfig,
        config: Optional[MeasurementConfig] = None,
    ):
        self.uarch = uarch
        self.name = f"hw-{uarch.name}"
        self.config = config or MeasurementConfig()
        self._core = Core(uarch)
        self._cache: Dict = {}
        #: Number of measure() invocations over the backend's lifetime.
        #: The sweep engine's tests use this to prove that a warm-cache
        #: sweep performs zero backend measurements.
        self.measure_calls = 0

    def measure(
        self,
        code: Sequence[Instruction],
        init: Optional[Dict[str, int]] = None,
    ) -> CounterValues:
        """Per-copy average counters using the unroll-difference protocol."""
        self.measure_calls += 1
        key = (
            tuple(code),
            tuple(sorted(init.items())) if init else None,
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        cfg = self.config
        code = list(code)
        small = code * cfg.unroll_small
        large = code * cfg.unroll_large
        if cfg.warmup:
            self._core.run(small, init)
        totals: Optional[CounterValues] = None
        for _ in range(cfg.repeats):
            counters_small = self._core.run(small, init)
            counters_large = self._core.run(large, init)
            delta = counters_large - counters_small
            totals = delta if totals is None else _accumulate(totals, delta)
        assert totals is not None
        per_copy = totals.scaled(
            cfg.repeats * (cfg.unroll_large - cfg.unroll_small)
        )
        self._cache[key] = per_copy
        return per_copy

    def supports(self, form: InstructionForm) -> bool:
        return self._core.supports(form)


def _accumulate(a: CounterValues, b: CounterValues) -> CounterValues:
    ports = {
        p: a.port_uops.get(p, 0) + b.port_uops.get(p, 0)
        for p in set(a.port_uops) | set(b.port_uops)
    }
    return CounterValues(
        cycles=a.cycles + b.cycles,
        port_uops=ports,
        uops=a.uops + b.uops,
        instructions=a.instructions + b.instructions,
        uops_fused=a.uops_fused + b.uops_fused,
    )
