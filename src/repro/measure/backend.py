"""Measurement backends: the hardware (simulator) and the protocol.

:class:`HardwareBackend` reproduces the measurement routine of Algorithm 2
(Section 6.2): the code sequence under analysis is replicated ``n`` times
between serializing boundaries, performance counters are read around the
block, and the difference of two replication factors (10 and 110 in the
paper) cancels the constant overhead.  A warm-up run precedes the measured
runs.  On the deterministic simulator a single repetition suffices; the
100-fold averaging of the paper is kept as a configuration knob.

Contract (enforced by ``repro lint``, RPR130): measurement entry points
here raise only the :class:`BackendError` taxonomy (transient /
permanent / timeout) — the executor's retry logic and the sweep
engine's quarantine dispatch on those exact types, so a foreign
exception escaping a backend bypasses both.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    NamedTuple,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.core.experiment import Experiment, ExperimentFailure
from repro.core.result import decode_counters, encode_counters
from repro.isa.instruction import Instruction, InstructionForm
from repro.measure.extrapolate import unrolled_counters
from repro.pipeline.core import KERNEL_REFERENCE, Core, CounterValues
from repro.uarch.model import UarchConfig


@dataclass(frozen=True)
class MeasurementConfig:
    """Parameters of the Algorithm 2 protocol.

    The paper uses ``unroll_small=10``, ``unroll_large=110`` and 100
    repetitions; the defaults here are scaled down because the simulator is
    deterministic and cycle-exact, which the tests verify.

    ``max_cached_measurements`` bounds the backend's two in-process
    result stores (final per-copy averages and per-run unroll counters)
    with LRU eviction, so a full-catalog sweep cannot grow memory without
    limit.  It is a resource knob, not part of the measurement protocol:
    persistent cache keys are derived from :meth:`protocol_fields` only.
    """

    unroll_small: int = 5
    unroll_large: int = 25
    repeats: int = 1
    warmup: bool = True
    max_cached_measurements: Optional[int] = 100_000

    #: The paper's exact configuration, for protocol-fidelity tests.
    @classmethod
    def paper(cls) -> "MeasurementConfig":
        return cls(unroll_small=10, unroll_large=110, repeats=3,
                   warmup=True)

    def protocol_fields(self) -> Dict[str, object]:
        """The fields that define the measurement protocol — and thus
        participate in persistent cache/memo keys."""
        return {
            "unroll_small": self.unroll_small,
            "unroll_large": self.unroll_large,
            "repeats": self.repeats,
            "warmup": self.warmup,
        }


class LRUDict(OrderedDict):
    """A mapping bounded by least-recently-used eviction.

    Reads refresh recency; inserting beyond ``max_entries`` evicts the
    stalest entry and counts it in ``evictions``.  ``max_entries=None``
    is unbounded (but still counts recency, so bounds can be compared
    against an unbounded baseline in tests).
    """

    def __init__(self, max_entries: Optional[int] = None):
        super().__init__()
        self.max_entries = max_entries
        self.evictions = 0

    def __getitem__(self, key):
        value = super().__getitem__(key)
        self.move_to_end(key)
        return value

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self.move_to_end(key)
        if self.max_entries is not None and len(self) > self.max_entries:
            self.popitem(last=False)
            self.evictions += 1


class BackendStats(NamedTuple):
    """Snapshot of the perf counters RunStatistics aggregates."""

    memo_hits: int
    memo_misses: int
    cycles_simulated: int
    cycles_extrapolated: int
    runs_extrapolated: int
    cache_evictions: int
    runs_analytic: int = 0
    cycles_analytic: int = 0

    @classmethod
    def zero(cls) -> "BackendStats":
        return cls(0, 0, 0, 0, 0, 0, 0, 0)


class MeasurementBackend(Protocol):
    """What the inference algorithms need from an execution substrate.

    Backends may additionally provide the optional batch entry point
    ``measure_many(experiments) -> list`` of the executor protocol
    (:class:`~repro.measure.executor.ExperimentExecutor`); when absent,
    the executor's default implementation loops over :meth:`measure`.
    Both concrete backends (:class:`HardwareBackend` and
    :class:`~repro.iaca.analyzer.IacaBackend`) provide it.
    """

    name: str
    uarch: UarchConfig

    def measure(
        self,
        code: Sequence[Instruction],
        init: Optional[Dict[str, int]] = None,
    ) -> CounterValues:
        """Average per-copy counters for the given code sequence."""

    def supports(self, form: InstructionForm) -> bool:
        """Whether the substrate can execute/analyze the form."""


class HardwareBackend:
    """Measurements on the simulated hardware via performance counters.

    Three result layers sit in front of the simulator, checked in order:

    1. an in-process cache of final per-copy averages, keyed by the
       hoisted ``(code, init)`` tuple (constructed once per call and
       shared with the run-level memo),
    2. an optional persistent, cross-process
       :class:`~repro.core.cache.MeasurementMemo` (injected — typically
       by the sweep engine — so worker shards share the blocking/chain
       sub-measurements instead of each re-simulating them),
    3. the simulator itself.  With the event kernel, both unroll factors
       of Algorithm 2 are read off **one** instrumented probe run via
       steady-state extrapolation
       (:func:`~repro.measure.extrapolate.unrolled_counters`), and the
       deterministic ``repeats``/warmup runs are collapsed analytically;
       with ``REPRO_SIM=reference`` the seed measurement loop runs
       verbatim.  Both paths return bit-identical counters.
    """

    def __init__(
        self,
        uarch: UarchConfig,
        config: Optional[MeasurementConfig] = None,
        memo=None,
        kernel: Optional[str] = None,
    ):
        self.uarch = uarch
        self.name = f"hw-{uarch.name}"
        self.config = config or MeasurementConfig()
        self._core = Core(uarch, kernel=kernel)
        bound = self.config.max_cached_measurements
        self._cache = LRUDict(bound)
        #: Per-(code, init) full-run counters at each simulated unroll
        #: factor — the run-level memo that collapses repeats/warmup.
        self._run_memo = LRUDict(bound)
        self.memo = memo
        #: Number of measure() invocations over the backend's lifetime.
        #: The sweep engine's tests use this to prove that a warm-cache
        #: sweep performs zero backend measurements.
        self.measure_calls = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.runs_extrapolated = 0
        self.cycles_extrapolated = 0
        #: Measure-level closed-form resolutions (the extrapolator's
        #: analytic fast path; core-level ones live on the core).
        self._runs_analytic = 0
        self._cycles_analytic = 0

    @property
    def kernel(self) -> str:
        """The active timing kernel (read through to the core, which the
        fusion/decoder extensions replace)."""
        return self._core.kernel

    @property
    def cycles_simulated(self) -> int:
        return self._core.cycles_simulated

    @property
    def runs_analytic(self) -> int:
        return self._runs_analytic + self._core.runs_analytic

    @property
    def cycles_analytic(self) -> int:
        return self._cycles_analytic + self._core.cycles_analytic

    @property
    def cache_evictions(self) -> int:
        return self._cache.evictions + self._run_memo.evictions

    def stats_tuple(self) -> BackendStats:
        """Snapshot of the perf counters RunStatistics aggregates."""
        return BackendStats(
            self.memo_hits,
            self.memo_misses,
            self.cycles_simulated,
            self.cycles_extrapolated,
            self.runs_extrapolated,
            self.cache_evictions,
            self.runs_analytic,
            self.cycles_analytic,
        )

    def measure(
        self,
        code: Sequence[Instruction],
        init: Optional[Dict[str, int]] = None,
    ) -> CounterValues:
        """Per-copy average counters using the unroll-difference protocol."""
        self.measure_calls += 1
        code = tuple(code)
        key = (
            code,
            tuple(sorted(init.items())) if init else None,
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        return self._measure_miss(key, code, init)

    def measure_many(self, experiments: Sequence[Experiment]) -> List[Any]:
        """Batch entry point of the executor protocol.

        An :class:`~repro.core.experiment.Experiment`'s identity tuple is
        already the backend's cache key (same normalization), so the
        per-call key construction of :meth:`measure` is hoisted away;
        per-experiment errors become
        :class:`~repro.core.experiment.ExperimentFailure` outcomes so one
        bad chain cannot abort the rest of a batch.
        """
        outcomes: List[Any] = []
        for experiment in experiments:
            self.measure_calls += 1
            key = (experiment.code, experiment.init)
            cached = self._cache.get(key)
            if cached is not None:
                outcomes.append(cached)
                continue
            try:
                outcomes.append(
                    self._measure_miss(
                        key, experiment.code, experiment.init_dict()
                    )
                )
            except Exception as error:
                outcomes.append(
                    ExperimentFailure(
                        error,
                        key=experiment.content_key(),
                        tag=experiment.tag,
                    )
                )
        return outcomes

    def _measure_miss(
        self,
        key,
        code: Tuple[Instruction, ...],
        init: Optional[Dict[str, int]],
    ) -> CounterValues:
        """Resolve a cache miss: memo probe, then simulation."""
        memo_key = None
        if self.memo is not None:
            memo_key = self.memo.key_for(
                self.uarch.name, self.config, code, init
            )
            data = self.memo.get(memo_key, self.uarch.name)
            if not self.memo.is_miss(data):
                self.memo_hits += 1
                per_copy = decode_counters(data)
                self._cache[key] = per_copy
                return per_copy
            self.memo_misses += 1
        if self._core.kernel == KERNEL_REFERENCE:
            per_copy = self._measure_reference(code, init)
        else:
            per_copy = self._measure_extrapolating(code, init, key)
        self._cache[key] = per_copy
        if self.memo is not None:
            self.memo.put(
                memo_key, self.uarch.name, encode_counters(per_copy)
            )
        return per_copy

    def _measure_reference(
        self,
        code: Tuple[Instruction, ...],
        init: Optional[Dict[str, int]],
    ) -> CounterValues:
        """The seed measurement loop, verbatim: every run simulated.

        Kept unshared with the extrapolating path (no run memo, no
        probe) so that ``REPRO_SIM=reference`` exercises exactly the
        original code for differential testing.
        """
        cfg = self.config
        block = list(code)
        small = block * cfg.unroll_small
        large = block * cfg.unroll_large
        if cfg.warmup:
            self._core.run(small, init)
        totals: Optional[CounterValues] = None
        for _ in range(cfg.repeats):
            counters_small = self._core.run(small, init)
            counters_large = self._core.run(large, init)
            delta = counters_large - counters_small
            totals = delta if totals is None else _accumulate(totals, delta)
        assert totals is not None
        return totals.scaled(
            cfg.repeats * (cfg.unroll_large - cfg.unroll_small)
        )

    def _measure_extrapolating(
        self,
        code: Tuple[Instruction, ...],
        init: Optional[Dict[str, int]],
        key,
    ) -> CounterValues:
        """One probe, analytic tail, collapsed repeats.

        The simulator is deterministic, so the warmup run and all but
        one repetition of the seed loop are byte-identical re-runs:
        their contribution is reconstructed exactly (integer deltas
        accumulated ``repeats`` times, then the same float division), so
        the result is bit-identical to :meth:`_measure_reference`.
        """
        cfg = self.config
        targets = (cfg.unroll_small, cfg.unroll_large)
        runs = self._run_memo.get(key)
        if runs is None or any(t not in runs for t in targets):
            fresh, stats = unrolled_counters(
                self._core, code, init, targets
            )
            self.runs_extrapolated += stats.runs_extrapolated
            self.cycles_extrapolated += stats.cycles_extrapolated
            self._runs_analytic += stats.runs_analytic
            self._cycles_analytic += stats.cycles_analytic
            if runs is None:
                runs = {}
                self._run_memo[key] = runs
            runs.update(fresh)
        delta = runs[cfg.unroll_large] - runs[cfg.unroll_small]
        totals = delta
        for _ in range(cfg.repeats - 1):
            totals = _accumulate(totals, delta)
        return totals.scaled(
            cfg.repeats * (cfg.unroll_large - cfg.unroll_small)
        )

    def supports(self, form: InstructionForm) -> bool:
        return self._core.supports(form)


def _accumulate(a: CounterValues, b: CounterValues) -> CounterValues:
    ports = {
        p: a.port_uops.get(p, 0) + b.port_uops.get(p, 0)
        for p in set(a.port_uops) | set(b.port_uops)
    }
    return CounterValues(
        cycles=a.cycles + b.cycles,
        port_uops=ports,
        uops=a.uops + b.uops,
        instructions=a.instructions + b.instructions,
        uops_fused=a.uops_fused + b.uops_fused,
    )
