"""Steady-state extrapolation of unrolled-block simulations.

:class:`~repro.measure.backend.HardwareBackend` implements Algorithm 2 by
simulating the block under test unrolled ``unroll_small`` and
``unroll_large`` times.  But the simulated pipeline reaches a steady
state after a handful of copies: the per-copy deltas of the retire cycle,
the port-binding counts, and the µop counts become periodic (period > 1
arises from e.g. the every-third-MOV move-elimination counter or a
port-imbalanced binding rotation).  Once the period is known, the
counters of the long unroll follow analytically — in exact integer
arithmetic, so the extrapolated values are bit-identical to a full
simulation.

The observation that a repeated basic block settles into a periodic
steady state is the same one uops.info's own loop-based throughput
protocol and PALMED's saturating-kernel design rely on.

Everything here rests on the *prefix property* of the simulated core:
counters observed at a copy boundary of a longer unroll equal the
counters of simulating exactly that many copies.  Port binding is a pure
function of issue order, issue/retire are in order, and a port always
dispatches its oldest ready µop — so a younger µop can never delay an
older one.  The single exception is the non-pipelined divider, whose
occupancy lets a younger µop (dispatched while the older's operands were
still in flight) stall an older divider µop; divider forms therefore
bypass extrapolation entirely (they are also the value-dependent case,
Section 5.2.5, where periodicity itself is not guaranteed).  When no
period is detected within the probe window the caller falls back to full
simulation, so extrapolation is an optimization, never a semantic
change.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pipeline.core import (
    KERNEL_EVENT,
    Core,
    CounterValues,
    ProbeResult,
)

#: Minimum number of copies simulated by the instrumented probe.  Large
#: enough that issue-rate transients (ROB/RS fill, SSE/AVX transition
#: stalls on the first copies, move-elimination phase-in) have settled
#: and a trailing window of clean periods is observable.
MIN_PROBE = 18

#: Longest per-copy period the detector searches for.
MAX_PERIOD = 4

#: Trailing copies that must repeat for a period to be accepted.
def _window(period: int) -> int:
    return max(6, 3 * period)


@dataclass
class ExtrapolationStats:
    """What one :func:`unrolled_counters` call did (for RunStatistics)."""

    #: Unroll targets served analytically (no simulation of their own).
    runs_extrapolated: int = 0
    #: Cycles of the analytic tails (would have been simulated otherwise).
    cycles_extrapolated: int = 0


def _uses_divider(core: Core, code: Sequence) -> bool:
    """Static guard: any µop of *code* can occupy the divider.

    Divider occupancy breaks the prefix property and divider timing is
    operand-value dependent, so these forms never extrapolate.
    """
    for instruction in code:
        entry = core._entries.get(instruction)
        if entry is None:
            return True  # unsupported: let the simulation raise
        if entry.divider_class is not None:
            return True
        for spec in chain(entry.uops, entry.same_reg_uops or ()):
            if spec.divider_cycles:
                return True
    return False


def _signatures(probe: ProbeResult) -> List[Tuple]:
    """Per-copy steady-state signature: everything that must repeat."""
    signatures: List[Tuple] = []
    previous = -1
    for k in range(probe.copies):
        finish = probe.finish[k]
        signatures.append(
            (
                finish - previous,
                tuple(sorted(probe.ports[k].items())),
                probe.uops[k],
                probe.fused[k],
            )
        )
        previous = finish
    return signatures


def _detect_period(signatures: List[Tuple]) -> Optional[int]:
    """Smallest period whose trailing window repeats exactly."""
    n = len(signatures)
    for period in range(1, MAX_PERIOD + 1):
        window = _window(period)
        if window + period > n:
            break
        if all(
            signatures[j] == signatures[j - period]
            for j in range(n - window, n)
        ):
            return period
    return None


def _prefix_counters(
    probe: ProbeResult, copies: int, block_len: int, ports: Sequence[int]
) -> CounterValues:
    """Exact counters of a ``copies``-copy run read off the probe prefix."""
    port_uops = {p: 0 for p in ports}
    uops = 0
    fused = 0
    for k in range(copies):
        for port, count in probe.ports[k].items():
            port_uops[port] += count
        uops += probe.uops[k]
        fused += probe.fused[k]
    return CounterValues(
        cycles=probe.finish[copies - 1] + 1 if copies else 0,
        port_uops=port_uops,
        uops=uops,
        instructions=copies * block_len,
        uops_fused=fused,
    )


def _extrapolated_counters(
    probe: ProbeResult,
    period: int,
    copies: int,
    block_len: int,
    ports: Sequence[int],
) -> CounterValues:
    """Counters of a run longer than the probe, via the periodic tail."""
    base = _prefix_counters(probe, probe.copies, block_len, ports)
    signatures = _signatures(probe)
    pattern = signatures[probe.copies - period:]
    full, rem = divmod(copies - probe.copies, period)

    cycles = base.cycles
    port_uops = dict(base.port_uops)
    uops = base.uops
    fused = base.uops_fused
    for weight, signature in chain(
        ((full, s) for s in pattern),
        ((1, s) for s in pattern[:rem]),
    ):
        delta, port_items, uop_count, fused_count = signature
        cycles += weight * delta
        for port, count in port_items:
            port_uops[port] += weight * count
        uops += weight * uop_count
        fused += weight * fused_count
    return CounterValues(
        cycles=cycles,
        port_uops=port_uops,
        uops=uops,
        instructions=copies * block_len,
        uops_fused=fused,
    )


def unrolled_counters(
    core: Core,
    code: Sequence,
    init: Optional[Dict[str, int]],
    targets: Sequence[int],
) -> Tuple[Dict[int, CounterValues], ExtrapolationStats]:
    """Exact counters of ``code * t`` for every unroll factor in *targets*.

    Runs one instrumented probe simulation and serves every target either
    as an integer prefix of the probe or by extrapolating the periodic
    steady state; each returned :class:`CounterValues` is bit-identical
    to ``core.run(list(code) * t, init)``.  Falls back to full
    simulation per target when extrapolation does not apply (reference
    kernel, divider forms, no detected period).
    """
    stats = ExtrapolationStats()
    targets = sorted(set(targets))

    def simulate_all() -> Dict[int, CounterValues]:
        return {
            t: core.run(list(code) * t, init) for t in targets
        }

    if (
        not code
        or not targets
        or core.kernel != KERNEL_EVENT
        or _uses_divider(core, code)
    ):
        return simulate_all(), stats

    probe_copies = min(targets[-1], max(MIN_PROBE, targets[0] + 2))
    probe = core.run_instrumented(code, probe_copies, init)
    block_len = len(code)
    ports = core.uarch.ports

    results: Dict[int, CounterValues] = {}
    beyond = [t for t in targets if t > probe_copies]
    period = None
    if beyond:
        period = _detect_period(_signatures(probe))
        if period is None:
            # No steady state within the probe window: simulate the
            # long unrolls in full (the probe still serves the short
            # ones as prefixes).
            for t in beyond:
                results[t] = core.run(list(code) * t, init)
    for t in targets:
        if t in results:
            continue
        if t <= probe_copies:
            results[t] = _prefix_counters(probe, t, block_len, ports)
        else:
            counters = _extrapolated_counters(
                probe, period, t, block_len, ports
            )
            stats.runs_extrapolated += 1
            stats.cycles_extrapolated += counters.cycles - probe.total_cycles
            results[t] = counters
    return results, stats
