"""Steady-state extrapolation of unrolled-block simulations.

:class:`~repro.measure.backend.HardwareBackend` implements Algorithm 2 by
simulating the block under test unrolled ``unroll_small`` and
``unroll_large`` times.  But the simulated pipeline reaches a steady
state after a handful of copies: the per-copy deltas of the retire cycle,
the port-binding counts, and the µop counts become periodic (period > 1
arises from e.g. the every-third-MOV move-elimination counter or a
port-imbalanced binding rotation).  Once the period is known, the
counters of the long unroll follow analytically — in exact integer
arithmetic, so the extrapolated values are bit-identical to a full
simulation.

The observation that a repeated basic block settles into a periodic
steady state is the same one uops.info's own loop-based throughput
protocol and PALMED's saturating-kernel design rely on.

Everything here rests on the *prefix property* of the simulated core:
counters observed at a copy boundary of a longer unroll equal the
counters of simulating exactly that many copies.  Port binding is a pure
function of issue order, issue/retire are in order, and a port always
dispatches its oldest ready µop — so a younger µop can never delay an
older one.  The single exception is the non-pipelined divider, whose
occupancy lets a younger µop (dispatched while the older's operands were
still in flight) stall an older divider µop; divider forms therefore
bypass extrapolation entirely (they are also the value-dependent case,
Section 5.2.5, where periodicity itself is not guaranteed).  A period
detected on the probe window is additionally *verified* before use: the
probe is doubled (capped at the longest unroll target) and the periodic
prediction must reproduce the longer probe's per-copy signatures
exactly.  A transient whose deltas merely look periodic for a while —
e.g. a reservation-station fill pattern that repeats until the window
drains — fails the check, and detection restarts on the longer probe.
When no period survives within the longest target the caller falls back
to full simulation, so extrapolation is an optimization, never a
semantic change.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.pipeline.analytic import schedule_arrays
from repro.pipeline.event_kernel import timing_event_arrays
from repro.pipeline.core import (
    KERNEL_ANALYTIC,
    KERNEL_REFERENCE,
    Core,
    CounterValues,
    ProbeResult,
    RenameContext,
)
from repro.uarch.uops import KIND_STORE_ADDR, KIND_STORE_DATA

#: Minimum number of copies simulated by the instrumented probe.  Large
#: enough that issue-rate transients (ROB/RS fill, SSE/AVX transition
#: stalls on the first copies, move-elimination phase-in) have settled
#: and a trailing window of clean periods is observable.
MIN_PROBE = 18

#: Longest per-copy period the detector searches for.
MAX_PERIOD = 4

#: Trailing copies that must repeat for a period to be accepted.
def _window(period: int) -> int:
    return max(6, 3 * period)


#: Copies structurally renamed while searching for a rename-state period
#: (the analytic tier's probe budget; see :func:`_analytic_unrolled`).
SNAPSHOT_BUDGET = 12


@dataclass
class ExtrapolationStats:
    """What one :func:`unrolled_counters` call did (for RunStatistics)."""

    #: Unroll targets served off a periodic event-kernel probe (no
    #: simulation of their own).
    runs_extrapolated: int = 0
    #: Cycles of the extrapolated tails (would have been simulated).
    cycles_extrapolated: int = 0
    #: Unroll targets served entirely in closed form — structural
    #: rename plus the analytic recurrence, no kernel run at all.
    runs_analytic: int = 0
    #: Cycles those closed-form answers cover.
    cycles_analytic: int = 0


def _form_blockers(core: Core, instruction) -> Tuple[bool, bool]:
    """(divider, stores) fast-path guard flags for one instruction form.

    Pure functions of the form's ground-truth entry, so they are cached
    per form on the core (one dict probe per instruction thereafter).
    """
    form = instruction.form
    flags = core.fastpath_blockers.get(form)
    if flags is not None:
        return flags
    entry = core._entries.get(instruction)
    if entry is None:
        flags = (True, True)  # unsupported: let the simulation raise
    else:
        divider = entry.divider_class is not None or any(
            spec.divider_cycles
            for spec in chain(entry.uops, entry.same_reg_uops or ())
        )
        stores = any(
            spec.kind in (KIND_STORE_ADDR, KIND_STORE_DATA)
            or any(out[0] == "mem" for out in spec.outputs)
            for spec in chain(entry.uops, entry.same_reg_uops or ())
        )
        flags = (divider, stores)
    core.fastpath_blockers[form] = flags
    return flags


def _uses_divider(core: Core, code: Sequence) -> bool:
    """Static guard: any µop of *code* can occupy the divider.

    Divider occupancy breaks the prefix property and divider timing is
    operand-value dependent, so these forms never extrapolate.
    """
    return any(_form_blockers(core, i)[0] for i in code)


def _uses_stores(core: Core, code: Sequence) -> bool:
    """Static guard: any µop of *code* writes memory.

    Stores make rename value-dependent (store-to-load forwarding keys on
    effective addresses), so the structural-rename fast path refuses
    them and leaves such bodies to the event-kernel probe.
    """
    return any(_form_blockers(core, i)[1] for i in code)


def _rename_snapshot(context: RenameContext) -> Tuple:
    """Canonical relative view of everything rename carries forward.

    Producer references are encoded as *ages* (distance from the current
    stream end), so two equal snapshots at copies ``k`` and ``k - p``
    prove — rename being a deterministic fold of this state over the
    block — that the rename output is exactly periodic with period ``p``
    from copy ``k - p + 1`` on.  No heuristic window needed.
    """
    n = len(context.uops)
    regs = tuple(sorted(
        (
            name,
            -1 if writer[0] is None else n - writer[0].index,
            writer[1],
            writer[2],
        )
        for name, writer in context.reg_writer.items()
    ))
    flags = tuple(sorted(
        (
            name,
            -1 if writer[0] is None else n - writer[0].index,
            writer[1],
        )
        for name, writer in context.flag_writer.items()
    ))
    serialize = context.serialize_dep
    return (
        regs,
        flags,
        -1 if serialize is None else n - serialize.index,
        context.move_elim_counter % 3,
        context.vec_mode,
    )


def _copy_template(
    context: RenameContext, start: int, fr_base: int, fused_base: int
) -> Tuple:
    """Relative encoding of one renamed copy, replayable at any offset.

    Per µop: candidate ports (sorted — binding is order-independent),
    completion latency, ``min_issue`` relative to the copy's starting
    ``frontend_release``, and deps as (age, offset) pairs.  Per copy:
    the ``frontend_release`` and fused-µop deltas.
    """
    items = []
    for uop in context.uops[start:]:
        items.append((
            tuple(sorted(uop.ports)),
            uop.complete_lat,
            uop.min_issue - fr_base,
            tuple(
                (
                    None if producer is None else uop.index - producer.index,
                    offset,
                )
                for producer, offset in uop.deps
            ),
        ))
    return (
        tuple(items),
        context.frontend_release - fr_base,
        context.fused_total - fused_base,
    )


def _template_order(copies: int, transient: int, period: int) -> List[int]:
    """Template index (0-based) for each of ``copies`` copies."""
    base = transient - period
    return [
        c - 1 if c <= transient else base + (c - base - 1) % period
        for c in range(1, copies + 1)
    ]


def _synthesize(templates: List[Tuple], order: List[int]):
    """Parallel scheduling arrays for the given template sequence."""
    ports: List[Tuple] = []
    lat: List[int] = []
    mins: List[int] = []
    deps: List[List[Tuple[Optional[int], int]]] = []
    boundaries: List[int] = []
    frontend_release = 0
    g = 0
    for ti in order:
        items, fr_delta, _fused = templates[ti]
        for pset, complete_lat, min_rel, rel_deps in items:
            ports.append(pset)
            lat.append(complete_lat)
            mins.append(frontend_release + min_rel)
            deps.append([
                (None if rel is None else g - rel, offset)
                for rel, offset in rel_deps
            ])
            g += 1
        frontend_release += fr_delta
        boundaries.append(g)
    return ports, lat, mins, deps, boundaries


def _analytic_unrolled(
    core: Core,
    code: Sequence,
    targets: Sequence[int],
    stats: "ExtrapolationStats",
) -> Optional[Dict[int, CounterValues]]:
    """Serve every unroll target in closed form, or ``None`` to fall back.

    The plan: structurally rename the block copy by copy until two
    rename-state snapshots match (proof of exact periodicity), encode
    the transient plus one period as relative templates, synthesize the
    probe-length µop stream from them, and schedule it with the analytic
    recurrence — no kernel run, no value emulation, and rename cost
    bounded by :data:`SNAPSHOT_BUDGET` copies instead of the unroll
    factor.  Guards: divider forms (value-dependent timing), stores
    (value-dependent forwarding), and the fusion/decoder extensions
    (front-end state not covered by the snapshot) all return ``None``,
    as does a recurrence abort or a missing snapshot match.

    ``init`` register values are deliberately not consulted: under the
    guards above, values influence neither the dependence graph nor any
    latency, so the counters are identical for every initial state.
    """
    if core.enable_macro_fusion or core.enable_decoder_model:
        return None
    if _uses_divider(core, code) or _uses_stores(core, code):
        return None

    context = RenameContext(None, emulate=False)
    snapshots: List[Tuple] = []
    templates: List[Tuple] = []
    transient = period = 0
    for k in range(1, SNAPSHOT_BUDGET + 1):
        start = len(context.uops)
        fr_base = context.frontend_release
        fused_base = context.fused_total
        core.rename_block(code, context)
        templates.append(
            _copy_template(context, start, fr_base, fused_base)
        )
        snapshot = _rename_snapshot(context)
        for p in range(1, len(snapshots) + 1):
            if snapshots[-p] == snapshot:
                transient, period = k, p
                break
        if period:
            break
        snapshots.append(snapshot)
    if not period:
        return None

    block_len = len(code)
    # Structural memo: experiments that differ only in register choice
    # rename to identical relative templates, so the schedule (and every
    # derived counter) is shared.  Keyed per core, which also scopes it
    # to one uarch/extension configuration.
    key = (tuple(templates), transient, period, tuple(targets), block_len)
    memo = core.analytic_memo
    hit = memo.get(key)
    if hit is not None:
        results, a_runs, a_cycles, e_runs, e_cycles = hit
        stats.runs_analytic += a_runs
        stats.cycles_analytic += a_cycles
        stats.runs_extrapolated += e_runs
        stats.cycles_extrapolated += e_cycles
        return results

    uarch_ports = core.uarch.ports
    closed_form = True

    def build_probe(n: int) -> ProbeResult:
        """Synthesize and schedule an ``n``-copy probe off the templates."""
        nonlocal closed_form
        order = _template_order(n, transient, period)
        arrays = _synthesize(templates, order)
        scheduled = (
            schedule_arrays(core.uarch, *arrays) if closed_form else None
        )
        if scheduled is None:
            # No closed form (a per-port ready-order inversion) — but
            # the synthesized stream is still exact, so run it through
            # the array event kernel: no value emulation, no µop
            # objects, and rename still bounded by the snapshot budget.
            closed_form = False
            ports_a, lat_a, mins_a, deps_a, boundaries_a = arrays
            total_cycles, _counts, finishes, bound_arr = timing_event_arrays(
                core.uarch, ports_a, lat_a, mins_a, deps_a,
                [0] * len(lat_a), boundaries_a,
            )
            core.cycles_simulated += total_cycles
            bounds = [b if b >= 0 else None for b in bound_arr]
        else:
            total_cycles, _counts, finishes, bounds = scheduled

        per_ports: List[Dict[int, int]] = []
        per_uops: List[int] = []
        per_fused: List[int] = []
        g = 0
        for ti in order:
            items, _fr, fused_delta = templates[ti]
            counts: Dict[int, int] = {}
            for _ in items:
                bound = bounds[g]
                if bound is not None:
                    counts[bound] = counts.get(bound, 0) + 1
                g += 1
            per_ports.append(counts)
            per_uops.append(len(items))
            per_fused.append(fused_delta)
        return ProbeResult(
            copies=n,
            finish=list(finishes or []),
            ports=per_ports,
            uops=per_uops,
            fused=per_fused,
            total_cycles=total_cycles,
        )

    probe = build_probe(min(targets[-1], max(MIN_PROBE, targets[0] + 2)))

    results: Dict[int, CounterValues] = {}
    beyond = [t for t in targets if t > probe.copies]
    timing_period = None
    if beyond:
        probe, timing_period = _verified_period(
            probe, build_probe, targets[-1]
        )
        beyond = [t for t in targets if t > probe.copies]
    if beyond and timing_period is None:
        # The schedule is not periodic within the probe window: extend
        # to each long target exactly (cost is O(µops), not O(cycles)).
        for t in beyond:
            order_t = _template_order(t, transient, period)
            arrays_t = _synthesize(templates, order_t)
            scheduled_t = (
                schedule_arrays(core.uarch, *arrays_t)
                if closed_form else None
            )
            if scheduled_t is not None:
                cycles_t, counts_t = scheduled_t[0], scheduled_t[1]
            else:
                ports_t, lat_t, mins_t, deps_t, _bounds = arrays_t
                cycles_t, counts_t, _f, _b = timing_event_arrays(
                    core.uarch, ports_t, lat_t, mins_t, deps_t,
                    [0] * len(lat_t),
                )
                core.cycles_simulated += cycles_t
                closed_form = False
            results[t] = CounterValues(
                cycles=cycles_t,
                port_uops=counts_t,
                uops=sum(len(templates[ti][0]) for ti in order_t),
                instructions=t * block_len,
                uops_fused=sum(templates[ti][2] for ti in order_t),
            )
    a_runs = a_cycles = e_runs = e_cycles = 0
    if not closed_form:
        # The probe was simulated (array event kernel); only targets
        # served off its periodic tail count as extrapolated, matching
        # the event-probe path's accounting.
        e_runs = sum(1 for t in beyond if t not in results)
    for t in targets:
        if t in results:
            continue
        if t <= probe.copies:
            results[t] = _prefix_counters(probe, t, block_len, uarch_ports)
        else:
            results[t] = _extrapolated_counters(
                probe, timing_period, t, block_len, uarch_ports
            )
            if not closed_form:
                e_cycles += results[t].cycles - probe.total_cycles
    if closed_form:
        a_runs = len(targets)
        a_cycles = sum(int(results[t].cycles) for t in targets)
    stats.runs_analytic += a_runs
    stats.cycles_analytic += a_cycles
    stats.runs_extrapolated += e_runs
    stats.cycles_extrapolated += e_cycles
    memo[key] = (results, a_runs, a_cycles, e_runs, e_cycles)
    return results


def _signatures(probe: ProbeResult) -> List[Tuple]:
    """Per-copy steady-state signature: everything that must repeat."""
    signatures: List[Tuple] = []
    previous = -1
    for k in range(probe.copies):
        finish = probe.finish[k]
        signatures.append(
            (
                finish - previous,
                tuple(sorted(probe.ports[k].items())),
                probe.uops[k],
                probe.fused[k],
            )
        )
        previous = finish
    return signatures


def _detect_period(signatures: List[Tuple]) -> Optional[int]:
    """Smallest period whose trailing window repeats exactly."""
    n = len(signatures)
    for period in range(1, MAX_PERIOD + 1):
        window = _window(period)
        if window + period > n:
            break
        if all(
            signatures[j] == signatures[j - period]
            for j in range(n - window, n)
        ):
            return period
    return None


def _continuation_matches(
    probe: ProbeResult, period: int, bigger: ProbeResult
) -> bool:
    """Does *probe*'s periodic tail predict *bigger*'s extra copies?"""
    pattern = _signatures(probe)[probe.copies - period:]
    signatures = _signatures(bigger)
    return all(
        signatures[k] == pattern[(k - probe.copies) % period]
        for k in range(probe.copies, bigger.copies)
    )


def _verified_period(
    probe: ProbeResult,
    make_probe: Callable[[int], ProbeResult],
    limit: int,
) -> Tuple[ProbeResult, Optional[int]]:
    """Detect a period and require it to survive a doubled probe.

    :func:`_detect_period` can be fooled by a transient whose per-copy
    deltas are themselves periodic for a stretch — a reservation-station
    fill pattern, say — before the true steady state appears.  A
    candidate period is therefore accepted only if its periodic
    prediction reproduces, signature by signature, a probe twice as
    long; on a mismatch detection restarts on the longer probe.  Growth
    is geometric and capped at ``limit`` (the longest unroll target),
    where every target becomes an exact prefix and periodicity is moot.

    Returns ``(probe, period)``: the final — possibly grown — probe and
    the verified period (``None`` when no period survived).
    """
    while True:
        period = _detect_period(_signatures(probe))
        if period is None or probe.copies >= limit:
            return probe, period
        bigger = make_probe(min(2 * probe.copies, limit))
        if _continuation_matches(probe, period, bigger):
            return bigger, period
        probe = bigger


def _prefix_counters(
    probe: ProbeResult, copies: int, block_len: int, ports: Sequence[int]
) -> CounterValues:
    """Exact counters of a ``copies``-copy run read off the probe prefix."""
    port_uops = {p: 0 for p in ports}
    uops = 0
    fused = 0
    for k in range(copies):
        for port, count in probe.ports[k].items():
            port_uops[port] += count
        uops += probe.uops[k]
        fused += probe.fused[k]
    return CounterValues(
        cycles=probe.finish[copies - 1] + 1 if copies else 0,
        port_uops=port_uops,
        uops=uops,
        instructions=copies * block_len,
        uops_fused=fused,
    )


def _extrapolated_counters(
    probe: ProbeResult,
    period: int,
    copies: int,
    block_len: int,
    ports: Sequence[int],
) -> CounterValues:
    """Counters of a run longer than the probe, via the periodic tail."""
    base = _prefix_counters(probe, probe.copies, block_len, ports)
    signatures = _signatures(probe)
    pattern = signatures[probe.copies - period:]
    full, rem = divmod(copies - probe.copies, period)

    cycles = base.cycles
    port_uops = dict(base.port_uops)
    uops = base.uops
    fused = base.uops_fused
    for weight, signature in chain(
        ((full, s) for s in pattern),
        ((1, s) for s in pattern[:rem]),
    ):
        delta, port_items, uop_count, fused_count = signature
        cycles += weight * delta
        for port, count in port_items:
            port_uops[port] += weight * count
        uops += weight * uop_count
        fused += weight * fused_count
    return CounterValues(
        cycles=cycles,
        port_uops=port_uops,
        uops=uops,
        instructions=copies * block_len,
        uops_fused=fused,
    )


def unrolled_counters(
    core: Core,
    code: Sequence,
    init: Optional[Dict[str, int]],
    targets: Sequence[int],
) -> Tuple[Dict[int, CounterValues], ExtrapolationStats]:
    """Exact counters of ``code * t`` for every unroll factor in *targets*.

    With the analytic kernel the whole ladder is attempted first in
    closed form (:func:`_analytic_unrolled`): structural rename with a
    snapshot-proved period plus the analytic recurrence, no kernel run
    at all.  Otherwise (or on analytic fallback) one instrumented probe
    simulation serves every target either as an integer prefix of the
    probe or by extrapolating the periodic steady state; each returned
    :class:`CounterValues` is bit-identical to
    ``core.run(list(code) * t, init)``.  Falls back to full simulation
    per target when extrapolation does not apply (reference kernel,
    divider forms, no period surviving verification).
    """
    stats = ExtrapolationStats()
    targets = sorted(set(targets))

    def simulate_all() -> Dict[int, CounterValues]:
        return {
            t: core.run(list(code) * t, init) for t in targets
        }

    if not code or not targets or core.kernel == KERNEL_REFERENCE:
        return simulate_all(), stats
    if core.kernel == KERNEL_ANALYTIC:
        analytic = _analytic_unrolled(core, code, targets, stats)
        if analytic is not None:
            return analytic, stats
    if _uses_divider(core, code):
        return simulate_all(), stats

    probe_copies = min(targets[-1], max(MIN_PROBE, targets[0] + 2))
    probe = core.run_instrumented(code, probe_copies, init)
    block_len = len(code)
    ports = core.uarch.ports

    results: Dict[int, CounterValues] = {}
    beyond = [t for t in targets if t > probe_copies]
    period = None
    if beyond:
        probe, period = _verified_period(
            probe,
            lambda n: core.run_instrumented(code, n, init),
            targets[-1],
        )
        beyond = [t for t in targets if t > probe.copies]
        if beyond and period is None:
            # No steady state survived verification: simulate the long
            # unrolls in full (the probe still serves the short ones as
            # prefixes).
            for t in beyond:
                results[t] = core.run(list(code) * t, init)
    for t in targets:
        if t in results:
            continue
        if t <= probe.copies:
            results[t] = _prefix_counters(probe, t, block_len, ports)
        else:
            counters = _extrapolated_counters(
                probe, period, t, block_len, ports
            )
            stats.runs_extrapolated += 1
            stats.cycles_extrapolated += counters.cycles - probe.total_cycles
            results[t] = counters
    return results, stats
