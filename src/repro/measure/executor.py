"""The batch executor between planning and interpretation.

:class:`ExperimentExecutor` sits between the inference algorithms' plans
(:mod:`repro.core.experiment`) and a measurement backend.  It owns the
third caching layer of the stack (after the persistent result cache and
the cross-process measurement memo): a content-addressed dedup memo over
:class:`~repro.core.experiment.Experiment` identity, so an identical
``(code, init)`` pair planned by two algorithms — or by two forms of the
same sweep shard — is dispatched to the backend once.

Dispatch goes through the optional ``measure_many`` protocol when the
backend provides it (both :class:`~repro.measure.backend.HardwareBackend`
and :class:`~repro.iaca.analyzer.IacaBackend` do), falling back to a loop
over ``measure()``.  Per-experiment exceptions are captured as
:class:`~repro.core.experiment.ExperimentFailure` and re-raised only when
an interpreter reads the failed experiment, so batched execution keeps
the inline path's exception semantics.

``REPRO_EXECUTOR=inline`` disables deduplication: every planned
experiment is dispatched in plan order, replaying the seed algorithms'
exact measure-call sequence.  This is the differential-testing baseline
(see tests/test_experiment_executor.py) and the escape hatch when
debugging a suspected dedup mismatch.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from typing import Any, Dict, List, NamedTuple, Optional, Sequence

from repro.core.experiment import (
    Experiment,
    ExperimentBatch,
    ExperimentFailure,
    Plan,
    ResultMap,
)

#: Environment variable selecting the execution mode.
EXECUTOR_ENV = "REPRO_EXECUTOR"
EXECUTOR_BATCHED = "batched"
EXECUTOR_INLINE = "inline"

#: Environment variable overriding the retry policy:
#: ``REPRO_RETRY=attempts[:base_delay[:max_delay]]``.
RETRY_ENV = "REPRO_RETRY"


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Retry budget for transient backend failures.

    A failed experiment whose error is a
    :class:`~repro.measure.TransientBackendError` is re-dispatched up to
    ``max_attempts`` times in total, sleeping
    ``min(max_delay, base_delay * 2**(attempt-1))`` — plus a
    deterministic jitter fraction derived from the experiment contents,
    so concurrent shards retrying the same flaky measurement do not
    thunder in lock-step — between rounds.  Permanent failures and
    unclassified exceptions are never retried.
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    max_delay: float = 1.0
    jitter: float = 0.25

    def delay_for(self, attempt: int, salt: str) -> float:
        """Backoff before retry round *attempt* (1-based)."""
        base = min(
            self.max_delay, self.base_delay * (2 ** (attempt - 1))
        )
        digest = hashlib.sha256(
            f"{attempt}:{salt}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:4], "big") / 2**32
        return base * (1.0 + self.jitter * fraction)

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        spec = os.environ.get(RETRY_ENV)
        if not spec:
            return cls()
        parts = spec.split(":")
        try:
            kwargs: Dict[str, Any] = {"max_attempts": int(parts[0])}
            if len(parts) > 1:
                kwargs["base_delay"] = float(parts[1])
            if len(parts) > 2:
                kwargs["max_delay"] = float(parts[2])
        except ValueError as error:
            raise ValueError(
                f"bad {RETRY_ENV} spec {spec!r} "
                f"(expected attempts[:base_delay[:max_delay]])"
            ) from error
        return cls(**kwargs)


def executor_mode(explicit: Optional[str] = None) -> str:
    """Resolve the executor-mode selection.

    ``REPRO_EXECUTOR=inline`` forces one backend dispatch per planned
    experiment in plan order (the seed behaviour, and the baseline the
    differential tests compare against); anything else selects the
    deduplicating batched mode.
    """
    mode = explicit or os.environ.get(EXECUTOR_ENV) or EXECUTOR_BATCHED
    if mode not in (EXECUTOR_BATCHED, EXECUTOR_INLINE):
        raise ValueError(
            f"unknown executor mode {mode!r} "
            f"(expected {EXECUTOR_BATCHED!r} or {EXECUTOR_INLINE!r})"
        )
    return mode


class ExecutorStats(NamedTuple):
    """Snapshot of the executor counters RunStatistics aggregates."""

    experiments_planned: int
    experiments_deduped: int
    experiments_measured: int
    batches_dispatched: int
    plan_seconds: float
    execute_seconds: float
    retries: int
    experiments_gave_up: int

    @classmethod
    def zero(cls) -> "ExecutorStats":
        return cls(0, 0, 0, 0, 0.0, 0.0, 0, 0)


class ExperimentExecutor:
    """Deduplicating dispatcher of experiment batches to one backend.

    The dedup memo spans the executor's lifetime, which is what makes
    sharing an executor across a whole sweep shard (see
    :class:`~repro.core.sweep.SweepEngine`) collapse repeated chain,
    isolation, and blocking sub-measurements across forms — the inline
    algorithms could only ever reuse them per call site.
    """

    def __init__(
        self,
        backend,
        mode: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.backend = backend
        self.mode = executor_mode(mode)
        self.dedup = self.mode == EXECUTOR_BATCHED
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        #: Lifetime outcome memo, keyed by experiment content.
        self._memo: Dict[Experiment, Any] = {}
        self.experiments_planned = 0
        self.experiments_deduped = 0
        self.experiments_measured = 0
        self.batches_dispatched = 0
        self.plan_seconds = 0.0
        self.execute_seconds = 0.0
        self.retries = 0
        self.experiments_gave_up = 0

    def stats_tuple(self) -> ExecutorStats:
        return ExecutorStats(
            self.experiments_planned,
            self.experiments_deduped,
            self.experiments_measured,
            self.batches_dispatched,
            self.plan_seconds,
            self.execute_seconds,
            self.retries,
            self.experiments_gave_up,
        )

    def execute(self, batch: ExperimentBatch) -> ResultMap:
        """Measure one batch, deduped against everything seen so far."""
        self.experiments_planned += len(batch)
        if self.dedup:
            pending: List[Experiment] = []
            seen = set()
            for experiment in batch:
                if experiment in self._memo or experiment in seen:
                    self.experiments_deduped += 1
                else:
                    seen.add(experiment)
                    pending.append(experiment)
        else:
            pending = list(batch)
        if pending:
            started = time.perf_counter()
            outcomes = self._dispatch_with_retry(pending)
            self.execute_seconds += time.perf_counter() - started
            self.batches_dispatched += 1
            self.experiments_measured += len(pending)
            for experiment, outcome in zip(pending, outcomes):
                self._memo[experiment] = outcome
        results = ResultMap()
        for experiment in batch:
            results.put(experiment, self._memo[experiment])
        return results

    def _dispatch_with_retry(
        self, pending: Sequence[Experiment]
    ) -> List[Any]:
        """Dispatch a batch, re-dispatching transient failures with
        capped exponential backoff until the retry budget is spent."""
        from repro.measure import TransientBackendError

        outcomes = self._dispatch(pending)
        for attempt in range(1, self.retry.max_attempts):
            failed = [
                index
                for index, outcome in enumerate(outcomes)
                if isinstance(outcome, ExperimentFailure)
                and isinstance(outcome.error, TransientBackendError)
            ]
            if not failed:
                break
            salt = pending[failed[0]].content_key()
            time.sleep(self.retry.delay_for(attempt, salt))
            self.retries += len(failed)
            retried = self._dispatch([pending[i] for i in failed])
            for index, outcome in zip(failed, retried):
                if isinstance(outcome, ExperimentFailure):
                    outcome = dataclasses.replace(
                        outcome, attempts=attempt + 1
                    )
                outcomes[index] = outcome
        for index, outcome in enumerate(outcomes):
            if isinstance(outcome, ExperimentFailure) and isinstance(
                outcome.error, TransientBackendError
            ):
                self.experiments_gave_up += 1
        return outcomes

    def _dispatch(self, pending: Sequence[Experiment]) -> List[Any]:
        measure_many = getattr(self.backend, "measure_many", None)
        if measure_many is not None:
            return list(measure_many(pending))
        outcomes: List[Any] = []
        for experiment in pending:
            try:
                outcomes.append(
                    self.backend.measure(
                        list(experiment.code), experiment.init_dict()
                    )
                )
            except Exception as error:
                outcomes.append(
                    ExperimentFailure(
                        error,
                        key=experiment.content_key(),
                        tag=experiment.tag,
                    )
                )
        return outcomes

    def drive(self, plan: Plan) -> Any:
        """Run a plan to completion: execute every batch it yields and
        feed the results back, returning the plan's interpretation."""
        results: Optional[ResultMap] = None
        while True:
            started = time.perf_counter()
            try:
                if results is None:
                    batch = next(plan)
                else:
                    batch = plan.send(results)
            except StopIteration as stop:
                self.plan_seconds += time.perf_counter() - started
                return stop.value
            self.plan_seconds += time.perf_counter() - started
            results = self.execute(batch)
