"""Measurement infrastructure (Algorithm 2) and the backend abstraction.

The inference algorithms of :mod:`repro.core` are written against the
:class:`~repro.measure.backend.MeasurementBackend` protocol, which mirrors
the paper's two execution substrates: the actual hardware (here: the pipeline
simulator, measured through performance counters with the unroll-difference
protocol of Section 6.2) and Intel IACA (here: the static analyzer of
:mod:`repro.iaca`, Section 6.3).

The exception taxonomy below classifies backend failures the way a
production characterization run needs them classified (Section 5 notes
unreliable counters and per-instruction pitfalls on real hardware):

* :class:`TransientBackendError` — the measurement *might* succeed if
  repeated (counter glitch, interrupted run, timeout).  The
  :class:`~repro.measure.executor.ExperimentExecutor` retries these with
  capped exponential backoff.
* :class:`PermanentBackendError` — repeating is pointless (the substrate
  cannot execute the sequence at all).  Never retried; the affected form
  is quarantined by the sweep engine.
* :class:`BackendTimeout` — a run that exceeded its deadline; transient,
  because a busy machine may simply have starved the measurement.

Deliberately *not* rooted in :class:`RuntimeError`: the inference
algorithms swallow ``RuntimeError`` in a few per-pair fallbacks, and a
backend fault must surface as a quarantined form, not as a silently
missing latency pair.
"""

from repro.measure.backend import (
    HardwareBackend,
    MeasurementBackend,
    MeasurementConfig,
)


class BackendError(Exception):
    """Base of all classified measurement-backend failures."""


class TransientBackendError(BackendError):
    """A failure that may not repeat: worth retrying."""


class PermanentBackendError(BackendError):
    """A failure that will repeat: retrying is pointless."""


class BackendTimeout(TransientBackendError):
    """A measurement that exceeded its deadline (simulated hang)."""


__all__ = [
    "BackendError",
    "BackendTimeout",
    "HardwareBackend",
    "MeasurementBackend",
    "MeasurementConfig",
    "PermanentBackendError",
    "TransientBackendError",
]
