"""Measurement infrastructure (Algorithm 2) and the backend abstraction.

The inference algorithms of :mod:`repro.core` are written against the
:class:`~repro.measure.backend.MeasurementBackend` protocol, which mirrors
the paper's two execution substrates: the actual hardware (here: the pipeline
simulator, measured through performance counters with the unroll-difference
protocol of Section 6.2) and Intel IACA (here: the static analyzer of
:mod:`repro.iaca`, Section 6.3).
"""

from repro.measure.backend import (
    HardwareBackend,
    MeasurementBackend,
    MeasurementConfig,
)

__all__ = ["HardwareBackend", "MeasurementBackend", "MeasurementConfig"]
