"""Deterministic fault injection: the chaos harness of the sweep stack.

Real measurement campaigns fail in boring, predictable ways — a counter
read glitches, a machine hiccups, one instruction reliably wedges the
harness, a worker process dies mid-shard (Section 5's per-instruction
pitfalls, at fleet scale).  Every fault-tolerance mechanism in this
repository (executor retries, form quarantine, shard respawn, resumable
caches) is tested against this module rather than against luck.

A :class:`FaultPlan` is parsed from a compact ``key=value`` spec, e.g. ::

    seed=7,transient=0.1,permanent=DIV_R64,kill_once=NOP

and is **deterministic**: whether a given measurement faults is a pure
function of ``(seed, fault kind, measurement content)``, so a faulty run
is exactly reproducible, and an injected *transient* fault strikes the
same experiments on every attempt-zero dispatch regardless of batch
order or shard assignment.

Supported keys:

``seed=N``
    Seed mixed into every fault decision (default 0).
``transient=P`` / ``transient_attempts=K``
    With probability *P* per experiment, raise
    :class:`~repro.measure.TransientBackendError` on that experiment's
    first *K* dispatches (default ``K=1``), then let it through — the
    retry-then-succeed shape.
``timeout=P``
    Like ``transient``, but raises :class:`~repro.measure.BackendTimeout`
    (a simulated hang; also bounded by ``transient_attempts``).
``noise=P`` / ``noise_cycles=N``
    With probability *P*, perturb the measured cycle counter by up to
    ``N`` cycles (default 1).  Noise does not raise, so it survives
    retries — it exists to probe result *validation*, not retry logic,
    and is never part of the bit-identical acceptance runs.
``permanent=UID[+UID...]``
    Fail every measurement consisting solely of the listed form with
    :class:`~repro.measure.PermanentBackendError` — forever.  That is
    each form's isolation and throughput experiments (latency chains
    and port-usage runs mix in other instructions), so exactly the
    listed forms are quarantined.  Matching is by measurement *content*
    rather than tag because the executor dedups content across tags:
    e.g. ``iso:NOP`` is served from the blocking discovery's
    ``blocking:iso:NOP`` twin.  A listed form that is a blocking-
    discovery *candidate* is skipped by the (fault-tolerant) discovery;
    note that listing a form that would have been **selected** as a
    blocking instruction changes other forms' port-usage measurements
    relative to a fault-free run — bit-identical comparisons should
    list non-candidate forms (e.g. memory-operand variants).
``kill=UID[+UID...]`` / ``kill_once=UID[+UID...]``
    Sweep-worker crash (``os._exit``) when the worker is about to
    characterize the listed form.  ``kill_once`` does not fire in a
    respawned worker (a transient machine loss); ``kill`` fires every
    time (the respawn dies too and the shard's remainder is
    quarantined).
``stall=UID:SECONDS[+UID:SECONDS...]``
    Sweep worker sleeps before characterizing the listed form (not in a
    respawned worker) — trips the shard watchdog without killing the
    process.

Activation: the sweep engine and CLI consult ``REPRO_FAULTS`` (or the
explicit ``--fault-spec`` flag) via :func:`maybe_faulty`; nothing is ever
injected by default.

Beyond backend faults, this module also hosts the **crash-point
harness** of the persistence layer: ``REPRO_CRASH_POINT=site[:N]``
SIGKILLs the process (no interpreter cleanup — exactly a power-loss or
OOM-kill shape) the Nth time a named write site in
:mod:`repro.core.journal` is reached.  The site registry is
:data:`CRASH_SITES`; the crash-consistency suite proves ``repro doctor``
plus a fault-free resume reconverges to byte-identical output from
every one of them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import signal
from typing import Dict, List, Optional, Sequence, Tuple

from repro import measure as _measure
from repro.core.experiment import Experiment, ExperimentFailure
from repro.core.journal import CRASH_POINT_ENV
from repro.pipeline.core import CounterValues

#: Environment variable holding the fault spec (never set by default).
FAULTS_ENV = "REPRO_FAULTS"

#: Every named crash point the persistence layer calls
#: :func:`repro.core.journal.maybe_crash` with.  ``pre-append`` fires
#: before the store is even opened, ``mid-append`` splits the one-line
#: write to manufacture a torn tail, ``pre-fsync`` fires after the
#: write but before durability, ``post-append`` after the lock is
#: released; ``pre-rename``/``post-rename`` bracket the atomic publish
#: of whole-file states (queue, manifest).  The quarantine sidecar
#: appends raw (already-damaged) bytes in one write — no mid-append
#: split to manufacture, no fsync barrier worth naming — so it carries
#: only the ``pre-append``/``post-append`` bracket.  Lint RPR163
#: cross-checks this tuple against the actual write sites in
#: ``core/journal.py``.
CRASH_SITES = (
    "cache.pre-append",
    "cache.mid-append",
    "cache.pre-fsync",
    "cache.post-append",
    "memo.pre-append",
    "memo.mid-append",
    "memo.pre-fsync",
    "memo.post-append",
    "quarantine.pre-append",
    "quarantine.post-append",
    "queue.pre-rename",
    "queue.post-rename",
    "manifest.pre-rename",
    "manifest.post-rename",
)

#: Per-site hit counters of this process (``site:N`` kills on the Nth
#: hit, so earlier hits must be remembered).
_crash_hits: Dict[str, int] = {}


def parse_crash_spec(spec: str) -> Tuple[str, int]:
    """``"site"`` or ``"site:N"`` -> ``(site, N)`` (default ``N=1``)."""
    site, sep, nth = spec.partition(":")
    count = int(nth) if sep and nth else 1
    if count < 1:
        raise ValueError(f"crash point count must be >= 1: {spec!r}")
    return site, count


def crash_site_armed(site: str, spec: Optional[str] = None) -> bool:
    """Whether *site* is the armed crash site (ignoring the count)."""
    spec = spec if spec is not None else os.environ.get(CRASH_POINT_ENV)
    if not spec:
        return False
    return parse_crash_spec(spec)[0] == site


def crash_point(site: str) -> None:
    """SIGKILL this process when ``$REPRO_CRASH_POINT`` names *site*.

    SIGKILL (not ``os._exit``) so no buffered I/O, no ``atexit``, no
    ``finally`` blocks run — the harness models the harshest crash the
    persistence layer claims to survive.  Deterministic: the Nth hit of
    the named site kills, independent of timing.
    """
    spec = os.environ.get(CRASH_POINT_ENV)
    if not spec:
        return
    target, nth = parse_crash_spec(spec)
    if target != site:
        return
    _crash_hits[site] = _crash_hits.get(site, 0) + 1
    if _crash_hits[site] >= nth:
        os.kill(os.getpid(), signal.SIGKILL)


def reset_crash_counters() -> None:
    """Forget crash-point hits (test isolation between armed runs)."""
    _crash_hits.clear()


def _parse_uids(value: str) -> Tuple[str, ...]:
    return tuple(part for part in value.split("+") if part)


def _parse_stalls(value: str) -> Dict[str, float]:
    stalls: Dict[str, float] = {}
    for part in _parse_uids(value):
        uid, _, seconds = part.partition(":")
        if not seconds:
            raise ValueError(
                f"stall fault needs UID:SECONDS, got {part!r}"
            )
        stalls[uid] = float(seconds)
    return stalls


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A parsed, seedable description of which faults to inject where."""

    seed: int = 0
    transient: float = 0.0
    transient_attempts: int = 1
    timeout: float = 0.0
    noise: float = 0.0
    noise_cycles: int = 1
    permanent: Tuple[str, ...] = ()
    kill: Tuple[str, ...] = ()
    kill_once: Tuple[str, ...] = ()
    stall: Tuple[Tuple[str, float], ...] = ()

    _PARSERS = {
        "seed": int,
        "transient": float,
        "transient_attempts": int,
        "timeout": float,
        "noise": float,
        "noise_cycles": int,
        "permanent": _parse_uids,
        "kill": _parse_uids,
        "kill_once": _parse_uids,
    }

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``key=value,key=value`` spec string."""
        values: Dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(
                    f"fault spec item {item!r} is not key=value"
                )
            if key == "stall":
                values["stall"] = tuple(
                    sorted(_parse_stalls(value).items())
                )
            elif key in cls._PARSERS:
                values[key] = cls._PARSERS[key](value)
            else:
                raise ValueError(
                    f"unknown fault spec key {key!r} "
                    f"(known: {', '.join(sorted(cls._PARSERS))}, stall)"
                )
        return cls(**values)

    # -- deterministic decisions ---------------------------------------

    def _roll(self, kind: str, key: str) -> float:
        """A stable pseudo-random draw in [0, 1) for (seed, kind, key)."""
        digest = hashlib.sha256(
            f"{self.seed}:{kind}:{key}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def transient_fault(self, key: str) -> Optional[type]:
        """The transient error class striking *key*, or ``None``."""
        if self.timeout and self._roll("timeout", key) < self.timeout:
            return _measure.BackendTimeout
        if self.transient and self._roll("transient", key) < self.transient:
            return _measure.TransientBackendError
        return None

    def noisy(self, key: str) -> int:
        """Cycle perturbation for *key* (0 = no noise)."""
        if not self.noise or self._roll("noise", key) >= self.noise:
            return 0
        return 1 + int(
            self._roll("noise_cycles", key) * self.noise_cycles
        ) % max(1, self.noise_cycles)

    def permanent_fault(self, code: Sequence) -> Optional[str]:
        """The listed uid *code* consists solely of, or ``None``.

        Content-based (not tag-based) so the decision survives the
        executor's cross-tag deduplication — see the module docstring.
        """
        if not self.permanent or not code:
            return None
        uids = {instruction.form.uid for instruction in code}
        if len(uids) == 1:
            (uid,) = uids
            if uid in self.permanent:
                return uid
        return None

    def should_kill(self, uid: str, respawned: bool) -> bool:
        """Whether a sweep worker about to characterize *uid* crashes."""
        if uid in self.kill:
            return True
        return uid in self.kill_once and not respawned

    def stall_seconds(self, uid: str, respawned: bool) -> float:
        """How long a worker sleeps before characterizing *uid*."""
        if respawned:
            return 0.0
        return dict(self.stall).get(uid, 0.0)


def _content_key(code: Sequence, init) -> str:
    """The measurement-content identity fault decisions are keyed by —
    matches :func:`repro.core.cache.measurement_key`'s notion of content
    (form uid + concrete operands + init), minus uarch/config/salt."""
    parts = [f"{instruction.form.uid}|{instruction}" for instruction in code]
    if init:
        items = init if isinstance(init, tuple) else tuple(sorted(init.items()))
        parts.append(repr(items))
    return ";".join(parts)


class FaultyBackend:
    """A measurement backend wrapper that injects planned faults.

    Wraps any backend implementing the
    :class:`~repro.measure.backend.MeasurementBackend` protocol; every
    attribute other than the measurement entry points delegates to the
    wrapped backend, so statistics, configuration, and ``supports``
    behave exactly as without faults.

    Transient faults are **attempt-bounded**: the wrapper counts how
    often each measurement content was dispatched and stops injecting
    after :attr:`FaultPlan.transient_attempts` strikes, so an executor
    whose retry budget exceeds the fault budget recovers bit-identical
    results — the property the chaos tests pin.
    """

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        respawned: bool = False,
    ):
        self.inner = inner
        self.plan = plan
        self.respawned = respawned
        #: Dispatch count per measurement content (for attempt-bounded
        #: transient faults).
        self._attempts: Dict[str, int] = {}
        #: Injection counters, for tests and curiosity.
        self.faults_injected = 0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    # -- fault core ----------------------------------------------------

    def _fault_for(self, key: str, tag: str, code) -> Optional[Exception]:
        """The exception to inject for one dispatch, or ``None``."""
        permanent_uid = self.plan.permanent_fault(code)
        if permanent_uid is not None:
            self.faults_injected += 1
            return _measure.PermanentBackendError(
                f"injected permanent fault on {permanent_uid}"
                + (f": {tag}" if tag else "")
            )
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        error_class = self.plan.transient_fault(key)
        if (
            error_class is not None
            and attempt < self.plan.transient_attempts
        ):
            self.faults_injected += 1
            return error_class(
                f"injected {error_class.__name__} "
                f"(attempt {attempt + 1}): {tag or key[:60]}"
            )
        return None

    def _perturb(self, key: str, counters):
        delta = self.plan.noisy(key)
        if not delta or not isinstance(counters, CounterValues):
            return counters
        self.faults_injected += 1
        return CounterValues(
            cycles=counters.cycles + delta,
            port_uops=dict(counters.port_uops),
            uops=counters.uops,
            instructions=counters.instructions,
            uops_fused=counters.uops_fused,
        )

    # -- measurement protocol ------------------------------------------

    def measure(self, code, init=None):
        key = _content_key(code, init)
        fault = self._fault_for(key, "", code)
        if fault is not None:
            raise fault
        return self._perturb(key, self.inner.measure(code, init))

    def measure_many(self, experiments: Sequence[Experiment]) -> List:
        outcomes: List = []
        for experiment in experiments:
            key = _content_key(experiment.code, experiment.init)
            fault = self._fault_for(key, experiment.tag, experiment.code)
            if fault is not None:
                outcomes.append(
                    ExperimentFailure(
                        fault,
                        key=experiment.content_key(),
                        tag=experiment.tag,
                    )
                )
                continue
            inner_many = getattr(self.inner, "measure_many", None)
            if inner_many is not None:
                outcome = inner_many([experiment])[0]
            else:
                try:
                    outcome = self.inner.measure(
                        list(experiment.code), experiment.init_dict()
                    )
                except Exception as error:
                    outcome = ExperimentFailure(
                        error,
                        key=experiment.content_key(),
                        tag=experiment.tag,
                    )
            if not isinstance(outcome, ExperimentFailure):
                outcome = self._perturb(key, outcome)
            outcomes.append(outcome)
        return outcomes


def maybe_faulty(
    backend,
    spec: Optional[str] = None,
    respawned: bool = False,
):
    """Wrap *backend* in a :class:`FaultyBackend` when a fault spec is
    given explicitly or via ``REPRO_FAULTS``; otherwise return it as-is.
    """
    spec = spec if spec is not None else os.environ.get(FAULTS_ENV)
    if not spec:
        return backend
    return FaultyBackend(backend, FaultPlan.parse(spec), respawned)
