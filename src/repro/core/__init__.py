"""The paper's primary contribution: inference of port usage, latency, and
throughput from automatically generated microbenchmarks.

The algorithms observe the machine only through the
:class:`~repro.measure.backend.MeasurementBackend` protocol (cycle counter
and per-port µop counters), never through the ground-truth tables — exactly
the black-box setting of the paper.

* :mod:`repro.core.blocking` — Section 5.1.1, finding blocking instructions.
* :mod:`repro.core.port_usage` — Algorithm 1.
* :mod:`repro.core.latency` — Section 5.2, per-operand-pair latencies.
* :mod:`repro.core.throughput` — Section 5.3, measured and LP-computed.
* :mod:`repro.core.runner` — full characterization of an ISA on one
  generation.
* :mod:`repro.core.xml_output` — the machine-readable results file
  (Section 6.4).
"""

from repro.core.result import (
    InstructionCharacterization,
    LatencyResult,
    LatencyValue,
    PortUsage,
    ThroughputResult,
)
from repro.core.blocking import BlockingInstructions, find_blocking_instructions
from repro.core.port_usage import infer_port_usage
from repro.core.latency import infer_latency
from repro.core.throughput import (
    compute_throughput_from_port_usage,
    measure_throughput,
)
from repro.core.runner import CharacterizationRunner

__all__ = [
    "InstructionCharacterization",
    "LatencyResult",
    "LatencyValue",
    "PortUsage",
    "ThroughputResult",
    "BlockingInstructions",
    "find_blocking_instructions",
    "infer_port_usage",
    "infer_latency",
    "compute_throughput_from_port_usage",
    "measure_throughput",
    "CharacterizationRunner",
]
