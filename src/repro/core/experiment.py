"""The Experiment IR: declarative microbenchmarks, decoupled from backends.

The inference algorithms of Section 5 used to call ``backend.measure()``
inline, one microbenchmark at a time, which welded benchmark *generation*
to benchmark *evaluation*.  Following the split that PALMED and PMEvo make
explicit, each algorithm is now a **plan**: a generator that yields
:class:`ExperimentBatch` objects (pure descriptions of code to run — no
backend in hand), receives a :class:`ResultMap` for each batch, and finally
*interprets* the measured counters into its result.

    plan            execute              interpret
    ─────►  batch  ────────►  counters  ──────────►  result
            (yield)  (executor)            (return)

The executor between the phases
(:class:`~repro.measure.executor.ExperimentExecutor`) content-hashes
experiments and dedupes identical ``(code, init)`` pairs across algorithms
and across the forms of a sweep shard; any backend — the simulator, the
IACA analyzer, or a future remote service — can execute batches through
the optional ``measure_many`` protocol.

A plan in this module's sense is any generator with the signature

    Generator[ExperimentBatch, ResultMap, T]

where ``T`` is the algorithm's result type.  Plans compose: sequential
phases via ``yield from``, and concurrent single-round phases via
:func:`merge_plans`, which advances several plans in lock-step and merges
their per-round batches into one dispatch.

Contract (enforced by ``repro lint``): experiment content hashes must be
deterministic (RPR101/RPR102 — no clocks, no unseeded randomness, no raw
set iteration here), and plan generators must stay measurement-free
(RPR110) — a plan that calls a backend directly defeats the executor's
cross-algorithm deduplication.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Generator,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.isa.instruction import Instruction
from repro.pipeline.core import CounterValues

T = TypeVar("T")

#: The planning protocol: yield batches, receive result maps, return the
#: interpreted result.
Plan = Generator["ExperimentBatch", "ResultMap", T]


@dataclass(frozen=True)
class Experiment:
    """One microbenchmark: a code sequence plus initial register values.

    Identity (equality/hash) is the measurement content — the instruction
    tuple and the normalized ``init`` assignment.  The ``tag`` is
    bookkeeping for humans (progress displays, debugging) and is excluded
    from comparison, so two algorithms planning the same measurement under
    different tags deduplicate against each other.
    """

    code: Tuple[Instruction, ...]
    init: Optional[Tuple[Tuple[str, int], ...]] = None
    tag: str = field(default="", compare=False)

    @classmethod
    def make(
        cls,
        code: Sequence[Instruction],
        init: Optional[Dict[str, int]] = None,
        tag: str = "",
    ) -> "Experiment":
        """Normalize *code*/*init* exactly like the backends' cache keys
        do (an empty ``init`` is the same measurement as no ``init``)."""
        return cls(
            tuple(code),
            tuple(sorted(init.items())) if init else None,
            tag,
        )

    def init_dict(self) -> Optional[Dict[str, int]]:
        return dict(self.init) if self.init else None

    def content_key(self) -> str:
        """Short stable digest of the measurement content — the handle
        failure messages and retry bookkeeping refer to."""
        import hashlib

        payload = ";".join(
            f"{instruction.form.uid}|{instruction}"
            for instruction in self.code
        )
        if self.init:
            payload += f";init={self.init!r}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


@dataclass(frozen=True)
class ExperimentFailure:
    """A captured per-experiment execution error.

    Batch execution completes the remaining experiments instead of
    aborting; the original exception is re-raised only when an interpreter
    actually *reads* the failed experiment, preserving the exception type
    (and therefore the callers' existing ``except`` clauses).  ``key``,
    ``tag`` and ``attempts`` carry the experiment's content digest and the
    executor's retry count into the re-raised message, so a quarantined
    form's report says *which* measurement died and how hard it was tried.
    """

    error: Exception = field(compare=False)
    key: str = ""
    tag: str = field(default="", compare=False)
    attempts: int = 1

    def reraise(self) -> None:
        context = (
            f"experiment {self.key or '<unkeyed>'}"
            + (f" [{self.tag}]" if self.tag else "")
            + f" failed after {self.attempts} attempt(s)"
        )
        try:
            augmented = type(self.error)(f"{self.error} ({context})")
        except Exception:
            # Exception types with non-message constructors: annotate the
            # original instead of risking a mis-constructed clone.
            self.error.add_note(context)
            raise self.error
        augmented.experiment_tag = self.tag
        augmented.experiment_key = self.key
        augmented.attempts = self.attempts
        raise augmented from self.error


class ExperimentBatch:
    """An ordered collection of experiments planned for one dispatch."""

    def __init__(self, experiments: Iterable[Experiment] = ()):
        self.experiments: List[Experiment] = list(experiments)

    def add(
        self,
        code: Sequence[Instruction],
        init: Optional[Dict[str, int]] = None,
        tag: str = "",
    ) -> Experiment:
        """Plan one experiment; returns the handle interpreters use to
        look its counters up in the :class:`ResultMap`."""
        experiment = Experiment.make(code, init, tag)
        self.experiments.append(experiment)
        return experiment

    def extend(self, other: "ExperimentBatch") -> None:
        self.experiments.extend(other.experiments)

    def __iter__(self) -> Iterator[Experiment]:
        return iter(self.experiments)

    def __len__(self) -> int:
        return len(self.experiments)

    def __bool__(self) -> bool:
        return bool(self.experiments)


class ResultMap:
    """Measured counters per experiment, keyed by experiment content.

    Two :class:`Experiment` objects with the same ``(code, init)`` are the
    same key, so an interpreter's handle finds the counters even when the
    executor actually measured a deduplicated twin planned elsewhere.
    """

    def __init__(self) -> None:
        self._values: Dict[Experiment, Any] = {}

    def put(self, experiment: Experiment, outcome: Any) -> None:
        self._values[experiment] = outcome

    def __getitem__(self, experiment: Experiment) -> CounterValues:
        outcome = self._values[experiment]
        if isinstance(outcome, ExperimentFailure):
            outcome.reraise()
        return outcome

    def get(self, experiment: Experiment) -> Optional[CounterValues]:
        outcome = self._values.get(experiment)
        if isinstance(outcome, ExperimentFailure):
            return None
        return outcome

    def failed(self, experiment: Experiment) -> bool:
        return isinstance(self._values.get(experiment), ExperimentFailure)

    def __contains__(self, experiment: Experiment) -> bool:
        return experiment in self._values

    def __len__(self) -> int:
        return len(self._values)


def merge_plans(plans: Sequence[Plan]) -> Plan:
    """Advance several plans in lock-step, merging per-round batches.

    Each round gathers the next batch of every still-active plan into one
    merged dispatch; all plans that contributed receive the same (shared)
    result map, so a single execution serves every sub-plan.  Returns the
    plans' results in input order.  This is how one form's isolation,
    latency, and throughput measurements become a single batch even though
    the three algorithms are written independently.
    """
    plans = list(plans)
    active: Dict[int, Plan] = dict(enumerate(plans))
    inbox: Dict[int, Optional[ResultMap]] = {}
    primed: set = set()
    results: List[Any] = [None] * len(plans)
    while active:
        requests: Dict[int, ExperimentBatch] = {}
        for index, plan in list(active.items()):
            try:
                if index in primed:
                    batch = plan.send(inbox.get(index))
                else:
                    batch = next(plan)
                    primed.add(index)
            except StopIteration as stop:
                results[index] = stop.value
                del active[index]
                continue
            requests[index] = batch
        if not requests:
            continue
        merged = ExperimentBatch()
        for batch in requests.values():
            merged.extend(batch)
        result_map = yield merged
        for index in requests:
            inbox[index] = result_map
    return results
