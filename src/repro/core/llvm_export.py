"""Export characterizations as an LLVM-style scheduling model.

The paper motivates its machine-readable output with downstream consumers:
"optimizing compilers, such as LLVM and GCC, can profit from detailed
instruction characterizations" — and indeed the LLVM scheduling models for
SNB/HSW/BDW/SKL cited in Section 2.1 encode exactly the data this tool
measures.  :func:`results_to_tablegen` renders measured characterizations
in TableGen-like syntax: one ``ProcResource`` per execution port, one
``SchedWriteRes`` per instruction variant with its port list, µop count,
and (scalar, worst-pair) latency.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

from repro.core.result import InstructionCharacterization
from repro.uarch.model import UarchConfig


def _resource_name(uarch: UarchConfig, port: int) -> str:
    return f"{uarch.name}Port{port}"


def _group_name(uarch: UarchConfig, ports) -> str:
    return f"{uarch.name}Port{''.join(str(p) for p in sorted(ports))}"


def results_to_tablegen(
    results: Mapping[str, InstructionCharacterization],
    uarch: UarchConfig,
) -> str:
    """Render one generation's results as a TableGen-like model."""
    lines: List[str] = [
        f"// Scheduling model for {uarch.full_name} "
        f"({uarch.processor}), generated from measurements.",
        f'def {uarch.name}Model : SchedMachineModel {{',
        f"  let IssueWidth = {uarch.issue_width};",
        f"  let MicroOpBufferSize = {uarch.rob_size};",
        f"  let LoadLatency = {uarch.load_latency};",
        "}",
        "",
    ]
    for port in uarch.ports:
        lines.append(
            f'def {_resource_name(uarch, port)} : '
            f'ProcResource<1>;'
        )
    # Port groups used by any instruction.
    groups = sorted(
        {
            tuple(sorted(pc))
            for outcome in results.values()
            if outcome.port_usage is not None
            for pc in outcome.port_usage.counts
            if len(pc) > 1
        }
    )
    for group in groups:
        members = ", ".join(_resource_name(uarch, p) for p in group)
        lines.append(
            f"def {_group_name(uarch, group)} : "
            f"ProcResGroup<[{members}]>;"
        )
    lines.append("")

    for uid in sorted(results):
        outcome = results[uid]
        if outcome.port_usage is None:
            continue
        resources = []
        cycle_counts = []
        for pc, count in sorted(
            outcome.port_usage.counts.items(), key=lambda kv: sorted(kv[0])
        ):
            name = (
                _resource_name(uarch, next(iter(pc)))
                if len(pc) == 1
                else _group_name(uarch, pc)
            )
            resources.append(name)
            cycle_counts.append(str(count))
        latency = _scalar_latency(outcome)
        uops = max(1, round(outcome.uop_count))
        lines.append(
            f"def Write{uid} : SchedWriteRes<[{', '.join(resources)}]> {{"
        )
        if cycle_counts and any(c != "1" for c in cycle_counts):
            lines.append(
                f"  let ResourceCycles = [{', '.join(cycle_counts)}];"
            )
        if latency is not None:
            lines.append(f"  let Latency = {latency};")
        lines.append(f"  let NumMicroOps = {uops};")
        lines.append("}")
    return "\n".join(lines) + "\n"


def _scalar_latency(
    outcome: InstructionCharacterization,
) -> Optional[int]:
    """LLVM models carry a single latency: the worst measured pair."""
    if outcome.latency is None or not outcome.latency.pairs:
        return None
    return max(1, round(outcome.latency.max_latency()))


def write_tablegen(results, uarch, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(results_to_tablegen(results, uarch))
