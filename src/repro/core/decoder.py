"""Decoder-class characterization (the paper's future work).

The conclusions mention characterizing "whether instructions use the simple
decoder, the complex decoder, or the Microcode-ROM".  The legacy decode
pipe of Intel Core CPUs has three simple decoders (one µop each), one
complex decoder (up to four µops), and the MSROM for longer instructions,
which takes over the front end entirely.

Characterization strategy (with the decoder model enabled on the simulated
hardware; on a real machine this is just the machine):

* the µop count per instruction comes from the standard isolation run;
* the *decode penalty* is the extra cost of a back-to-back stream of the
  instruction relative to an ideal front end — a stream of N multi-µop
  instructions can only decode one per cycle, and MSROM instructions
  stall the decoders for ceil(µops/4) cycles each;
* class = simple (1 µop), complex (2-4 µops, order-sensitive decode),
  MSROM (>4 µops, large penalty).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.codegen import independent_sequence, measure_isolated
from repro.isa.database import InstructionDatabase
from repro.isa.instruction import InstructionForm
from repro.measure.backend import HardwareBackend, MeasurementConfig

DECODER_SIMPLE = "simple"
DECODER_COMPLEX = "complex"
DECODER_MSROM = "msrom"


@dataclass
class DecoderCharacterization:
    form_uid: str
    uop_count: int
    decode_penalty: float  # extra cycles/instr vs the ideal front end
    decoder_class: str

    def __str__(self) -> str:
        return (
            f"{self.form_uid}: {self.uop_count} µops, "
            f"decode penalty {self.decode_penalty:+.2f} -> "
            f"{self.decoder_class} decoder"
        )


def decoder_backend(uarch) -> HardwareBackend:
    """A hardware backend whose core models the legacy decoders."""
    from repro.pipeline.core import build_core

    backend = HardwareBackend(uarch, MeasurementConfig())
    backend._core = build_core(uarch, enable_decoder_model=True)
    return backend


def characterize_decoder(
    form: InstructionForm,
    decode_hw: HardwareBackend,
    ideal_hw: HardwareBackend,
) -> DecoderCharacterization:
    """Classify which decoder *form* uses.

    Args:
        decode_hw: backend with the decoder model enabled.
        ideal_hw: backend with an ideal front end (the mainline setting),
            used as the baseline that isolates the decode cost.
    """
    uops = round(measure_isolated(form, ideal_hw).uops)
    stream = independent_sequence(form, 8)
    with_decoders = decode_hw.measure(stream).cycles / len(stream)
    ideal = ideal_hw.measure(stream).cycles / len(stream)
    penalty = with_decoders - ideal

    if uops > 4:
        decoder_class = DECODER_MSROM
    elif uops > 1:
        decoder_class = DECODER_COMPLEX
    else:
        decoder_class = DECODER_SIMPLE
    return DecoderCharacterization(
        form_uid=form.uid,
        uop_count=uops,
        decode_penalty=penalty,
        decoder_class=decoder_class,
    )


def decoder_report(
    database: InstructionDatabase,
    uarch,
    uids: List[str],
) -> List[DecoderCharacterization]:
    """Characterize the decoder class for a list of forms."""
    decode_hw = decoder_backend(uarch)
    ideal_hw = HardwareBackend(uarch)
    results = []
    for uid in uids:
        form = database.by_uid(uid)
        if not ideal_hw.supports(form):
            continue
        results.append(characterize_decoder(form, decode_hw, ideal_hw))
    return results
