"""Parallel characterization sweeps: cached, distributed, incremental.

:class:`CharacterizationRunner` walks the catalog serially; at the scale
of the paper's tool (thousands of variants per generation, Section 6)
that leaves both cores and determinism on the table.  The
:class:`SweepEngine` exploits that every characterization is an
independent pure function of (form, microarchitecture, measurement
configuration).  Three execution modes share one result contract —
results are bit-identical to a serial run regardless of mode, job
count, cache state, or completion order:

* **serial** (``jobs=1``): in-process, optionally on an injected
  backend — the debugging path and the differential-test reference;
* **queue** (``jobs>1``, the default parallel mode): the pending forms
  become content-keyed :class:`~repro.core.workqueue.WorkUnit` entries
  in a persistent, flock-guarded work queue next to the result cache.
  Worker processes — spawned by this engine, or by independent
  ``repro sweep --drain`` invocations on machines sharing the cache
  directory — *lease* units, characterize them, write the result
  through the shared cache, and *ack*.  A worker that dies or stalls
  lets its lease expire; any surviving worker **steals** the unit,
  subsuming the static path's watchdog/respawn machinery.  A unit that
  reliably kills workers is poisoned after
  :data:`~repro.core.workqueue.MAX_UNIT_LEASES` leases and quarantined;
* **static** (``jobs>1`` with ``mode="static"`` or
  ``REPRO_SWEEP_MODE=static``): the original fork-join sharding — uids
  are dealt cost-ordered round-robin into ``jobs`` shards
  (:func:`shard_uids`, :func:`estimate_cost`), each characterized by
  one supervised worker with watchdog/respawn (kept as the
  bit-identity reference for the queue path).

*Incremental re-characterization* (``incremental=True`` /
``--incremental``): every cached sweep records a per-form *input
fingerprint* (:func:`~repro.core.cache.form_fingerprint` — catalog
entry, ground-truth µop tables, uarch knobs, measurement protocol,
salt) in a :class:`~repro.core.cache.SweepManifest`.  An incremental
sweep diffs current fingerprints against the manifest and re-measures
exactly the forms whose inputs changed, serving everything else from
the cache (counted as ``incremental_skips``).  The manifest doubles as
the root set for ``repro cache gc``
(:func:`~repro.core.cache.collect_garbage`).

Fault tolerance (see ``docs/robustness.md``): a form whose plan
ultimately fails — after the executor's transient-retry budget — is
**quarantined** as a :class:`~repro.core.runner.FormFailure` instead of
aborting the sweep; quarantined forms are never written to the cache,
so ``sweep --resume`` re-measures only the missing and failed forms.
The chaos harness (:mod:`repro.measure.faults`, ``REPRO_FAULTS`` /
``--fault-spec``) injects deterministic failures at every one of these
seams; nothing is injected unless explicitly requested.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.cache import (
    MeasurementMemo,
    ResultCache,
    SweepManifest,
    cache_key,
    catalog_context_digest,
    form_fingerprint,
)
from repro.core.workqueue import (
    LeaseHeartbeat,
    QueueCounters,
    WorkQueue,
    WorkUnit,
)
from repro.core.result import (
    InstructionCharacterization,
    decode_characterization,
    encode_characterization,
)
from repro.core.runner import (
    CharacterizationRunner,
    FormFailure,
    RunStatistics,
)
from repro.isa.database import InstructionDatabase, load_default_database
from repro.isa.instruction import InstructionForm
from repro.measure.backend import (
    BackendStats,
    HardwareBackend,
    MeasurementConfig,
)
from repro.measure.executor import ExecutorStats
from repro.measure.faults import FaultPlan, maybe_faulty
from repro.uarch.configs import get_uarch
from repro.uarch.model import UarchConfig

#: Exit code of a worker killed by an injected ``kill`` fault — chosen
#: distinctive so a chaos log reads unambiguously.
KILL_EXIT_CODE = 23

#: Environment variable selecting the parallel sweep mode
#: (``queue``, the default, or ``static``).
SWEEP_MODE_ENV = "REPRO_SWEEP_MODE"

#: Default lease window for queue-mode work units (seconds).  Generous
#: relative to one form's characterization so healthy workers are never
#: preempted; the coordinating engine force-expires the leases of
#: workers it *knows* died, so only cross-machine losses wait this out.
DEFAULT_LEASE_SECONDS = 60.0


def estimate_cost(form: InstructionForm, uarch: UarchConfig) -> int:
    """Relative characterization cost of *form* (dimensionless).

    Orders the static path's shard deal stragglers-first.  The dominant
    costs in the simulated measurement are the non-pipelined divider
    (value-dependent forms are measured once per value class, Section
    5.2.5, and each occupancy run is long) and the µop count (more µops
    mean more ports, hence more Algorithm 1 rounds); forms without a
    ground-truth entry are skipped almost for free.
    """
    from repro.uarch.tables import build_entry

    try:
        entry = build_entry(form, uarch)
    except KeyError:
        return 1
    if entry is None:
        return 0
    cost = len(entry.uops) + len(form.operands)
    if entry.divider_class is not None:
        cost += 64
    if entry.same_reg_uops is not None:
        cost += 2
    return cost


def shard_uids(
    uids: List[str],
    n_shards: int,
    costs: Optional[Dict[str, int]] = None,
) -> List[List[str]]:
    """Deal uids round-robin into at most *n_shards* chunks.

    Without *costs* the uids are dealt in sorted order: round-robin
    (rather than contiguous slices) spreads the uid-adjacent forms of
    one mnemonic family — which tend to have similar characterization
    cost — across shards, balancing worker runtimes.  With *costs* (a
    ``uid -> relative cost`` map, see :func:`estimate_cost`) the deal
    is most-expensive-first with uid tie-breaks: the stragglers land in
    distinct shards *and* at the front of each shard's work list, so no
    worker starts a divider form last.  Either way the partition is a
    deterministic function of the inputs.  Empty shards are dropped.
    """
    n_shards = max(1, n_shards)
    if costs is None:
        ordered = sorted(uids)
    else:
        ordered = sorted(
            uids, key=lambda uid: (-costs.get(uid, 0), uid)
        )
    shards = [ordered[i::n_shards] for i in range(n_shards)]
    return [shard for shard in shards if shard]


#: Worker payload: (uarch name, measurement config, shard of form uids,
#: measurement-memo directory or None, memo salt, fault spec or None,
#: whether this worker is a respawn, shard index).
_ShardPayload = Tuple[
    str, MeasurementConfig, List[str], Optional[str], Optional[str],
    Optional[str], bool, int,
]


def _shard_worker(payload: _ShardPayload, out_queue) -> None:
    """Characterize one shard in a worker process, streaming results.

    Module-level so it is picklable under every multiprocessing start
    method.  The backend (and its blocking-instruction discovery) is
    built from scratch inside the worker — but when the sweep has a
    measurement memo, the worker attaches to the shared memo file, so
    the blocking/chain sub-measurements the parent pre-warmed (and
    anything previous sweeps measured) are decoded instead of
    re-simulated.  Each finished form is put on *out_queue* immediately
    (one message per uid), so the parent can salvage everything a dying
    worker completed; a final ``done`` message carries the statistics.
    """
    (
        uarch_name, config, uids, memo_dir, memo_salt,
        fault_spec, respawned, shard_id,
    ) = payload
    plan = FaultPlan.parse(fault_spec) if fault_spec else None
    database = load_default_database()
    memo = (
        MeasurementMemo(memo_dir, salt=memo_salt)
        if memo_dir is not None else None
    )
    backend = HardwareBackend(get_uarch(uarch_name), config, memo=memo)
    backend = maybe_faulty(backend, fault_spec, respawned=respawned)
    runner = CharacterizationRunner(backend, database)
    for uid in uids:
        if plan is not None:
            stall = plan.stall_seconds(uid, respawned)
            if stall:
                time.sleep(stall)
            if plan.should_kill(uid, respawned):
                # A hard crash (no interpreter cleanup) — but flush the
                # queue feeder first so already-reported results reach
                # the parent as complete messages rather than a torn
                # pipe write the supervisor could never parse.
                out_queue.close()
                out_queue.join_thread()
                os._exit(KILL_EXIT_CODE)
        outcome = runner.characterize_resilient(database.by_uid(uid))
        if isinstance(outcome, FormFailure):
            out_queue.put((
                "failure", shard_id, uid,
                dataclasses.replace(outcome, shard=shard_id),
            ))
        else:
            out_queue.put((
                "result", shard_id, uid,
                encode_characterization(outcome)
                if outcome is not None else None,
            ))
    runner.statistics.fold_snapshot(
        BackendStats.zero(), backend.stats_tuple()
    )
    runner.statistics.fold_snapshot(
        ExecutorStats.zero(), runner.executor.stats_tuple()
    )
    out_queue.put(("done", shard_id, runner.statistics))


#: Queue-drainer payload: (uarch name, measurement config, queue/store
#: directory, salt, memo directory or None, memo salt, fault spec or
#: None, lease window in seconds, worker id).
_DrainPayload = Tuple[
    str, MeasurementConfig, str, str, Optional[str], Optional[str],
    Optional[str], float, int,
]


def _drain_worker(payload: _DrainPayload, out_queue) -> None:
    """Drain the shared work queue from a worker process.

    The queue-mode sibling of :func:`_shard_worker`: instead of a
    pre-dealt uid list, the worker leases units from the persistent
    :class:`~repro.core.workqueue.WorkQueue` one at a time until the
    queue is drained, so a slow form never idles the rest of the fleet.
    Results are written through the shared result cache *before* the
    ack — a worker dying between the two leaves the unit leased, and
    whoever steals it re-measures (deterministically identical) bytes —
    and additionally streamed to the coordinating engine (when there is
    one) for progress reporting.

    Chaos faults map onto queue semantics: a ``kill``/``kill_once``/
    ``stall`` fault considers a unit "respawned" when it was leased
    more than once, i.e. the first lease crashed and this worker stole
    the unit.
    """
    (
        uarch_name, config, store_dir, salt, memo_dir, memo_salt,
        fault_spec, lease_seconds, worker_id,
    ) = payload
    plan = FaultPlan.parse(fault_spec) if fault_spec else None
    database = load_default_database()
    memo = (
        MeasurementMemo(memo_dir, salt=memo_salt)
        if memo_dir is not None else None
    )
    backend = HardwareBackend(get_uarch(uarch_name), config, memo=memo)
    backend = maybe_faulty(backend, fault_spec)
    runner = CharacterizationRunner(backend, database)
    cache = ResultCache(store_dir, salt=salt)
    work = WorkQueue(store_dir, uarch_name, salt=salt)
    owner = f"{os.getpid()}.{worker_id}"
    heartbeat = LeaseHeartbeat(
        work, owner, lease_seconds=lease_seconds
    ).start()
    try:
        while True:
            units = work.lease(
                owner, limit=1, lease_seconds=lease_seconds
            )
            if not units:
                if work.drained:
                    break
                # Other drainers hold live leases; poll until they
                # finish (or their leases expire and become stealable).
                time.sleep(SweepEngine.POLL_INTERVAL)
                continue
            for unit in units:
                heartbeat.watch(unit)
                try:
                    respawned = unit.leases > 1
                    if plan is not None:
                        stall = plan.stall_seconds(unit.uid, respawned)
                        if stall:
                            time.sleep(stall)
                        if plan.should_kill(unit.uid, respawned):
                            out_queue.close()
                            out_queue.join_thread()
                            os._exit(KILL_EXIT_CODE)
                    outcome = runner.characterize_resilient(
                        database.by_uid(unit.uid)
                    )
                    if isinstance(outcome, FormFailure):
                        failure = dataclasses.replace(
                            outcome, shard=worker_id
                        )
                        work.fail(unit.key, owner, failure.as_dict())
                        out_queue.put(
                            ("failure", worker_id, unit.uid, failure)
                        )
                        continue
                    data = (
                        encode_characterization(outcome)
                        if outcome is not None else None
                    )
                    verdict = work.deposit(
                        unit.key, owner, unit.fence,
                        lambda: cache.put(
                            unit.key, unit.uid, uarch_name, data,
                            fence=unit.fence,
                        ),
                    )
                    if verdict in ("acked", "duplicate"):
                        out_queue.put(
                            ("result", worker_id, unit.uid, data)
                        )
                finally:
                    heartbeat.unwatch(unit.key)
    finally:
        heartbeat.stop()
    # Renewals and zombie rejections live in the shared queue counters
    # (the coordinator folds the delta); folding them here too would
    # double-count.  Lock retries are per-process, so they do fold.
    runner.statistics.lock_retries += (
        cache.lock_retries + work.lock_retries
    )
    runner.statistics.fold_snapshot(
        BackendStats.zero(), backend.stats_tuple()
    )
    runner.statistics.fold_snapshot(
        ExecutorStats.zero(), runner.executor.stats_tuple()
    )
    out_queue.put(("done", worker_id, runner.statistics))


class _ShardState:
    """The parent's view of one supervised worker shard.

    Each shard gets its **own** queue: a worker dying mid-``put`` can
    tear only its own channel, never stall a sibling shard's reporting
    — and a respawn starts on a fresh queue, so a torn pipe from the
    first incarnation cannot confuse the second.
    """

    def __init__(self, shard_id: int, uids: List[str]):
        self.shard_id = shard_id
        self.remaining = set(uids)
        self.process = None
        self.queue = None
        self.respawned = False
        self.done = False
        self.last_progress = time.monotonic()
        #: The watchdog only arms once this incarnation streamed its
        #: first form: worker startup (backend construction plus the
        #: blocking-instruction discovery, folded into the first form)
        #: is catalog-sized work, not form-sized, and must not be
        #: mistaken for a wedged measurement.
        self.armed = False


class _DrainerState:
    """The coordinating engine's view of one queue-mode worker."""

    def __init__(self, worker_id: int, owner: str):
        self.worker_id = worker_id
        self.owner = owner
        self.process = None
        self.queue = None
        self.done = False
        self.dead = False


class SweepEngine:
    """Distributed, cached, fault-tolerant characterization of many forms.

    ``failures`` maps quarantined form uids to their
    :class:`~repro.core.runner.FormFailure` records after a sweep; a
    fully healthy run leaves it empty.

    ``mode`` selects the parallel execution path for ``jobs > 1``:
    ``"queue"`` (default — the shared work queue any drainer can join)
    or ``"static"`` (the fork-join sharding).  ``None`` consults
    ``$REPRO_SWEEP_MODE`` and falls back to ``"queue"``.
    """

    #: How often the supervisor wakes to check worker health (seconds).
    POLL_INTERVAL = 0.2

    def __init__(
        self,
        uarch: Union[str, UarchConfig],
        database: Optional[InstructionDatabase] = None,
        config: Optional[MeasurementConfig] = None,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        backend: Optional[HardwareBackend] = None,
        measure_memo: Optional[MeasurementMemo] = None,
        fault_spec: Optional[str] = None,
        shard_timeout: Optional[float] = None,
        mode: Optional[str] = None,
        lease_timeout: Optional[float] = None,
        incremental: bool = False,
    ):
        self.uarch = get_uarch(uarch) if isinstance(uarch, str) else uarch
        self.database = database or load_default_database()
        self.config = config or (
            backend.config if backend is not None else MeasurementConfig()
        )
        self.jobs = max(1, jobs)
        self.cache = cache
        # The raw-measurement memo rides along with the result cache by
        # default (same directory, same salt): a cached sweep implies the
        # user wants persistence, and the memo is what makes the *cold*
        # part of a sweep cheap across shards and runs.
        if measure_memo is None and cache is not None:
            measure_memo = MeasurementMemo(cache.cache_dir, salt=cache.salt)
        self.measure_memo = measure_memo
        # Chaos harness: never active unless a spec is given explicitly
        # or via REPRO_FAULTS (maybe_faulty re-checks the environment so
        # worker processes see the same spec through the payload).
        from repro.measure.faults import FAULTS_ENV

        self.fault_spec = (
            fault_spec if fault_spec is not None
            else os.environ.get(FAULTS_ENV)
        )
        #: Watchdog (static mode): a shard making no progress for this
        #: many seconds is terminated and treated like a crashed worker
        #: (None disables).  Queue mode subsumes it with lease expiry.
        self.shard_timeout = shard_timeout
        mode = mode or os.environ.get(SWEEP_MODE_ENV) or "queue"
        if mode not in ("queue", "static"):
            raise ValueError(
                f"unknown sweep mode {mode!r} (queue or static)"
            )
        self.mode = mode
        #: Queue-mode lease window; an expired lease makes the unit
        #: stealable by any other drainer.
        self.lease_timeout = (
            lease_timeout if lease_timeout is not None
            else DEFAULT_LEASE_SECONDS
        )
        #: Incremental re-characterization: diff per-form input
        #: fingerprints against the sweep manifest and re-measure only
        #: changed forms (needs a cache; a no-cache engine ignores it).
        self.incremental = incremental
        self.statistics = RunStatistics()
        #: Quarantined forms: uid -> FormFailure.
        self.failures: Dict[str, FormFailure] = {}
        self._backend = backend
        self._runner: Optional[CharacterizationRunner] = None
        #: Cached payloads that failed to decode (counted separately
        #: from line-level corruption, which the cache itself tracks).
        self._decode_corrupt = 0
        self._manifest: Optional[SweepManifest] = None
        #: Memoized per-form input fingerprints (+ the catalog context
        #: digest they embed) — computing them walks the µop tables.
        self._fingerprint_memo: Dict[str, str] = {}
        self._context_digest: Optional[str] = None

    # ------------------------------------------------------------------

    @property
    def backend(self) -> HardwareBackend:
        """The in-process backend (built lazily: a fully warm sweep never
        needs one).  Wrapped in the chaos harness when a fault spec is
        active; an explicitly injected backend is never wrapped."""
        if self._backend is None:
            self._backend = maybe_faulty(
                HardwareBackend(
                    self.uarch, self.config, memo=self.measure_memo
                ),
                self.fault_spec,
            )
        return self._backend

    @property
    def runner(self) -> CharacterizationRunner:
        if self._runner is None:
            self._runner = CharacterizationRunner(
                self.backend, self.database
            )
        return self._runner

    def supported_forms(self) -> List[InstructionForm]:
        return self.runner.supported_forms()

    # ------------------------------------------------------------------

    def sweep(
        self,
        forms: Optional[Iterable[InstructionForm]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> Dict[str, InstructionCharacterization]:
        """Characterize *forms* (default: the whole catalog).

        Returns results keyed by form uid, in stable (sorted) uid order
        regardless of cache state, job count, or shard completion order —
        and therefore identical to a serial
        :meth:`CharacterizationRunner.characterize_all` run over the same
        forms.  Forms that could not be characterized despite retries are
        absent from the result and recorded in :attr:`failures`.
        """
        requested = list(forms if forms is not None else self.database)
        requested.sort(key=lambda form: form.uid)

        backend_base = (
            self._backend.stats_tuple()
            if self._backend is not None else BackendStats.zero()
        )
        executor_base = (
            self._runner.executor.stats_tuple()
            if self._runner is not None else ExecutorStats.zero()
        )
        results: Dict[str, InstructionCharacterization] = {}
        pending = self._resolve_pending(requested, results)

        if pending:
            if self.cache is not None:
                self.statistics.cache_misses += len(pending)
            if self.jobs == 1:
                self._sweep_serial(pending, results, progress)
            elif self.mode == "static":
                self._sweep_sharded(pending, results, progress)
            else:
                self._sweep_queue(pending, results, progress)
        self._record_manifest(requested)
        if self.cache is not None:
            self.statistics.cache_invalidations = self.cache.invalidations
        corrupt = self._decode_corrupt
        torn = 0
        lock_timeouts = 0
        lock_retries = self.statistics.lock_retries
        if self.cache is not None:
            corrupt += self.cache.corrupt_lines
            torn += self.cache.torn_tails
            lock_timeouts += self.cache.lock_timeouts
            lock_retries += self.cache.lock_retries
        if self.measure_memo is not None:
            corrupt += self.measure_memo.corrupt_lines
            torn += self.measure_memo.torn_tails
            lock_timeouts += self.measure_memo.lock_timeouts
            lock_retries += self.measure_memo.lock_retries
        self.statistics.corrupt_lines = corrupt
        self.statistics.torn_tails = torn
        self.statistics.lock_timeouts = lock_timeouts
        self.statistics.lock_retries = lock_retries
        self.statistics.forms_failed = len(self.failures)
        if self._backend is not None:
            # In-process measurement work this sweep performed (serial
            # shards and the sharded path's memo pre-warm).
            self.statistics.fold_snapshot(
                backend_base, self._backend.stats_tuple()
            )
        if self._runner is not None:
            self.statistics.fold_snapshot(
                executor_base, self._runner.executor.stats_tuple()
            )

        return {uid: results[uid] for uid in sorted(results)}

    # ------------------------------------------------------------------

    def _cache_lookup(self, form: InstructionForm):
        """Stored data, ``None`` for a cached skip, or the miss sentinel."""
        if self.cache is None:
            return ResultCache.miss()
        key = self.cache.key_for(
            form.uid, self.uarch.name, self.config
        )
        return self.cache.get(key, self.uarch.name)

    def _cache_store(
        self, uid: str, data, fence: Optional[int] = None
    ) -> None:
        if self.cache is None:
            return
        key = self.cache.key_for(uid, self.uarch.name, self.config)
        self.cache.put(key, uid, self.uarch.name, data, fence=fence)

    # -- incremental re-characterization -------------------------------

    def _fingerprint(self, form: InstructionForm) -> str:
        """This form's input fingerprint (memoized; see
        :func:`~repro.core.cache.form_fingerprint`)."""
        fingerprint = self._fingerprint_memo.get(form.uid)
        if fingerprint is None:
            if self._context_digest is None:
                self._context_digest = catalog_context_digest(
                    self.database, self.uarch
                )
            fingerprint = form_fingerprint(
                form,
                self.uarch,
                self.config,
                salt=self.cache.salt if self.cache is not None else None,
                context=self._context_digest,
            )
            self._fingerprint_memo[form.uid] = fingerprint
        return fingerprint

    def _get_manifest(self) -> SweepManifest:
        if self._manifest is None:
            self._manifest = SweepManifest(
                self.cache.cache_dir, salt=self.cache.salt
            )
        return self._manifest

    def _resolve_pending(
        self,
        requested: List[InstructionForm],
        results: Dict[str, InstructionCharacterization],
    ) -> List[InstructionForm]:
        """Split *requested* into cache-served *results* and the pending
        work list.

        A form is pending when the cache misses — or, in incremental
        mode, when its input fingerprint differs from the one the sweep
        manifest recorded (the cached bytes were produced from different
        inputs and must not be served).  Incremental cache hits whose
        fingerprints match are counted as ``incremental_skips``.
        """
        incremental = self.incremental and self.cache is not None
        prior: Dict[str, Dict[str, str]] = {}
        if incremental:
            prior = self._get_manifest().entries_for(
                self.uarch.name, self.config
            )
        pending: List[InstructionForm] = []
        for form in requested:
            stale = False
            if incremental:
                recorded = prior.get(form.uid)
                stale = (
                    recorded is None
                    or recorded.get("fingerprint")
                    != self._fingerprint(form)
                )
            data = self._cache_lookup(form)
            if ResultCache.is_miss(data) or stale:
                pending.append(form)
                continue
            if data is not None:
                try:
                    outcome = decode_characterization(data)
                except (KeyError, TypeError, ValueError):
                    # A malformed payload that survived the cache's
                    # line-level checks: re-measure rather than crash.
                    self._decode_corrupt += 1
                    pending.append(form)
                    continue
                results[form.uid] = outcome
                self.statistics.cache_hits += 1
            else:
                self.statistics.cache_hits += 1
                self.statistics.skipped += 1
            if incremental:
                self.statistics.incremental_skips += 1
        return pending

    def _record_manifest(self, requested: List[InstructionForm]) -> None:
        """Record the input fingerprints of every resolved form.

        Runs after *every* cached sweep (not only incremental ones), so
        a plain sweep establishes the baseline the next ``--incremental``
        run diffs against — and the root set ``repro cache gc`` keeps.
        Quarantined forms are excluded: they were not resolved, and the
        next sweep must re-attempt them.
        """
        if self.cache is None:
            return
        entries: Dict[str, Dict[str, str]] = {}
        for form in requested:
            if form.uid in self.failures:
                continue
            entries[form.uid] = {
                "fingerprint": self._fingerprint(form),
                "key": self.cache.key_for(
                    form.uid, self.uarch.name, self.config
                ),
            }
        if entries:
            self._get_manifest().update(
                self.uarch.name, self.config, entries
            )

    def _sweep_serial(
        self,
        pending: List[InstructionForm],
        results: Dict[str, InstructionCharacterization],
        progress: Optional[Callable[[str], None]],
    ) -> None:
        runner = self.runner
        before = RunStatistics(
            characterized=runner.statistics.characterized,
            skipped=runner.statistics.skipped,
            seconds=runner.statistics.seconds,
        )
        for form in pending:
            outcome = runner.characterize_resilient(form)
            if isinstance(outcome, FormFailure):
                # Quarantined — and deliberately NOT cached, so the next
                # run against this cache re-attempts exactly this form.
                self.failures[form.uid] = outcome
                continue
            if outcome is not None:
                results[form.uid] = outcome
                if progress is not None:
                    progress(outcome.summary())
            self._cache_store(
                form.uid,
                encode_characterization(outcome)
                if outcome is not None else None,
            )
        self.statistics.characterized += (
            runner.statistics.characterized - before.characterized
        )
        self.statistics.skipped += (
            runner.statistics.skipped - before.skipped
        )
        self.statistics.seconds += (
            runner.statistics.seconds - before.seconds
        )

    # ------------------------------------------------------------------

    def _sweep_sharded(
        self,
        pending: List[InstructionForm],
        results: Dict[str, InstructionCharacterization],
        progress: Optional[Callable[[str], None]],
    ) -> None:
        """Supervised worker fleet: stream, salvage, respawn, quarantine."""
        import multiprocessing
        import queue as queue_module

        memo = self.measure_memo
        if memo is not None:
            # Pre-warm the measurements every worker would otherwise
            # repeat — the blocking-instruction discovery walks the whole
            # catalog (Section 5.1.1) and is identical in all shards.
            # Running it once in the parent writes the results through to
            # the shared memo file before the workers attach to it.
            _ = self.runner.blocking

        # fork (where available) lets workers inherit the already-built
        # instruction database; spawn-only platforms re-import it.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

        def spawn(state: _ShardState, uids: List[str],
                  respawned: bool) -> None:
            payload: _ShardPayload = (
                self.uarch.name,
                self.config,
                uids,
                memo.cache_dir if memo is not None else None,
                memo.salt if memo is not None else None,
                self.fault_spec,
                respawned,
                state.shard_id,
            )
            state.queue = context.Queue()
            state.process = context.Process(
                target=_shard_worker, args=(payload, state.queue),
                daemon=True,
            )
            state.process.start()
            state.last_progress = time.monotonic()
            state.armed = False

        costs = {
            form.uid: estimate_cost(form, self.uarch) for form in pending
        }
        shards = shard_uids(
            [form.uid for form in pending], self.jobs, costs=costs
        )
        states = []
        for shard_id, uids in enumerate(shards):
            state = _ShardState(shard_id, uids)
            spawn(state, uids, False)
            states.append(state)

        def handle(state: _ShardState, message) -> None:
            kind = message[0]
            if kind == "done":
                state.done = True
                self.statistics.merge(message[2])
                state.process.join()
                return
            uid, payload_data = message[2], message[3]
            state.remaining.discard(uid)
            state.last_progress = time.monotonic()
            state.armed = True
            if kind == "failure":
                self.failures[uid] = payload_data
                return
            if payload_data is not None:
                outcome = decode_characterization(payload_data)
                results[uid] = outcome
                if progress is not None:
                    progress(outcome.summary())
            # Written through immediately: everything finished so far
            # survives a later crash of this very sweep (resumability).
            self._cache_store(uid, payload_data)

        def drain(state: _ShardState) -> int:
            handled = 0
            while not state.done:
                try:
                    message = state.queue.get_nowait()
                except queue_module.Empty:
                    break
                except (EOFError, OSError):
                    break  # torn channel; the health check takes over
                handle(state, message)
                handled += 1
            return handled

        while not all(state.done for state in states):
            if not any(drain(state) for state in states):
                self._check_shards(states, spawn, drain)
                time.sleep(self.POLL_INTERVAL)
        for state in states:
            if state.queue is not None:
                state.queue.close()

    def _check_shards(self, states, spawn, drain) -> None:
        """Dead-worker detection and the no-progress watchdog."""
        now = time.monotonic()
        for state in states:
            if state.done:
                continue
            process = state.process
            phase = None
            if not process.is_alive():
                # Messages may still be in flight from before the death
                # (or the worker finished and its `done` is queued):
                # drain first, then re-check.
                drain(state)
                if state.done:
                    continue
                phase = "shard"
            elif (
                self.shard_timeout is not None
                and state.armed
                and now - state.last_progress > self.shard_timeout
            ):
                process.terminate()
                process.join(5)
                drain(state)
                phase = "watchdog"
            if phase is None:
                continue
            exitcode = process.exitcode
            state.queue.close()
            salvage = sorted(state.remaining)
            if not salvage:
                # Everything arrived; only the final stats were lost.
                state.done = True
                continue
            if not state.respawned:
                self.statistics.shards_respawned += 1
                state.respawned = True
                spawn(state, salvage, True)
                continue
            # Second loss of the same shard: quarantine the remainder.
            reason = (
                "watchdog timeout" if phase == "watchdog"
                else f"worker died (exit code {exitcode})"
            )
            for uid in salvage:
                self.failures[uid] = FormFailure(
                    uid=uid,
                    phase=phase,
                    error_type="WorkerLost",
                    message=(
                        f"{reason}; shard lost twice, "
                        f"{len(salvage)} forms unfinished"
                    ),
                    attempts=2,
                    shard=state.shard_id,
                )
            state.remaining.clear()
            state.done = True

    # ------------------------------------------------------------------
    # Queue mode: shared work queue, lease/steal, external drainers
    # ------------------------------------------------------------------

    def _queue_store(self) -> Tuple[str, Optional[str], bool]:
        """``(store_dir, salt, owns_store)`` — where the work queue and
        the workers' write-through result store live.

        With a cache this is the cache directory itself (so external
        ``--drain`` processes find the same queue and store); without
        one, a temporary directory removed after the sweep.  ``salt``
        is ``None`` for the temporary store (every component defaults
        to the current code-version salt consistently).
        """
        if self.cache is not None:
            return self.cache.cache_dir, self.cache.salt, False
        return (
            tempfile.mkdtemp(prefix="repro-sweep-queue-"), None, True
        )

    def _sweep_queue(
        self,
        pending: List[InstructionForm],
        results: Dict[str, InstructionCharacterization],
        progress: Optional[Callable[[str], None]],
    ) -> None:
        """Queue-mode execution: enqueue, spawn drainers, supervise.

        The parent enqueues one content-keyed unit per pending form and
        spawns up to ``jobs`` drainer processes — then mostly stays out
        of the way: lease expiry and stealing replace the static path's
        watchdog, and external ``repro sweep --drain`` processes may
        join (or even finish) the work.  What remains of supervision:
        progress/statistics plumbing, force-expiring the leases of
        workers the parent *reaped* (so siblings steal immediately
        instead of waiting out the lease window), respawning drainers
        while pending work remains (bounded by ``jobs`` extra spawns),
        and salvaging externally-acked results from the shared store.
        """
        import multiprocessing
        import queue as queue_module

        memo = self.measure_memo
        if memo is not None:
            # Pre-warm the measurements every drainer would otherwise
            # repeat — the blocking-instruction discovery walks the
            # whole catalog (Section 5.1.1) and is identical in all
            # workers.
            _ = self.runner.blocking

        store_dir, salt, owns_store = self._queue_store()
        work = WorkQueue(store_dir, self.uarch.name, salt=salt)
        base_counters = work.counters()
        key_by_uid = {
            form.uid: cache_key(
                form.uid, self.uarch.name, self.config, salt
            )
            for form in pending
        }
        work.enqueue([
            WorkUnit(key=key_by_uid[form.uid], uid=form.uid)
            for form in pending
        ])

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        workers: List[_DrainerState] = []
        #: Skip markers (data=None) reported by our own workers — they
        #: never enter ``results``, but they are resolved and must not
        #: be salvaged (and re-counted) from the store afterwards.
        reported_skips: set = set()

        def spawn(worker_id: int) -> None:
            payload: _DrainPayload = (
                self.uarch.name,
                self.config,
                store_dir,
                salt,
                memo.cache_dir if memo is not None else None,
                memo.salt if memo is not None else None,
                self.fault_spec,
                self.lease_timeout,
                worker_id,
            )
            state = _DrainerState(worker_id, owner="")
            state.queue = context.Queue()
            state.process = context.Process(
                target=_drain_worker, args=(payload, state.queue),
                daemon=True,
            )
            state.process.start()
            # The worker identifies itself by its own pid (matches
            # _drain_worker's owner string).
            state.owner = f"{state.process.pid}.{worker_id}"
            workers.append(state)

        for worker_id in range(max(1, min(self.jobs, len(pending)))):
            spawn(worker_id)
        next_worker_id = len(workers)
        respawns_left = self.jobs

        def handle(state: _DrainerState, message) -> None:
            kind = message[0]
            if kind == "done":
                state.done = True
                self.statistics.merge(message[2])
                state.process.join()
                return
            uid, payload_data = message[2], message[3]
            if kind == "failure":
                self.failures[uid] = message[3]
                return
            if payload_data is None:
                reported_skips.add(uid)
            elif uid not in results:
                outcome = decode_characterization(payload_data)
                results[uid] = outcome
                if progress is not None:
                    progress(outcome.summary())

        def drain(state: _DrainerState) -> int:
            handled = 0
            while not state.done:
                try:
                    message = state.queue.get_nowait()
                except queue_module.Empty:
                    break
                except (EOFError, OSError):
                    break  # torn channel; the health check takes over
                handle(state, message)
                handled += 1
            return handled

        drained_since = None
        while True:
            progressed = 0
            for state in workers:
                progressed += drain(state)
            for state in workers:
                if state.done or state.dead:
                    continue
                if state.process.is_alive():
                    continue
                # Death after the final put: messages may still be in
                # flight — drain before declaring the worker lost.
                drain(state)
                if state.done:
                    continue
                state.process.join()
                state.dead = True
                work.expire_owner(state.owner)
            active = [s for s in workers if not s.done and not s.dead]
            if work.outstanding() == 0:
                if not active:
                    break
                # Live workers exit on their own once they observe the
                # drained queue; bound the wait in case one is wedged
                # in an injected stall on an already-stolen unit.
                if drained_since is None:
                    drained_since = time.monotonic()
                elif (
                    time.monotonic() - drained_since
                    > max(self.lease_timeout, 5.0)
                ):
                    for state in active:
                        state.process.terminate()
                        state.process.join(5)
                        drain(state)
                        state.dead = True
                    break
            else:
                drained_since = None
                if not active:
                    if respawns_left > 0:
                        respawns_left -= 1
                        self.statistics.shards_respawned += 1
                        spawn(next_worker_id)
                        next_worker_id += 1
                    else:
                        # The fleet died repeatedly with work left;
                        # quarantine the remainder so the sweep (and
                        # any external drainer) terminates.
                        for unit in work.remaining_units():
                            failure = FormFailure(
                                uid=unit.uid,
                                phase="queue",
                                error_type="WorkerLost",
                                message=(
                                    "drainer fleet exhausted its "
                                    f"respawn budget ({self.jobs}); "
                                    "unit abandoned"
                                ),
                                attempts=unit.leases,
                                shard=None,
                            )
                            work.fail(
                                unit.key, "coordinator",
                                failure.as_dict(),
                            )
                        break
            if not progressed:
                time.sleep(self.POLL_INTERVAL)

        for state in workers:
            if state.queue is not None:
                state.queue.close()

        # Quarantines recorded only in the queue: poisoned units, and
        # failures reported by external drainers.
        queue_failures = work.snapshot()["failures"]
        for form in pending:
            if form.uid in results or form.uid in self.failures:
                continue
            record = queue_failures.get(form.uid)
            if record is not None:
                self.failures[form.uid] = FormFailure(**record)

        # Results acked without a message reaching us: units drained by
        # external processes, or a worker lost between its ack and its
        # report.  The shared store has the bytes either way.
        missing = [
            form for form in pending
            if form.uid not in results
            and form.uid not in self.failures
            and form.uid not in reported_skips
        ]
        if missing:
            store = ResultCache(store_dir, salt=salt)
            for form in missing:
                data = store.get(key_by_uid[form.uid], self.uarch.name)
                if ResultCache.is_miss(data):
                    self.failures[form.uid] = FormFailure(
                        uid=form.uid,
                        phase="queue",
                        error_type="ResultMissing",
                        message=(
                            "work unit resolved but no stored "
                            "result was found"
                        ),
                    )
                    continue
                if data is None:
                    self.statistics.skipped += 1
                    continue
                try:
                    outcome = decode_characterization(data)
                except (KeyError, TypeError, ValueError):
                    self._decode_corrupt += 1
                    self.failures[form.uid] = FormFailure(
                        uid=form.uid,
                        phase="queue",
                        error_type="DecodeError",
                        message="stored result failed to decode",
                    )
                    continue
                results[form.uid] = outcome
                if progress is not None:
                    progress(outcome.summary())

        delta = work.counters().delta(base_counters)
        for field in QueueCounters.FIELDS:
            setattr(
                self.statistics, field,
                getattr(self.statistics, field) + delta[field],
            )
        if owns_store:
            shutil.rmtree(store_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Distributed entry points: --enqueue-only and --drain
    # ------------------------------------------------------------------

    def enqueue_pending(
        self, forms: Optional[Iterable[InstructionForm]] = None
    ) -> Dict[str, int]:
        """Plan a sweep and enqueue its pending work — without executing.

        The ``repro sweep --enqueue-only`` entry point: computes the
        pending set exactly like :meth:`sweep` (cache misses, plus
        fingerprint-stale forms in incremental mode) and enqueues one
        content-keyed unit per form for ``--drain`` processes to
        execute.  Requires a cache — the queue must live somewhere the
        drainers can find it.  Returns counts for reporting.
        """
        if self.cache is None:
            raise ValueError(
                "enqueue-only needs a persistent cache directory"
            )
        requested = list(forms if forms is not None else self.database)
        requested.sort(key=lambda form: form.uid)
        results: Dict[str, InstructionCharacterization] = {}
        pending = self._resolve_pending(requested, results)
        work = WorkQueue(
            self.cache.cache_dir, self.uarch.name, salt=self.cache.salt
        )
        enqueued = work.enqueue([
            WorkUnit(
                key=self.cache.key_for(
                    form.uid, self.uarch.name, self.config
                ),
                uid=form.uid,
            )
            for form in pending
        ])
        return {
            "requested": len(requested),
            "cached": len(requested) - len(pending),
            "pending": len(pending),
            "enqueued": enqueued,
        }

    def drain(
        self,
        progress: Optional[Callable[[str], None]] = None,
    ) -> Dict[str, InstructionCharacterization]:
        """Drain the shared work queue in-process until it is empty.

        The ``repro sweep --drain`` entry point: attach to the queue
        next to the cache and lease/characterize/ack units until no
        pending or leased work remains — cooperating (and competing)
        with every other drainer of the same cache directory, stealing
        expired leases along the way.  Returns the results *this*
        process produced, keyed by uid; quarantines land in
        :attr:`failures` and the lease/steal/ack counters in
        :attr:`statistics`.
        """
        if self.cache is None:
            raise ValueError("drain needs a persistent cache directory")
        backend_base = self.backend.stats_tuple()
        executor_base = self.runner.executor.stats_tuple()
        runner = self.runner
        before = RunStatistics(
            characterized=runner.statistics.characterized,
            skipped=runner.statistics.skipped,
            seconds=runner.statistics.seconds,
        )
        work = WorkQueue(
            self.cache.cache_dir, self.uarch.name, salt=self.cache.salt
        )
        plan = (
            FaultPlan.parse(self.fault_spec) if self.fault_spec else None
        )
        owner = f"{os.getpid()}.drain"
        results: Dict[str, InstructionCharacterization] = {}
        heartbeat = LeaseHeartbeat(
            work, owner, lease_seconds=self.lease_timeout
        ).start()
        try:
            while True:
                units = work.lease(
                    owner, limit=1, lease_seconds=self.lease_timeout
                )
                if not units:
                    if work.drained:
                        break
                    time.sleep(self.POLL_INTERVAL)
                    continue
                for unit in units:
                    self.statistics.units_leased += 1
                    if unit.stolen_now:
                        self.statistics.units_stolen += 1
                        self.statistics.lease_expirations += 1
                    heartbeat.watch(unit)
                    try:
                        respawned = unit.leases > 1
                        if plan is not None:
                            stall = plan.stall_seconds(
                                unit.uid, respawned
                            )
                            if stall:
                                time.sleep(stall)
                            if plan.should_kill(unit.uid, respawned):
                                os._exit(KILL_EXIT_CODE)
                        outcome = runner.characterize_resilient(
                            self.database.by_uid(unit.uid)
                        )
                        if isinstance(outcome, FormFailure):
                            self.failures[unit.uid] = outcome
                            work.fail(unit.key, owner, outcome.as_dict())
                            continue
                        data = (
                            encode_characterization(outcome)
                            if outcome is not None else None
                        )
                        uid = unit.uid
                        fence = unit.fence
                        verdict = work.deposit(
                            unit.key, owner, fence,
                            lambda: self._cache_store(
                                uid, data, fence=fence
                            ),
                        )
                        if verdict == "fenced":
                            self.statistics.zombie_writes += 1
                            continue
                        if verdict == "acked":
                            self.statistics.units_acked += 1
                        if outcome is not None:
                            results[unit.uid] = outcome
                            if progress is not None:
                                progress(outcome.summary())
                    finally:
                        heartbeat.unwatch(unit.key)
        finally:
            heartbeat.stop()
        self.statistics.leases_renewed += heartbeat.renewed
        self.statistics.lock_retries += work.lock_retries
        if self.cache is not None:
            self.statistics.lock_retries += self.cache.lock_retries
        self.statistics.characterized += (
            runner.statistics.characterized - before.characterized
        )
        self.statistics.skipped += (
            runner.statistics.skipped - before.skipped
        )
        self.statistics.seconds += (
            runner.statistics.seconds - before.seconds
        )
        self.statistics.forms_failed = len(self.failures)
        self.statistics.fold_snapshot(
            backend_base, self.backend.stats_tuple()
        )
        self.statistics.fold_snapshot(
            executor_base, self.runner.executor.stats_tuple()
        )
        return {uid: results[uid] for uid in sorted(results)}
