"""Parallel sharded characterization sweeps: cached, supervised, resumable.

:class:`CharacterizationRunner` walks the catalog serially; at the scale
of the paper's tool (thousands of variants per generation, Section 6)
that leaves both cores and determinism on the table.  The
:class:`SweepEngine` exploits that every characterization is an
independent pure function of (form, microarchitecture, measurement
configuration):

* the requested forms are sorted by uid and dealt round-robin into
  ``jobs`` deterministic shards (:func:`shard_uids`);
* each shard is characterized by a worker process that constructs its
  *own* backend from the picklable microarchitecture name — simulator
  state is never shared between processes, so parallel results are
  bit-identical to a serial run;
* workers stream results back **one form at a time** in the canonical
  :func:`~repro.core.result.encode_characterization` encoding (also the
  cache's wire format); the parent merges them in stable uid order and
  writes each through to the persistent cache as it arrives, so a sweep
  interrupted at any point resumes from everything already finished;
* an optional :class:`~repro.core.cache.ResultCache` is consulted before
  any shard is formed, so warm sweeps perform zero backend measurements.

Fault tolerance (see ``docs/robustness.md``): the parent supervises the
worker fleet.  A form whose plan ultimately fails — after the
executor's transient-retry budget — is **quarantined** as a
:class:`~repro.core.runner.FormFailure` instead of aborting the sweep.
A worker that dies (crash) or stops making progress for
``shard_timeout`` seconds (watchdog) has its completed results salvaged
— they already arrived — and its remaining uids respawned into a fresh
worker exactly once; a second loss quarantines the remainder.  Because
quarantined forms are never written to the cache, re-running the same
sweep against the same cache (``sweep --resume``) re-measures only the
missing and failed forms.

``jobs=1`` runs in-process (no pool, optionally on an injected backend),
which is both the debugging path and the differential-test reference.
The chaos harness (:mod:`repro.measure.faults`, ``REPRO_FAULTS`` /
``--fault-spec``) injects deterministic failures at every one of these
seams; nothing is injected unless explicitly requested.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.cache import MeasurementMemo, ResultCache
from repro.core.result import (
    InstructionCharacterization,
    decode_characterization,
    encode_characterization,
)
from repro.core.runner import (
    CharacterizationRunner,
    FormFailure,
    RunStatistics,
)
from repro.isa.database import InstructionDatabase, load_default_database
from repro.isa.instruction import InstructionForm
from repro.measure.backend import (
    BackendStats,
    HardwareBackend,
    MeasurementConfig,
)
from repro.measure.executor import ExecutorStats
from repro.measure.faults import FaultPlan, maybe_faulty
from repro.uarch.configs import get_uarch
from repro.uarch.model import UarchConfig

#: Exit code of a worker killed by an injected ``kill`` fault — chosen
#: distinctive so a chaos log reads unambiguously.
KILL_EXIT_CODE = 23


def shard_uids(uids: List[str], n_shards: int) -> List[List[str]]:
    """Deal sorted uids round-robin into at most *n_shards* chunks.

    Round-robin (rather than contiguous slices) spreads the uid-adjacent
    forms of one mnemonic family — which tend to have similar
    characterization cost — across shards, balancing worker runtimes.
    Empty shards are dropped.
    """
    ordered = sorted(uids)
    n_shards = max(1, n_shards)
    shards = [ordered[i::n_shards] for i in range(n_shards)]
    return [shard for shard in shards if shard]


#: Worker payload: (uarch name, measurement config, shard of form uids,
#: measurement-memo directory or None, memo salt, fault spec or None,
#: whether this worker is a respawn, shard index).
_ShardPayload = Tuple[
    str, MeasurementConfig, List[str], Optional[str], Optional[str],
    Optional[str], bool, int,
]


def _shard_worker(payload: _ShardPayload, out_queue) -> None:
    """Characterize one shard in a worker process, streaming results.

    Module-level so it is picklable under every multiprocessing start
    method.  The backend (and its blocking-instruction discovery) is
    built from scratch inside the worker — but when the sweep has a
    measurement memo, the worker attaches to the shared memo file, so
    the blocking/chain sub-measurements the parent pre-warmed (and
    anything previous sweeps measured) are decoded instead of
    re-simulated.  Each finished form is put on *out_queue* immediately
    (one message per uid), so the parent can salvage everything a dying
    worker completed; a final ``done`` message carries the statistics.
    """
    (
        uarch_name, config, uids, memo_dir, memo_salt,
        fault_spec, respawned, shard_id,
    ) = payload
    plan = FaultPlan.parse(fault_spec) if fault_spec else None
    database = load_default_database()
    memo = (
        MeasurementMemo(memo_dir, salt=memo_salt)
        if memo_dir is not None else None
    )
    backend = HardwareBackend(get_uarch(uarch_name), config, memo=memo)
    backend = maybe_faulty(backend, fault_spec, respawned=respawned)
    runner = CharacterizationRunner(backend, database)
    for uid in uids:
        if plan is not None:
            stall = plan.stall_seconds(uid, respawned)
            if stall:
                time.sleep(stall)
            if plan.should_kill(uid, respawned):
                # A hard crash (no interpreter cleanup) — but flush the
                # queue feeder first so already-reported results reach
                # the parent as complete messages rather than a torn
                # pipe write the supervisor could never parse.
                out_queue.close()
                out_queue.join_thread()
                os._exit(KILL_EXIT_CODE)
        outcome = runner.characterize_resilient(database.by_uid(uid))
        if isinstance(outcome, FormFailure):
            out_queue.put((
                "failure", shard_id, uid,
                dataclasses.replace(outcome, shard=shard_id),
            ))
        else:
            out_queue.put((
                "result", shard_id, uid,
                encode_characterization(outcome)
                if outcome is not None else None,
            ))
    runner.statistics.fold_snapshot(
        BackendStats.zero(), backend.stats_tuple()
    )
    runner.statistics.fold_snapshot(
        ExecutorStats.zero(), runner.executor.stats_tuple()
    )
    out_queue.put(("done", shard_id, runner.statistics))


class _ShardState:
    """The parent's view of one supervised worker shard.

    Each shard gets its **own** queue: a worker dying mid-``put`` can
    tear only its own channel, never stall a sibling shard's reporting
    — and a respawn starts on a fresh queue, so a torn pipe from the
    first incarnation cannot confuse the second.
    """

    def __init__(self, shard_id: int, uids: List[str]):
        self.shard_id = shard_id
        self.remaining = set(uids)
        self.process = None
        self.queue = None
        self.respawned = False
        self.done = False
        self.last_progress = time.monotonic()
        #: The watchdog only arms once this incarnation streamed its
        #: first form: worker startup (backend construction plus the
        #: blocking-instruction discovery, folded into the first form)
        #: is catalog-sized work, not form-sized, and must not be
        #: mistaken for a wedged measurement.
        self.armed = False


class SweepEngine:
    """Sharded, cached, fault-tolerant characterization of many forms.

    ``failures`` maps quarantined form uids to their
    :class:`~repro.core.runner.FormFailure` records after a sweep; a
    fully healthy run leaves it empty.
    """

    #: How often the supervisor wakes to check worker health (seconds).
    POLL_INTERVAL = 0.2

    def __init__(
        self,
        uarch: Union[str, UarchConfig],
        database: Optional[InstructionDatabase] = None,
        config: Optional[MeasurementConfig] = None,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        backend: Optional[HardwareBackend] = None,
        measure_memo: Optional[MeasurementMemo] = None,
        fault_spec: Optional[str] = None,
        shard_timeout: Optional[float] = None,
    ):
        self.uarch = get_uarch(uarch) if isinstance(uarch, str) else uarch
        self.database = database or load_default_database()
        self.config = config or (
            backend.config if backend is not None else MeasurementConfig()
        )
        self.jobs = max(1, jobs)
        self.cache = cache
        # The raw-measurement memo rides along with the result cache by
        # default (same directory, same salt): a cached sweep implies the
        # user wants persistence, and the memo is what makes the *cold*
        # part of a sweep cheap across shards and runs.
        if measure_memo is None and cache is not None:
            measure_memo = MeasurementMemo(cache.cache_dir, salt=cache.salt)
        self.measure_memo = measure_memo
        # Chaos harness: never active unless a spec is given explicitly
        # or via REPRO_FAULTS (maybe_faulty re-checks the environment so
        # worker processes see the same spec through the payload).
        from repro.measure.faults import FAULTS_ENV

        self.fault_spec = (
            fault_spec if fault_spec is not None
            else os.environ.get(FAULTS_ENV)
        )
        #: Watchdog: a shard making no progress for this many seconds is
        #: terminated and treated like a crashed worker (None disables).
        self.shard_timeout = shard_timeout
        self.statistics = RunStatistics()
        #: Quarantined forms: uid -> FormFailure.
        self.failures: Dict[str, FormFailure] = {}
        self._backend = backend
        self._runner: Optional[CharacterizationRunner] = None
        #: Cached payloads that failed to decode (counted separately
        #: from line-level corruption, which the cache itself tracks).
        self._decode_corrupt = 0

    # ------------------------------------------------------------------

    @property
    def backend(self) -> HardwareBackend:
        """The in-process backend (built lazily: a fully warm sweep never
        needs one).  Wrapped in the chaos harness when a fault spec is
        active; an explicitly injected backend is never wrapped."""
        if self._backend is None:
            self._backend = maybe_faulty(
                HardwareBackend(
                    self.uarch, self.config, memo=self.measure_memo
                ),
                self.fault_spec,
            )
        return self._backend

    @property
    def runner(self) -> CharacterizationRunner:
        if self._runner is None:
            self._runner = CharacterizationRunner(
                self.backend, self.database
            )
        return self._runner

    def supported_forms(self) -> List[InstructionForm]:
        return self.runner.supported_forms()

    # ------------------------------------------------------------------

    def sweep(
        self,
        forms: Optional[Iterable[InstructionForm]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> Dict[str, InstructionCharacterization]:
        """Characterize *forms* (default: the whole catalog).

        Returns results keyed by form uid, in stable (sorted) uid order
        regardless of cache state, job count, or shard completion order —
        and therefore identical to a serial
        :meth:`CharacterizationRunner.characterize_all` run over the same
        forms.  Forms that could not be characterized despite retries are
        absent from the result and recorded in :attr:`failures`.
        """
        requested = list(forms if forms is not None else self.database)
        requested.sort(key=lambda form: form.uid)

        backend_base = (
            self._backend.stats_tuple()
            if self._backend is not None else BackendStats.zero()
        )
        executor_base = (
            self._runner.executor.stats_tuple()
            if self._runner is not None else ExecutorStats.zero()
        )
        results: Dict[str, InstructionCharacterization] = {}
        pending: List[InstructionForm] = []
        for form in requested:
            data = self._cache_lookup(form)
            if ResultCache.is_miss(data):
                pending.append(form)
                continue
            if data is not None:
                try:
                    outcome = decode_characterization(data)
                except (KeyError, TypeError, ValueError):
                    # A malformed payload that survived the cache's
                    # line-level checks: re-measure rather than crash.
                    self._decode_corrupt += 1
                    pending.append(form)
                    continue
                results[form.uid] = outcome
                self.statistics.cache_hits += 1
            else:
                self.statistics.cache_hits += 1
                self.statistics.skipped += 1

        if pending:
            if self.cache is not None:
                self.statistics.cache_misses += len(pending)
            if self.jobs == 1:
                self._sweep_serial(pending, results, progress)
            else:
                self._sweep_sharded(pending, results, progress)
        if self.cache is not None:
            self.statistics.cache_invalidations = self.cache.invalidations
        corrupt = self._decode_corrupt
        lock_timeouts = 0
        if self.cache is not None:
            corrupt += self.cache.corrupt_lines
            lock_timeouts += self.cache.lock_timeouts
        if self.measure_memo is not None:
            corrupt += self.measure_memo.corrupt_lines
            lock_timeouts += self.measure_memo.lock_timeouts
        self.statistics.corrupt_lines = corrupt
        self.statistics.lock_timeouts = lock_timeouts
        self.statistics.forms_failed = len(self.failures)
        if self._backend is not None:
            # In-process measurement work this sweep performed (serial
            # shards and the sharded path's memo pre-warm).
            self.statistics.fold_snapshot(
                backend_base, self._backend.stats_tuple()
            )
        if self._runner is not None:
            self.statistics.fold_snapshot(
                executor_base, self._runner.executor.stats_tuple()
            )

        return {uid: results[uid] for uid in sorted(results)}

    # ------------------------------------------------------------------

    def _cache_lookup(self, form: InstructionForm):
        """Stored data, ``None`` for a cached skip, or the miss sentinel."""
        if self.cache is None:
            return ResultCache.miss()
        key = self.cache.key_for(
            form.uid, self.uarch.name, self.config
        )
        return self.cache.get(key, self.uarch.name)

    def _cache_store(self, uid: str, data) -> None:
        if self.cache is None:
            return
        key = self.cache.key_for(uid, self.uarch.name, self.config)
        self.cache.put(key, uid, self.uarch.name, data)

    def _sweep_serial(
        self,
        pending: List[InstructionForm],
        results: Dict[str, InstructionCharacterization],
        progress: Optional[Callable[[str], None]],
    ) -> None:
        runner = self.runner
        before = RunStatistics(
            characterized=runner.statistics.characterized,
            skipped=runner.statistics.skipped,
            seconds=runner.statistics.seconds,
        )
        for form in pending:
            outcome = runner.characterize_resilient(form)
            if isinstance(outcome, FormFailure):
                # Quarantined — and deliberately NOT cached, so the next
                # run against this cache re-attempts exactly this form.
                self.failures[form.uid] = outcome
                continue
            if outcome is not None:
                results[form.uid] = outcome
                if progress is not None:
                    progress(outcome.summary())
            self._cache_store(
                form.uid,
                encode_characterization(outcome)
                if outcome is not None else None,
            )
        self.statistics.characterized += (
            runner.statistics.characterized - before.characterized
        )
        self.statistics.skipped += (
            runner.statistics.skipped - before.skipped
        )
        self.statistics.seconds += (
            runner.statistics.seconds - before.seconds
        )

    # ------------------------------------------------------------------

    def _sweep_sharded(
        self,
        pending: List[InstructionForm],
        results: Dict[str, InstructionCharacterization],
        progress: Optional[Callable[[str], None]],
    ) -> None:
        """Supervised worker fleet: stream, salvage, respawn, quarantine."""
        import multiprocessing
        import queue as queue_module

        memo = self.measure_memo
        if memo is not None:
            # Pre-warm the measurements every worker would otherwise
            # repeat — the blocking-instruction discovery walks the whole
            # catalog (Section 5.1.1) and is identical in all shards.
            # Running it once in the parent writes the results through to
            # the shared memo file before the workers attach to it.
            _ = self.runner.blocking

        # fork (where available) lets workers inherit the already-built
        # instruction database; spawn-only platforms re-import it.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )

        def spawn(state: _ShardState, uids: List[str],
                  respawned: bool) -> None:
            payload: _ShardPayload = (
                self.uarch.name,
                self.config,
                uids,
                memo.cache_dir if memo is not None else None,
                memo.salt if memo is not None else None,
                self.fault_spec,
                respawned,
                state.shard_id,
            )
            state.queue = context.Queue()
            state.process = context.Process(
                target=_shard_worker, args=(payload, state.queue),
                daemon=True,
            )
            state.process.start()
            state.last_progress = time.monotonic()
            state.armed = False

        shards = shard_uids([form.uid for form in pending], self.jobs)
        states = []
        for shard_id, uids in enumerate(shards):
            state = _ShardState(shard_id, uids)
            spawn(state, uids, False)
            states.append(state)

        def handle(state: _ShardState, message) -> None:
            kind = message[0]
            if kind == "done":
                state.done = True
                self.statistics.merge(message[2])
                state.process.join()
                return
            uid, payload_data = message[2], message[3]
            state.remaining.discard(uid)
            state.last_progress = time.monotonic()
            state.armed = True
            if kind == "failure":
                self.failures[uid] = payload_data
                return
            if payload_data is not None:
                outcome = decode_characterization(payload_data)
                results[uid] = outcome
                if progress is not None:
                    progress(outcome.summary())
            # Written through immediately: everything finished so far
            # survives a later crash of this very sweep (resumability).
            self._cache_store(uid, payload_data)

        def drain(state: _ShardState) -> int:
            handled = 0
            while not state.done:
                try:
                    message = state.queue.get_nowait()
                except queue_module.Empty:
                    break
                except (EOFError, OSError):
                    break  # torn channel; the health check takes over
                handle(state, message)
                handled += 1
            return handled

        while not all(state.done for state in states):
            if not any(drain(state) for state in states):
                self._check_shards(states, spawn, drain)
                time.sleep(self.POLL_INTERVAL)
        for state in states:
            if state.queue is not None:
                state.queue.close()

    def _check_shards(self, states, spawn, drain) -> None:
        """Dead-worker detection and the no-progress watchdog."""
        now = time.monotonic()
        for state in states:
            if state.done:
                continue
            process = state.process
            phase = None
            if not process.is_alive():
                # Messages may still be in flight from before the death
                # (or the worker finished and its `done` is queued):
                # drain first, then re-check.
                drain(state)
                if state.done:
                    continue
                phase = "shard"
            elif (
                self.shard_timeout is not None
                and state.armed
                and now - state.last_progress > self.shard_timeout
            ):
                process.terminate()
                process.join(5)
                drain(state)
                phase = "watchdog"
            if phase is None:
                continue
            exitcode = process.exitcode
            state.queue.close()
            salvage = sorted(state.remaining)
            if not salvage:
                # Everything arrived; only the final stats were lost.
                state.done = True
                continue
            if not state.respawned:
                self.statistics.shards_respawned += 1
                state.respawned = True
                spawn(state, salvage, True)
                continue
            # Second loss of the same shard: quarantine the remainder.
            reason = (
                "watchdog timeout" if phase == "watchdog"
                else f"worker died (exit code {exitcode})"
            )
            for uid in salvage:
                self.failures[uid] = FormFailure(
                    uid=uid,
                    phase=phase,
                    error_type="WorkerLost",
                    message=(
                        f"{reason}; shard lost twice, "
                        f"{len(salvage)} forms unfinished"
                    ),
                    attempts=2,
                    shard=state.shard_id,
                )
            state.remaining.clear()
            state.done = True
