"""Parallel sharded characterization sweeps with persistent caching.

:class:`CharacterizationRunner` walks the catalog serially; at the scale
of the paper's tool (thousands of variants per generation, Section 6)
that leaves both cores and determinism on the table.  The
:class:`SweepEngine` exploits that every characterization is an
independent pure function of (form, microarchitecture, measurement
configuration):

* the requested forms are sorted by uid and dealt round-robin into
  ``jobs`` deterministic shards (:func:`shard_uids`);
* each shard is characterized by a worker process that constructs its
  *own* backend from the picklable microarchitecture name — simulator
  state is never shared between processes, so parallel results are
  bit-identical to a serial run;
* workers return results in the canonical
  :func:`~repro.core.result.encode_characterization` encoding (also the
  cache's wire format), and the parent merges them in stable uid order;
* an optional :class:`~repro.core.cache.ResultCache` is consulted before
  any shard is formed, and populated afterwards, so warm sweeps perform
  zero backend measurements.

``jobs=1`` runs in-process (no pool, optionally on an injected backend),
which is both the debugging path and the differential-test reference.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.core.cache import MeasurementMemo, ResultCache
from repro.core.result import (
    InstructionCharacterization,
    decode_characterization,
    encode_characterization,
)
from repro.core.runner import CharacterizationRunner, RunStatistics
from repro.isa.database import InstructionDatabase, load_default_database
from repro.isa.instruction import InstructionForm
from repro.measure.backend import (
    BackendStats,
    HardwareBackend,
    MeasurementConfig,
)
from repro.measure.executor import ExecutorStats
from repro.uarch.configs import get_uarch
from repro.uarch.model import UarchConfig


def shard_uids(uids: List[str], n_shards: int) -> List[List[str]]:
    """Deal sorted uids round-robin into at most *n_shards* chunks.

    Round-robin (rather than contiguous slices) spreads the uid-adjacent
    forms of one mnemonic family — which tend to have similar
    characterization cost — across shards, balancing worker runtimes.
    Empty shards are dropped.
    """
    ordered = sorted(uids)
    n_shards = max(1, n_shards)
    shards = [ordered[i::n_shards] for i in range(n_shards)]
    return [shard for shard in shards if shard]


#: Worker payload: (uarch name, measurement config, shard of form uids,
#: measurement-memo directory or None, memo salt).
_ShardPayload = Tuple[
    str, MeasurementConfig, List[str], Optional[str], Optional[str]
]


def _characterize_shard(payload: _ShardPayload):
    """Characterize one shard in a worker process.

    Module-level so it is picklable under every multiprocessing start
    method.  The backend (and its blocking-instruction discovery) is
    built from scratch inside the worker — but when the sweep has a
    measurement memo, the worker attaches to the shared memo file, so
    the blocking/chain sub-measurements the parent pre-warmed (and
    anything previous sweeps measured) are decoded instead of
    re-simulated.  Nothing but the payload and the returned encodings
    ever crosses the process boundary.
    """
    uarch_name, config, uids, memo_dir, memo_salt = payload
    database = load_default_database()
    memo = (
        MeasurementMemo(memo_dir, salt=memo_salt)
        if memo_dir is not None else None
    )
    backend = HardwareBackend(get_uarch(uarch_name), config, memo=memo)
    runner = CharacterizationRunner(backend, database)
    entries = []
    for uid in uids:
        outcome = runner.characterize(database.by_uid(uid))
        entries.append(
            (uid, encode_characterization(outcome)
             if outcome is not None else None)
        )
    runner.statistics.fold_snapshot(
        BackendStats.zero(), backend.stats_tuple()
    )
    runner.statistics.fold_snapshot(
        ExecutorStats.zero(), runner.executor.stats_tuple()
    )
    return entries, runner.statistics


class SweepEngine:
    """Sharded, cached characterization of many forms on one uarch."""

    def __init__(
        self,
        uarch: Union[str, UarchConfig],
        database: Optional[InstructionDatabase] = None,
        config: Optional[MeasurementConfig] = None,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        backend: Optional[HardwareBackend] = None,
        measure_memo: Optional[MeasurementMemo] = None,
    ):
        self.uarch = get_uarch(uarch) if isinstance(uarch, str) else uarch
        self.database = database or load_default_database()
        self.config = config or (
            backend.config if backend is not None else MeasurementConfig()
        )
        self.jobs = max(1, jobs)
        self.cache = cache
        # The raw-measurement memo rides along with the result cache by
        # default (same directory, same salt): a cached sweep implies the
        # user wants persistence, and the memo is what makes the *cold*
        # part of a sweep cheap across shards and runs.
        if measure_memo is None and cache is not None:
            measure_memo = MeasurementMemo(cache.cache_dir, salt=cache.salt)
        self.measure_memo = measure_memo
        self.statistics = RunStatistics()
        self._backend = backend
        self._runner: Optional[CharacterizationRunner] = None

    # ------------------------------------------------------------------

    @property
    def backend(self) -> HardwareBackend:
        """The in-process backend (built lazily: a fully warm sweep never
        needs one)."""
        if self._backend is None:
            self._backend = HardwareBackend(
                self.uarch, self.config, memo=self.measure_memo
            )
        return self._backend

    @property
    def runner(self) -> CharacterizationRunner:
        if self._runner is None:
            self._runner = CharacterizationRunner(
                self.backend, self.database
            )
        return self._runner

    def supported_forms(self) -> List[InstructionForm]:
        return self.runner.supported_forms()

    # ------------------------------------------------------------------

    def sweep(
        self,
        forms: Optional[Iterable[InstructionForm]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> Dict[str, InstructionCharacterization]:
        """Characterize *forms* (default: the whole catalog).

        Returns results keyed by form uid, in stable (sorted) uid order
        regardless of cache state, job count, or shard completion order —
        and therefore identical to a serial
        :meth:`CharacterizationRunner.characterize_all` run over the same
        forms.
        """
        requested = list(forms if forms is not None else self.database)
        requested.sort(key=lambda form: form.uid)

        backend_base = (
            self._backend.stats_tuple()
            if self._backend is not None else BackendStats.zero()
        )
        executor_base = (
            self._runner.executor.stats_tuple()
            if self._runner is not None else ExecutorStats.zero()
        )
        results: Dict[str, InstructionCharacterization] = {}
        pending: List[InstructionForm] = []
        for form in requested:
            data = self._cache_lookup(form)
            if ResultCache.is_miss(data):
                pending.append(form)
                continue
            self.statistics.cache_hits += 1
            if data is not None:
                results[form.uid] = decode_characterization(data)
            else:
                self.statistics.skipped += 1

        if pending:
            if self.cache is not None:
                self.statistics.cache_misses += len(pending)
            if self.jobs == 1:
                self._sweep_serial(pending, results, progress)
            else:
                self._sweep_sharded(pending, results, progress)
        if self.cache is not None:
            self.statistics.cache_invalidations = self.cache.invalidations
        if self._backend is not None:
            # In-process measurement work this sweep performed (serial
            # shards and the sharded path's memo pre-warm).
            self.statistics.fold_snapshot(
                backend_base, self._backend.stats_tuple()
            )
        if self._runner is not None:
            self.statistics.fold_snapshot(
                executor_base, self._runner.executor.stats_tuple()
            )

        return {uid: results[uid] for uid in sorted(results)}

    # ------------------------------------------------------------------

    def _cache_lookup(self, form: InstructionForm):
        """Stored data, ``None`` for a cached skip, or the miss sentinel."""
        if self.cache is None:
            return ResultCache.miss()
        key = self.cache.key_for(
            form.uid, self.uarch.name, self.config
        )
        return self.cache.get(key, self.uarch.name)

    def _cache_store(self, uid: str, data) -> None:
        if self.cache is None:
            return
        key = self.cache.key_for(uid, self.uarch.name, self.config)
        self.cache.put(key, uid, self.uarch.name, data)

    def _sweep_serial(
        self,
        pending: List[InstructionForm],
        results: Dict[str, InstructionCharacterization],
        progress: Optional[Callable[[str], None]],
    ) -> None:
        runner = self.runner
        before = RunStatistics(
            characterized=runner.statistics.characterized,
            skipped=runner.statistics.skipped,
            seconds=runner.statistics.seconds,
        )
        for form in pending:
            outcome = runner.characterize(form)
            if outcome is not None:
                results[form.uid] = outcome
                if progress is not None:
                    progress(outcome.summary())
            self._cache_store(
                form.uid,
                encode_characterization(outcome)
                if outcome is not None else None,
            )
        self.statistics.characterized += (
            runner.statistics.characterized - before.characterized
        )
        self.statistics.skipped += (
            runner.statistics.skipped - before.skipped
        )
        self.statistics.seconds += (
            runner.statistics.seconds - before.seconds
        )

    def _sweep_sharded(
        self,
        pending: List[InstructionForm],
        results: Dict[str, InstructionCharacterization],
        progress: Optional[Callable[[str], None]],
    ) -> None:
        import multiprocessing

        memo = self.measure_memo
        if memo is not None:
            # Pre-warm the measurements every worker would otherwise
            # repeat — the blocking-instruction discovery walks the whole
            # catalog (Section 5.1.1) and is identical in all shards.
            # Running it once in the parent writes the results through to
            # the shared memo file before the workers attach to it.
            _ = self.runner.blocking

        shards = shard_uids([form.uid for form in pending], self.jobs)
        payloads: List[_ShardPayload] = [
            (
                self.uarch.name,
                self.config,
                shard,
                memo.cache_dir if memo is not None else None,
                memo.salt if memo is not None else None,
            )
            for shard in shards
        ]
        # fork (where available) lets workers inherit the already-built
        # instruction database; spawn-only platforms re-import it.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with context.Pool(processes=len(payloads)) as pool:
            for entries, stats in pool.imap_unordered(
                _characterize_shard, payloads
            ):
                self.statistics.merge(stats)
                for uid, data in entries:
                    if data is not None:
                        outcome = decode_characterization(data)
                        results[uid] = outcome
                        if progress is not None:
                            progress(outcome.summary())
                    self._cache_store(uid, data)
