"""Concrete operand assignment for generated microbenchmarks.

The generators of Section 5 need registers "chosen such that no additional
dependencies are introduced".  :class:`RegisterAllocator` hands out distinct
canonical registers per register file, excluding any register the form pins
implicitly (``CL``, ``RAX``, ...), the stack pointer, and registers the
caller reserves (the paper likewise reserves two registers for the
measurement harness).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.isa.instruction import Instruction, InstructionForm
from repro.isa.operands import (
    Immediate,
    Memory,
    Operand,
    OperandKind,
    OperandSpec,
)
from repro.isa.operands import RegisterOperand
from repro.isa.registers import Register, register_by_name, sized_view
from repro.pipeline.core import CounterValues

#: Allocation order for general-purpose registers.  RAX/RDX/RCX come last
#: (they are the most common implicit operands), RSP/RBP are never used.
_GPR_ORDER = (
    "R8 R9 R10 R11 R12 R13 R14 R15 RBX RSI RDI RCX RDX RAX".split()
)
_VEC_ORDER = [f"YMM{i}" for i in range(15, -1, -1)]
_MMX_ORDER = [f"MM{i}" for i in range(7, -1, -1)]


def form_fixed_canonicals(form: InstructionForm) -> Set[str]:
    """Canonical registers pinned by fixed/implicit operands."""
    pinned: Set[str] = set()
    for spec in form.operands:
        if spec.fixed is not None:
            pinned.add(register_by_name(spec.fixed).canonical)
    return pinned


class RegisterAllocator:
    """Hands out distinct registers, avoiding the excluded canonicals."""

    def __init__(self, exclude: Iterable[str] = ()):
        self._exclude = set(exclude)
        self._used: Set[str] = set()

    def exclude(self, canonical: str) -> None:
        self._exclude.add(canonical)

    def reserved(self) -> Set[str]:
        """Canonical registers this allocator has handed out or avoids."""
        return set(self._used) | set(self._exclude)

    def _take(self, order: Sequence[str], width: int,
              cls_name: str) -> Register:
        for name in order:
            reg = register_by_name(name)
            if reg.canonical in self._exclude or reg.canonical in self._used:
                continue
            self._used.add(reg.canonical)
            if cls_name == "vec":
                return sized_view(reg, width)
            if cls_name == "gpr":
                return sized_view(reg, width)
            return reg
        raise RuntimeError(f"out of {cls_name} registers")

    def gpr(self, width: int = 64) -> Register:
        return self._take(_GPR_ORDER, width, "gpr")

    def vec(self, width: int = 128) -> Register:
        return self._take(_VEC_ORDER, width, "vec")

    def mmx(self) -> Register:
        return self._take(_MMX_ORDER, 64, "mmx")

    def for_spec(self, spec: OperandSpec) -> Register:
        if spec.kind == OperandKind.GPR:
            return self.gpr(spec.width)
        if spec.kind == OperandKind.VEC:
            return self.vec(spec.width)
        if spec.kind == OperandKind.MMX:
            return self.mmx()
        raise ValueError(f"not a register spec: {spec}")


def default_immediate(form: InstructionForm, spec: OperandSpec) -> int:
    """A benign immediate: shift counts of 2, selector/offset 0 elsewhere."""
    if form.category in ("shift", "rotate", "rotate_carry", "shld",
                         "vec_shift_imm"):
        return 2
    if form.category in ("imul",):
        return 3
    return 0


def instantiate(
    form: InstructionForm,
    allocator: Optional[RegisterAllocator] = None,
) -> Instruction:
    """A concrete instance with distinct, dependency-free operands."""
    allocator = allocator or RegisterAllocator(form_fixed_canonicals(form))
    operands: List[Operand] = []
    for spec in form.explicit_operands:
        if spec.fixed is not None:
            operands.append(RegisterOperand(register_by_name(spec.fixed)))
        elif spec.is_register:
            operands.append(RegisterOperand(allocator.for_spec(spec)))
        elif spec.kind in (OperandKind.MEM, OperandKind.AGEN):
            operands.append(Memory(allocator.gpr(64), spec.width))
        elif spec.kind == OperandKind.IMM:
            operands.append(
                Immediate(default_immediate(form, spec), spec.width)
            )
        else:  # pragma: no cover
            raise AssertionError(spec)
    return form.instantiate(*operands)


def independent_sequence(
    form: InstructionForm, length: int
) -> List[Instruction]:
    """``length`` instances avoiding read-after-write dependencies.

    Registers and memory locations are selected so that nothing written by
    one instance is read by a later one (Section 5.3.1).  Implicit operands
    that are both read and written cannot be decoupled, exactly as the
    paper notes.
    """
    allocator = RegisterAllocator(form_fixed_canonicals(form))
    instructions = []
    for _ in range(length):
        try:
            instructions.append(instantiate(form, allocator))
        except RuntimeError:
            # Register file exhausted: reuse the pattern from the start.
            allocator = RegisterAllocator(form_fixed_canonicals(form))
            instructions.append(instantiate(form, allocator))
    return instructions


def measure_isolated(
    form: InstructionForm,
    backend,
    length: int = 4,
    init=None,
) -> CounterValues:
    """Per-instruction counters for the form run in isolation."""
    code = independent_sequence(form, length)
    per_copy = backend.measure(code, init)
    return per_copy.scaled(len(code))


def used_ports(counters: CounterValues, threshold: float = 0.05):
    """Ports with non-negligible µop counts in an isolation run."""
    return frozenset(
        p for p, count in counters.port_uops.items() if count > threshold
    )
