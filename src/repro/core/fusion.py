"""Micro- and macro-fusion characterization (the paper's future work).

The conclusions list "micro and macro-fusion" among the aspects the
authors would like to characterize next.  This module implements both
measurements on top of the existing protocol:

* **Micro-fusion**: comparing the fused-domain and unfused-domain µop
  counters for an instruction run in isolation reveals how many of its
  µop pairs are micro-fused (load+op, store-address+store-data).
* **Macro-fusion**: a flag-writing instruction directly followed by a
  conditional branch may execute as a single µop.  Measuring the µop count
  of the adjacent pair and subtracting the individually measured counts
  detects whether the pair fused — swept over candidate flag writers and
  condition codes this yields the generation's fusion matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.codegen import (
    RegisterAllocator,
    form_fixed_canonicals,
    instantiate,
    measure_isolated,
)
from repro.isa.database import InstructionDatabase
from repro.isa.instruction import InstructionForm
from repro.measure.backend import MeasurementConfig

#: Flag-writing mnemonics commonly paired with branches.
FLAG_WRITER_CANDIDATES = (
    "CMP", "TEST", "ADD", "SUB", "AND", "INC", "DEC", "OR", "XOR",
)

#: One branch per condition-flag group.
BRANCH_CANDIDATES = ("JE", "JB", "JL", "JS", "JO")


@dataclass
class MicroFusionResult:
    form_uid: str
    unfused_uops: int
    fused_uops: int

    @property
    def fused_pairs(self) -> int:
        return self.unfused_uops - self.fused_uops


@dataclass
class MacroFusionMatrix:
    uarch_name: str
    #: {(flag writer mnemonic, branch mnemonic): fused?}
    pairs: Dict[Tuple[str, str], bool] = field(default_factory=dict)

    def fusible_writers(self) -> List[str]:
        return sorted(
            {
                writer
                for (writer, _branch), fused in self.pairs.items()
                if fused
            }
        )

    def render(self) -> str:
        writers = sorted({w for w, _ in self.pairs})
        branches = sorted({b for _, b in self.pairs})
        lines = [f"macro-fusion matrix on {self.uarch_name}:"]
        header = "  " + " ".join(f"{b:>5s}" for b in branches)
        lines.append(f"{'':8s}{header}")
        for writer in writers:
            cells = " ".join(
                f"{'yes' if self.pairs.get((writer, b)) else '-':>5s}"
                for b in branches
            )
            lines.append(f"{writer:8s}  {cells}")
        return "\n".join(lines)


def measure_micro_fusion(
    form: InstructionForm, backend
) -> MicroFusionResult:
    """Compare fused- and unfused-domain µop counts in isolation."""
    counters = measure_isolated(form, backend)
    return MicroFusionResult(
        form_uid=form.uid,
        unfused_uops=round(counters.uops),
        fused_uops=round(counters.uops_fused),
    )


def detect_macro_fusion(
    writer_form: InstructionForm,
    branch_form: InstructionForm,
    backend,
) -> bool:
    """Whether *writer* + *branch*, adjacent, execute with fewer µops
    than the two instructions individually."""
    allocator = RegisterAllocator(
        form_fixed_canonicals(writer_form)
        | form_fixed_canonicals(branch_form)
    )
    writer = instantiate(writer_form, allocator)
    branch = instantiate(branch_form, allocator)
    pair = backend.measure([writer, branch])
    writer_alone = backend.measure([writer])
    branch_alone = backend.measure([branch])
    separate = writer_alone.uops + branch_alone.uops
    return pair.uops < separate - 0.5


def _writer_form(
    database: InstructionDatabase, mnemonic: str
) -> Optional[InstructionForm]:
    for form in database.forms_for_mnemonic(mnemonic):
        specs = form.explicit_operands
        if (
            len(specs) >= 1
            and all(s.is_register for s in specs)
            and specs[0].width == 64
            and form.flags_written
        ):
            return form
    return None


def macro_fusion_matrix(
    database: InstructionDatabase, backend
) -> MacroFusionMatrix:
    """Sweep candidate (flag writer, branch) pairs on one backend.

    The backend must simulate fusion (``Core(..,
    enable_macro_fusion=True)`` wrapped in a ``HardwareBackend``) — on
    real hardware this is just the machine's behaviour.
    """
    matrix = MacroFusionMatrix(uarch_name=backend.uarch.name)
    for writer_mnemonic in FLAG_WRITER_CANDIDATES:
        writer = _writer_form(database, writer_mnemonic)
        if writer is None or not backend.supports(writer):
            continue
        for branch_mnemonic in BRANCH_CANDIDATES:
            branches = database.forms_for_mnemonic(branch_mnemonic)
            if not branches:
                continue
            branch = branches[0]
            if not branch.flags_read <= writer.flags_written:
                matrix.pairs[(writer_mnemonic, branch_mnemonic)] = False
                continue
            matrix.pairs[(writer_mnemonic, branch_mnemonic)] = \
                detect_macro_fusion(writer, branch, backend)
    return matrix


def fusion_backend(uarch):
    """A hardware backend whose core models macro-fusion."""
    from repro.measure.backend import HardwareBackend
    from repro.pipeline.core import build_core

    backend = HardwareBackend(uarch, MeasurementConfig())
    backend._core = build_core(uarch, enable_macro_fusion=True)
    return backend
