"""Finding blocking instructions (Section 5.1.1).

A blocking instruction for a set of ports ``P`` is an instruction whose µops
can use all ports in ``P`` but no other port with the same functional unit.
The discovery is measurement-driven: all 1-µop instructions are grouped by
the ports they use when run in isolation, and the highest-throughput member
of each group is selected.  System, serializing, zero-latency instructions,
``PAUSE``, and control-flow instructions are excluded, and SSE and AVX get
separate blocking sets to avoid transition penalties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.isa.database import InstructionDatabase
from repro.isa.instruction import (
    ATTR_CONTROL_FLOW,
    ATTR_MOVE,
    ATTR_PAUSE,
    ATTR_SERIALIZING,
    ATTR_SYSTEM,
    ATTR_UNSUPPORTED,
    ATTR_ZERO_IDIOM,
    InstructionForm,
)
from repro.core.codegen import independent_sequence, used_ports
from repro.core.experiment import ExperimentBatch, Plan

#: Vector-context keys for the two blocking sets (Section 5.1.1: "for SSE
#: instructions, the blocking instructions should not contain AVX
#: instructions, and vice versa").
CONTEXT_SSE = "sse"
CONTEXT_AVX = "avx"


@dataclass
class BlockingInstructions:
    """The chosen blocking instruction per port combination, per context."""

    by_combination: Dict[str, Dict[FrozenSet[int], InstructionForm]] = field(
        default_factory=dict
    )
    store_combinations: Tuple[FrozenSet[int], ...] = ()
    store_blocker: Optional[InstructionForm] = None

    def combinations(self, context: str) -> List[FrozenSet[int]]:
        combos = list(self.by_combination.get(context, {}))
        combos.extend(self.store_combinations)
        return combos

    def blocker(
        self, context: str, combination: FrozenSet[int]
    ) -> Optional[InstructionForm]:
        if combination in self.store_combinations:
            return self.store_blocker
        return self.by_combination.get(context, {}).get(combination)

    def context_for(self, form: InstructionForm) -> str:
        return CONTEXT_AVX if form.is_avx else CONTEXT_SSE


_EXCLUDED_ATTRS = (
    ATTR_SYSTEM,
    ATTR_SERIALIZING,
    ATTR_CONTROL_FLOW,
    ATTR_PAUSE,
    ATTR_UNSUPPORTED,
    ATTR_MOVE,  # potentially zero-latency via move elimination
    ATTR_ZERO_IDIOM,  # potentially zero-latency when operands coincide
)


def _is_candidate(form: InstructionForm) -> bool:
    if any(form.has_attribute(a) for a in _EXCLUDED_ATTRS):
        return False
    if form.writes_memory:
        return False  # stores are handled by the dedicated MOV blocker
    if form.reads_memory and form.category not in ("load", "vec_load"):
        # Loads are needed to block the load ports; other memory-reading
        # instructions only complicate operand independence.
        return False
    if form.category in ("div", "vec_fp_div", "vec_fp_sqrt"):
        # Not fully pipelined: cannot saturate a port every cycle.
        return False
    # Implicit read+write operands would create dependent chains inside the
    # blocking sequence; keep allocation simple by requiring explicit regs.
    for spec in form.operands:
        if spec.implicit and spec.written:
            return False
    return True


def find_blocking_instructions(
    database: InstructionDatabase,
    backend,
) -> BlockingInstructions:
    """Discover blocking instructions for every port combination.

    One-shot wrapper around :func:`plan_blocking_instructions`: plans the
    candidate isolation runs, executes them on *backend*, interprets.
    """
    from repro.measure.executor import ExperimentExecutor

    return ExperimentExecutor(backend).drive(
        plan_blocking_instructions(database, backend)
    )


def plan_blocking_instructions(
    database: InstructionDatabase,
    backend,
) -> Plan:
    """Plan the discovery of Section 5.1.1 (one isolation run per
    candidate), interpreting into :class:`BlockingInstructions`.

    Purely measurement-driven: µop counts and port sets come from isolation
    runs, never from the ground-truth tables.  *backend* is consulted only
    for ``supports()`` (the candidate filter) and the documented port
    layout of the store units — never for measurements, which flow through
    the yielded batch.
    """
    batch = ExperimentBatch()
    planned: List = []
    for form in database:
        if not _is_candidate(form):
            continue
        if not backend.supports(form):
            continue
        code = independent_sequence(form, 4)
        handle = batch.add(code, tag=f"blocking:iso:{form.uid}")
        planned.append((form, handle, len(code)))
    results = yield batch

    groups: Dict[Tuple[str, FrozenSet[int]], List] = {}
    for form, handle, copies in planned:
        # A candidate whose isolation run failed (after the executor's
        # retry budget) is simply not available as a blocking
        # instruction: the discovery degrades instead of aborting the
        # whole backend's characterization.
        measured = results.get(handle)
        if measured is None:
            continue
        counters = measured.scaled(copies)
        uops = counters.uops
        if not 0.9 < uops < 1.1:
            continue
        ports = used_ports(counters)
        if not ports:
            continue
        throughput = counters.cycles
        contexts = [CONTEXT_AVX] if form.is_avx else (
            [CONTEXT_SSE] if form.is_sse
            else [CONTEXT_SSE, CONTEXT_AVX]
        )
        # MMX instructions are legacy-safe in both contexts.
        if form.extension == "MMX":
            contexts = [CONTEXT_SSE, CONTEXT_AVX]
        for context in contexts:
            groups.setdefault((context, ports), []).append(
                (throughput, form.uid, form)
            )

    result = BlockingInstructions()
    for (context, ports), members in groups.items():
        # Highest throughput = lowest cycles per instruction; the uid
        # tie-break keeps the selection deterministic.
        members.sort(key=lambda item: (item[0], item[1]))
        result.by_combination.setdefault(context, {})[ports] = \
            members[0][2]

    # Store ports cannot be blocked by a 1-µop instruction; the paper uses
    # MOV from a general-purpose register to memory (2 µops: store data +
    # store address).
    store_form = _find_store_blocker(database, backend)
    if store_form is not None:
        result.store_blocker = store_form
        # The port combinations of the store-address and store-data units
        # come from the documented port layout (Figure 1); the paper
        # likewise treats the store units specially rather than inferring
        # them from 1-µop groups (Section 5.1.1).
        result.store_combinations = (
            backend.uarch.fu_ports("store_addr"),
            backend.uarch.fu_ports("store_data"),
        )
    return result


def _find_store_blocker(database, backend) -> Optional[InstructionForm]:
    for form in database.forms_for_mnemonic("MOV"):
        if form.category == "store" and not form.has_attribute("lock"):
            specs = form.explicit_operands
            if (
                len(specs) == 2
                and specs[0].width == 64
                and specs[1].kind.name == "GPR"
            ):
                return form
    return None


