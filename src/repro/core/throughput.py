"""Throughput: measured (Section 5.3.1) and computed from the port usage
via a linear program (Section 5.3.2).

The measured (Fog-style, Definition 2) throughput runs sequences of 1, 2, 4,
and 8 independent instruction instances (longer sequences can be *slower*,
which is why several lengths are tried), plus a variant with
dependency-breaking instructions for instructions with implicit read+write
operands.  Divider instructions are measured with both high- and
low-throughput operand values.

The computed (Intel-style, Definition 1) throughput is the optimal value of

    minimize  max_p sum_pc f(p, pc)
    s.t.      f(p, pc) = 0            for p not in pc
              sum_p f(p, pc) = mu_pc  for each (pc, mu_pc)

solved as an LP with scipy.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.core.codegen import (
    RegisterAllocator,
    form_fixed_canonicals,
    independent_sequence,
    instantiate,
)
from repro.core.experiment import ExperimentBatch, Plan
from repro.core.latency import DIVISOR_VALUE, FAST_DIVIDER_VALUE
from repro.core.result import PortUsage, ThroughputResult
from repro.isa.instruction import InstructionForm
from repro.isa.operands import Immediate, OperandKind, RegisterOperand
from repro.isa.registers import register_by_name, sized_view

_SEQUENCE_LENGTHS = (1, 2, 4, 8)


def measure_throughput(
    form: InstructionForm,
    backend,
    database=None,
) -> ThroughputResult:
    """Fog-style throughput over several independent-sequence lengths.

    One-shot wrapper around :func:`plan_throughput`.
    """
    from repro.measure.executor import ExperimentExecutor

    return ExperimentExecutor(backend).drive(
        plan_throughput(form, database)
    )


def plan_throughput(
    form: InstructionForm,
    database=None,
) -> Plan:
    """Plan the throughput measurements of Section 5.3.1 as one batch:
    the four sequence lengths, the dependency-breaking variant, and the
    fast/slow divider sequences where applicable."""
    batch = ExperimentBatch()
    lengths = []
    for length in _SEQUENCE_LENGTHS:
        code = independent_sequence(form, length)
        handle = batch.add(code, tag=f"tp:L{length}:{form.uid}")
        lengths.append((length, handle))

    # Variant with dependency-breaking instructions for implicit
    # read+write operands (Section 5.3.1).
    broken_handle = None
    if database is not None and _has_implicit_rw(form):
        broken = _sequence_with_breakers(form, database, 4)
        if broken is not None:
            code, per_copy_instructions = broken
            broken_handle = batch.add(code, tag=f"tp:breakers:{form.uid}")

    divider = []
    if form.category in ("div", "vec_fp_div", "vec_fp_sqrt") and \
            database is not None:
        for klass, value in (("fast", FAST_DIVIDER_VALUE),
                             ("slow", 0x7FFFFFFF)):
            code, init, copies = _divider_sequence(form, database, value)
            handle = batch.add(code, init, tag=f"tp:{klass}:{form.uid}")
            divider.append((klass, handle, copies))

    results = yield batch

    by_length: Dict[int, float] = {
        length: results[handle].cycles / length
        for length, handle in lengths
    }
    same_kind = min(by_length.values())
    best = same_kind
    if broken_handle is not None:
        cycles = results[broken_handle].cycles / per_copy_instructions
        if cycles < best:
            best = cycles

    fast = None
    for klass, handle, copies in divider:
        cycles = results[handle].cycles / copies
        if klass == "fast":
            fast = cycles
        else:
            best = cycles
            same_kind = cycles
    return ThroughputResult(
        measured=best,
        measured_same_kind=same_kind,
        by_sequence_length=by_length,
        measured_fast_values=fast,
    )


def _has_implicit_rw(form: InstructionForm) -> bool:
    return any(
        s.implicit and s.read and s.written for s in form.operands
    ) or bool(form.flags_read & form.flags_written)


def _sequence_with_breakers(form, database, length):
    """Independent instances interleaved with dependency breakers."""
    try:
        mov = database.by_uid("MOV_R64_I32")
        test = database.by_uid("TEST_R64_R64")
    except KeyError:
        return None
    allocator = RegisterAllocator(form_fixed_canonicals(form))
    code = []
    for _ in range(length):
        instr = instantiate(form, allocator)
        code.append(instr)
        for i, spec in enumerate(form.operands):
            if spec.implicit and spec.read and spec.written and \
                    spec.kind == OperandKind.GPR:
                operand = instr.operands[i]
                if isinstance(operand, RegisterOperand):
                    code.append(
                        mov.instantiate(
                            RegisterOperand(
                                sized_view(operand.register, 64)
                            ),
                            Immediate(7, 32),
                        )
                    )
        if form.flags_read & form.flags_written:
            try:
                reg = allocator.gpr(64)
            except RuntimeError:
                allocator = RegisterAllocator(form_fixed_canonicals(form))
                reg = allocator.gpr(64)
            code.append(
                test.instantiate(
                    RegisterOperand(reg), RegisterOperand(reg)
                )
            )
    return code, length


def _divider_sequence(form, database, value):
    """``(code, init, copies)`` of one pinned divider sequence.

    Implicit read+write operands (``RAX``/``RDX`` for DIV) serialize plain
    sequences, so dependency-breaking ``MOV reg, imm`` instructions re-pin
    the operand values between instances; the pin *value* selects the fast
    or the slow divider path (Section 5.2.5).
    """
    mov = database.by_uid("MOV_R64_I32")
    avx = form.is_avx
    if avx:
        vec_zero = database.by_uid("VPXOR_XMM_XMM_XMM")
        vec_pin = database.by_uid("VPOR_XMM_XMM_XMM")
    else:
        vec_zero = database.by_uid("PXOR_XMM_XMM")
        vec_pin = database.by_uid("POR_XMM_XMM")
    allocator_pin = None
    instances = independent_sequence(form, 4)
    code = []
    init: Dict[str, int] = {}
    for instr in instances:
        code.append(instr)
        for i, spec in enumerate(instr.form.operands):
            if not spec.read:
                continue
            operand = instr.operands[i]
            if not isinstance(operand, RegisterOperand):
                continue
            name = operand.register.canonical
            pin = (
                DIVISOR_VALUE
                if (i == 0 and form.category == "div")
                else value
            )
            init.setdefault(name, pin)
            if not spec.written:
                continue
            if spec.kind == OperandKind.GPR:
                code.append(
                    mov.instantiate(
                        RegisterOperand(
                            sized_view(operand.register, 64)
                        ),
                        Immediate(pin, 32),
                    )
                )
            elif spec.kind == OperandKind.VEC:
                # PXOR reg,reg breaks the dependency; POR reg,pin
                # restores the pinned value.
                if allocator_pin is None:
                    allocator_pin = register_by_name("XMM0")
                    init.setdefault(allocator_pin.canonical, pin)
                view = sized_view(operand.register, 128)
                if avx:
                    code.append(
                        vec_zero.instantiate(
                            RegisterOperand(view),
                            RegisterOperand(view),
                            RegisterOperand(view),
                        )
                    )
                    code.append(
                        vec_pin.instantiate(
                            RegisterOperand(view),
                            RegisterOperand(view),
                            RegisterOperand(allocator_pin),
                        )
                    )
                else:
                    code.append(
                        vec_zero.instantiate(
                            RegisterOperand(view),
                            RegisterOperand(view),
                        )
                    )
                    code.append(
                        vec_pin.instantiate(
                            RegisterOperand(view),
                            RegisterOperand(allocator_pin),
                        )
                    )
    return code, init, len(instances)


def compute_throughput_from_port_usage(
    port_usage: PortUsage, ports: Sequence[int]
) -> Optional[float]:
    """Intel-style throughput (Definition 1) from the inferred port usage.

    Returns ``None`` when the usage is empty (e.g. instructions whose µops
    never reach an execution port).
    """
    solution = solve_port_assignment(dict(port_usage.counts), ports)
    if solution is None:
        return None
    return solution[0]


def solve_port_assignment(
    counts: Dict[frozenset, float], ports: Sequence[int]
) -> Optional[tuple]:
    """Solve the LP of Section 5.3.2.

    Args:
        counts: µops per port combination.
        ports: all ports of the machine.

    Returns:
        ``(z, loads)`` where ``z`` is the minimized maximum port load and
        ``loads`` maps each port to its assigned µop share; ``None`` if the
        usage is empty.
    """
    combos = [(tuple(sorted(pc)), mu) for pc, mu in counts.items()]
    if not combos:
        return None
    ports = list(ports)
    port_index = {p: k for k, p in enumerate(ports)}
    # Variables: f(p, pc) for each combo and each port in that combo,
    # plus z (the bound on the per-port load).
    var_index = {}
    for c, (pc, _mu) in enumerate(combos):
        for p in pc:
            var_index[(c, p)] = len(var_index)
    z_index = len(var_index)
    num_vars = z_index + 1

    # Objective: minimize z.
    objective = np.zeros(num_vars)
    objective[z_index] = 1.0

    # Equalities: per combo, sum_p f(p, pc) = mu.
    a_eq = np.zeros((len(combos), num_vars))
    b_eq = np.zeros(len(combos))
    for c, (pc, mu) in enumerate(combos):
        for p in pc:
            a_eq[c, var_index[(c, p)]] = 1.0
        b_eq[c] = mu

    # Inequalities: per port, sum_pc f(p, pc) - z <= 0.
    a_ub = np.zeros((len(ports), num_vars))
    b_ub = np.zeros(len(ports))
    for p in ports:
        row = port_index[p]
        for c, (pc, _mu) in enumerate(combos):
            if p in pc:
                a_ub[row, var_index[(c, p)]] = 1.0
        a_ub[row, z_index] = -1.0

    result = linprog(
        objective,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:  # pragma: no cover - defensive
        return None
    loads = {p: 0.0 for p in ports}
    for (c, p), index in var_index.items():
        loads[p] += float(result.x[index])
    return float(result.x[z_index]), loads
