"""Latency inference for every (source, destination) operand pair
(Section 5.2).

For each pair, a dependency chain from the destination back to the source is
constructed automatically:

* GPR -> GPR via ``MOVSX`` (never ``MOV``/``MOVZX``, which may be eliminated
  by the rename stage; ``MOVSX`` also sidesteps partial-register stalls),
* SIMD -> SIMD via shuffles, once with an integer shuffle (``PSHUFD``) and
  once with a floating-point shuffle (``SHUFPS``) to expose bypass delays,
* cross-register-file pairs via compositions with the small set of
  transfer instructions, reported as upper bounds,
* memory -> register via the double-``XOR`` trick on the base register,
* status flags -> register via ``TEST R, R``,
* register -> flags via ``SETcc`` + ``MOVZX``,
* register -> memory via a store/load round trip (store-to-load forwarding
  makes this a distinct quantity, reported as such),
* divider instructions with operand values pinned through
  ``AND R, Rc; OR R, Rc``, measured once with high-latency and once with
  low-latency values.

Unwanted additional dependencies (implicit operands, flags that are both
read and written) are broken with dependency-breaking instructions that
write without reading.

The measurer is organized plan -> execute -> interpret (see
:mod:`repro.core.experiment`): :meth:`LatencyMeasurer.plan` builds every
chain for a form with no backend in hand — each ``_plan_*`` method does
the codegen of its seed counterpart verbatim, registers the experiments,
and returns an interpreter closure that turns the measured counters into
a :class:`~repro.core.result.LatencyValue`.  Chain-instruction
calibrations (the latency of ``MOVSX``, ``XOR``, the shuffles, ``MOVQ``)
are deduplicated at plan time against a per-measurer cache, so they cost
one experiment per backend lifetime, exactly like the inline path's
cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.codegen import (
    RegisterAllocator,
    form_fixed_canonicals,
    instantiate,
)
from repro.core.experiment import (
    Experiment,
    ExperimentBatch,
    Plan,
    ResultMap,
)
from repro.core.result import (
    LAT_EXACT,
    LAT_STORE_LOAD,
    LAT_UPPER_BOUND,
    LatencyResult,
    LatencyValue,
)
from repro.isa.database import InstructionDatabase
from repro.isa.instruction import (
    ATTR_CONTROL_FLOW,
    ATTR_REP,
    ATTR_SERIALIZING,
    ATTR_SYSTEM,
    ATTR_UNSUPPORTED,
    Instruction,
    InstructionForm,
)
from repro.isa.operands import (
    Immediate,
    Memory,
    OperandKind,
    RegisterOperand,
)
from repro.isa.registers import Register, register_by_name, sized_view

#: Pseudo-operand labels.
FLAGS = "flags"
MEM = "mem"

#: Divider operand values (Section 5.2.5): one set leading to high latency,
#: one to low latency (the roles the values from Agner Fog's scripts play).
SLOW_DIVIDER_VALUE = (1 << 62) + 12345
FAST_DIVIDER_VALUE = 100
DIVISOR_VALUE = 3


@dataclass
class _Pair:
    src_slot: Union[int, str]  # operand index, FLAGS, or MEM
    dst_slot: Union[int, str]
    src_label: str
    dst_label: str


class ChainError(RuntimeError):
    """No dependency chain could be constructed for a pair."""


def _skip_form(form: InstructionForm) -> bool:
    return any(
        form.has_attribute(a)
        for a in (
            ATTR_CONTROL_FLOW,
            ATTR_SYSTEM,
            ATTR_SERIALIZING,
            ATTR_UNSUPPORTED,
            ATTR_REP,
        )
    )


class _PlanContext:
    """Plan-time state of one :meth:`LatencyMeasurer.plan` invocation.

    Collects the form's experiments into one batch and deduplicates
    calibration experiments: a chain instruction's own latency is planned
    at most once per measurer lifetime (the measurer-level cache) and at
    most once per batch (the pending map), mirroring the inline path's
    measure-on-first-use caching.
    """

    def __init__(self, measurer: "LatencyMeasurer"):
        self._measurer = measurer
        self.batch = ExperimentBatch()
        self._pending: Dict[str, Tuple[Experiment, int]] = {}
        self.results: Optional[ResultMap] = None

    def add(self, code, init=None, tag: str = "") -> Experiment:
        return self.batch.add(code, init, tag)

    def counters(self, handle: Experiment):
        return self.results[handle]

    def calibrate(
        self, key: str, code_builder: Callable[[], List[Instruction]]
    ) -> None:
        """Ensure the chain latency *key* will be resolvable at
        interpret time, planning its experiment if never measured."""
        if key in self._measurer._chain_latency_cache:
            return
        if key in self._pending:
            return
        code = code_builder()
        handle = self.batch.add(code, tag=f"lat:cal:{key}")
        self._pending[key] = (handle, len(code))

    def calibration(self, key: str) -> float:
        """The chain latency for *key*, computed lazily from this batch's
        results on first use (so a failed calibration surfaces inside the
        requesting pair's interpreter, like the inline path)."""
        cache = self._measurer._chain_latency_cache
        if key not in cache:
            handle, copies = self._pending[key]
            counters = self.results[handle]
            cache[key] = counters.cycles / copies
        return cache[key]


#: An interpreter closure produced at plan time: reads measured counters
#: out of the plan context and returns the pair's latency value.
_Interpret = Callable[[], Optional[LatencyValue]]


class LatencyMeasurer:
    """Measures per-pair latencies of instruction forms on one backend."""

    def __init__(self, database: InstructionDatabase, backend):
        self._db = database
        self._backend = backend
        self._chain_latency_cache: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Chain-instruction calibration codes (measured once, cached)
    # ------------------------------------------------------------------

    def _movsx_code(self) -> List[Instruction]:
        form = self._db.by_uid("MOVSX_R64_R16")
        r8 = register_by_name("R8")
        instr = form.instantiate(
            RegisterOperand(r8), RegisterOperand(sized_view(r8, 16))
        )
        return [instr]

    def _xor_code(self) -> List[Instruction]:
        form = self._db.by_uid("XOR_R64_R64")
        instr = form.instantiate(
            RegisterOperand(register_by_name("R8")),
            RegisterOperand(register_by_name("R9")),
        )
        return [instr]

    def _shuffle_code(self, uid: str) -> List[Instruction]:
        form = self._db.by_uid(uid)
        x1 = register_by_name("XMM1")
        operands = [
            Immediate(0, 8)
            if s.kind == OperandKind.IMM
            else RegisterOperand(x1)
            for s in form.explicit_operands
        ]
        return [form.instantiate(*operands)]

    def _mmx_move_code(self) -> List[Instruction]:
        form = self._db.by_uid("MOVQ_MM_MM")
        mm1 = register_by_name("MM1")
        instr = form.instantiate(RegisterOperand(mm1), RegisterOperand(mm1))
        return [instr]

    # ------------------------------------------------------------------
    # Pair enumeration
    # ------------------------------------------------------------------

    def _pairs(self, form: InstructionForm) -> List[_Pair]:
        sources: List[Tuple[Union[int, str], str]] = []
        dests: List[Tuple[Union[int, str], str]] = []
        for i, spec in enumerate(form.operands):
            label = form.operand_label(i)
            if spec.kind == OperandKind.IMM:
                continue
            if spec.kind == OperandKind.MEM:
                if spec.read:
                    sources.append((i, MEM))
                if spec.written:
                    dests.append((i, MEM))
                continue
            if spec.kind == OperandKind.AGEN:
                sources.append((i, label))
                continue
            if spec.read:
                sources.append((i, label))
            if spec.written:
                dests.append((i, label))
        if form.flags_read:
            sources.append((FLAGS, FLAGS))
        if form.flags_written:
            dests.append((FLAGS, FLAGS))
        return [
            _Pair(s_slot, d_slot, s_label, d_label)
            for s_slot, s_label in sources
            for d_slot, d_label in dests
        ]

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def infer(self, form: InstructionForm) -> LatencyResult:
        """One-shot wrapper around :meth:`plan`."""
        from repro.measure.executor import ExperimentExecutor

        return ExperimentExecutor(self._backend).drive(self.plan(form))

    def plan(self, form: InstructionForm) -> Plan:
        """Plan every latency chain for *form*, interpreting the measured
        counters into a :class:`~repro.core.result.LatencyResult`.

        Chains that cannot be constructed — and interpreters whose
        measurements failed — skip their pair, exactly like the inline
        path's per-pair ``except`` did; the split only moves the codegen
        half of those exceptions to plan time.
        """
        result = LatencyResult()
        if _skip_form(form) or not self._backend.supports(form):
            return result
        if form.category in ("div", "vec_fp_div", "vec_fp_sqrt"):
            batch = ExperimentBatch()
            interpret = self._plan_divider(form, batch)
            if interpret is None:
                return result
            results = yield batch
            interpret(results, result)
            return result
        ctx = _PlanContext(self)
        planned: List[Tuple[_Pair, _Interpret]] = []
        for pair in self._pairs(form):
            try:
                interpret = self._plan_pair(ctx, form, pair)
            except (ChainError, KeyError, RuntimeError):
                continue
            if interpret is not None:
                planned.append((pair, interpret))
        same_register = self._plan_same_register(ctx, form)
        ctx.results = yield ctx.batch
        for pair, interpret in planned:
            try:
                value = interpret()
            except (ChainError, KeyError, RuntimeError):
                continue
            if value is not None:
                result.pairs[(pair.src_label, pair.dst_label)] = value
        if same_register is not None:
            same_register(result)
        return result

    # ------------------------------------------------------------------
    # Pair planning dispatch
    # ------------------------------------------------------------------

    def _plan_pair(
        self, ctx: _PlanContext, form: InstructionForm, pair: _Pair
    ) -> Optional[_Interpret]:
        src, dst = pair.src_slot, pair.dst_slot
        if dst == FLAGS and src == FLAGS:
            return self._plan_flags_to_flags(ctx, form)
        if src == FLAGS:
            return self._plan_flags_to_reg(ctx, form, dst)
        if dst == FLAGS:
            return self._plan_reg_to_flags(ctx, form, src)
        src_spec = form.operands[src]
        dst_spec = form.operands[dst]
        if src_spec.kind == OperandKind.MEM:
            if dst_spec.kind == OperandKind.MEM:
                return None
            return self._plan_mem_to_reg(ctx, form, src, dst)
        if dst_spec.kind == OperandKind.MEM:
            return self._plan_reg_to_mem(ctx, form, src, dst)
        return self._plan_reg_to_reg(ctx, form, src, dst)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _breakers(
        self,
        form: InstructionForm,
        instr: Instruction,
        exclude_slots: Sequence[Union[int, str]],
        allocator: RegisterAllocator,
        avx: bool,
    ) -> List[Instruction]:
        """Dependency-breaking instructions for unwanted read+write
        operands and flags (Section 5.2)."""
        breakers: List[Instruction] = []
        for i, spec in enumerate(form.operands):
            if i in exclude_slots:
                continue
            if not (spec.read and spec.written and spec.is_register):
                continue
            operand = instr.operands[i]
            if not isinstance(operand, RegisterOperand):
                continue
            reg = operand.register
            if spec.kind == OperandKind.GPR:
                mov = self._db.by_uid("MOV_R64_I32")
                breakers.append(
                    mov.instantiate(
                        RegisterOperand(sized_view(reg, 64)),
                        Immediate(7, 32),
                    )
                )
            elif spec.kind == OperandKind.VEC:
                uid = "VPXOR_XMM_XMM_XMM" if avx else "PXOR_XMM_XMM"
                pxor = self._db.by_uid(uid)
                view = sized_view(reg, 128)
                ops = [RegisterOperand(view)] * (
                    3 if avx else 2
                )
                breakers.append(pxor.instantiate(*ops))
            elif spec.kind == OperandKind.MMX:
                pxor = self._db.by_uid("PXOR_MM_MM")
                breakers.append(
                    pxor.instantiate(
                        RegisterOperand(reg), RegisterOperand(reg)
                    )
                )
        if (
            form.flags_read
            and form.flags_written
            and FLAGS not in exclude_slots
        ):
            breakers.extend(self._flag_breakers(form, allocator))
        return breakers

    def _flag_breakers(self, form, allocator) -> List[Instruction]:
        """TEST (all flags but AF) plus SAHF when AF is read."""
        breakers = []
        test = self._db.by_uid("TEST_R64_R64")
        reg = allocator.gpr(64)
        breakers.append(
            test.instantiate(RegisterOperand(reg), RegisterOperand(reg))
        )
        if "AF" in form.flags_read:
            sahf = self._db.by_uid("SAHF")
            breakers.append(sahf.instantiate())
        return breakers

    def _allocator_for(self, form: InstructionForm) -> RegisterAllocator:
        exclude = form_fixed_canonicals(form)
        # SAHF-based flag breaking reads AH; keep RAX free of chains.
        if "AF" in form.flags_read and form.flags_written:
            exclude.add("RAX")
        return RegisterAllocator(exclude)

    # ------------------------------------------------------------------
    # Register -> register
    # ------------------------------------------------------------------

    def _plan_reg_to_reg(
        self, ctx, form: InstructionForm, src: int, dst: int
    ) -> Optional[_Interpret]:
        src_spec = form.operands[src]
        dst_spec = form.operands[dst]
        if src == dst:
            return self._plan_self_chain(ctx, form, src)
        kinds = (src_spec.kind, dst_spec.kind)
        if kinds == (OperandKind.GPR, OperandKind.GPR) or (
            src_spec.kind == OperandKind.AGEN
            and dst_spec.kind == OperandKind.GPR
        ):
            return self._plan_gpr_chain(ctx, form, src, dst)
        if kinds == (OperandKind.VEC, OperandKind.VEC):
            return self._plan_vec_chain(ctx, form, src, dst)
        if kinds == (OperandKind.MMX, OperandKind.MMX):
            return self._plan_mmx_chain(ctx, form, src, dst)
        return self._plan_cross_file_chain(ctx, form, src, dst)

    def _plan_self_chain(self, ctx, form, slot) -> _Interpret:
        allocator = self._allocator_for(form)
        instr = instantiate(form, allocator)
        breakers = self._breakers(form, instr, [slot], allocator,
                                  form.is_avx)
        handle = ctx.add([instr] + breakers,
                         tag=f"lat:self:{form.uid}:{slot}")

        def interpret() -> Optional[LatencyValue]:
            cycles = ctx.counters(handle).cycles
            overhead = 0.0  # breakers are off the critical path
            return LatencyValue(
                max(cycles - overhead, 0.0), LAT_EXACT, None
            )

        return interpret

    def _operand_register(self, instr, slot) -> Register:
        operand = instr.operands[slot]
        if isinstance(operand, RegisterOperand):
            return operand.register
        if isinstance(operand, Memory) and operand.base is not None:
            return operand.base
        raise ChainError(f"operand {slot} has no register")

    def _plan_gpr_chain(self, ctx, form, src, dst) -> _Interpret:
        allocator = self._allocator_for(form)
        instr = instantiate(form, allocator)
        src_reg = self._operand_register(instr, src)
        dst_reg = self._operand_register(instr, dst)
        chain = self._movsx_chain(src_reg, dst_reg)
        # Break the destination's own read dependency (if any), but never
        # the source: the chain must feed it (Section 5.2).
        breakers = self._breakers(form, instr, [src], allocator,
                                  form.is_avx)
        handle = ctx.add([instr, chain] + breakers,
                         tag=f"lat:gpr:{form.uid}:{src}->{dst}")
        ctx.calibrate("movsx", self._movsx_code)

        def interpret() -> Optional[LatencyValue]:
            cycles = ctx.counters(handle).cycles
            latency = cycles - ctx.calibration("movsx")
            return LatencyValue(max(latency, 0.0), LAT_EXACT, "MOVSX")

        return interpret

    def _movsx_chain(self, src_reg: Register,
                     dst_reg: Register) -> Instruction:
        """``MOVSX src64, dst16``: a dependency from dst back to src."""
        form = self._db.by_uid("MOVSX_R64_R16")
        return form.instantiate(
            RegisterOperand(sized_view(src_reg, 64)),
            RegisterOperand(sized_view(dst_reg, 16)),
        )

    def _plan_vec_chain(self, ctx, form, src, dst) -> Optional[_Interpret]:
        """Both an integer and a floating-point shuffle chain, keeping the
        smaller result (bypass delays make them differ)."""
        avx = form.is_avx
        shuffles = (
            ("VPSHUFD_XMM_XMM_I8", "VPSHUFD") if avx
            else ("PSHUFD_XMM_XMM_I8", "PSHUFD"),
            ("VSHUFPS_XMM_XMM_XMM_I8", "VSHUFPS") if avx
            else ("SHUFPS_XMM_XMM_I8", "SHUFPS"),
        )
        candidates: List[Tuple[Experiment, str, str]] = []
        for uid, name in shuffles:
            try:
                chain_form = self._db.by_uid(uid)
            except KeyError:
                continue
            if not self._backend.supports(chain_form):
                continue
            handle = self._plan_vec_chain_with(
                ctx, form, src, dst, chain_form
            )
            ctx.calibrate(
                chain_form.uid,
                lambda uid=chain_form.uid: self._shuffle_code(uid),
            )
            candidates.append((handle, chain_form.uid, name))
        if not candidates:
            return None

        def interpret() -> Optional[LatencyValue]:
            best: Optional[LatencyValue] = None
            for handle, cal_key, name in candidates:
                cycles = ctx.counters(handle).cycles
                chain_lat = ctx.calibration(cal_key)
                value = LatencyValue(
                    max(cycles - chain_lat, 0.0), LAT_EXACT, name
                )
                if best is None or value.cycles < best.cycles:
                    best = value
            return best

        return interpret

    def _plan_vec_chain_with(
        self, ctx, form, src, dst, chain_form
    ) -> Experiment:
        allocator = self._allocator_for(form)
        instr = instantiate(form, allocator)
        src_reg = sized_view(self._operand_register(instr, src), 128)
        dst_reg = sized_view(self._operand_register(instr, dst), 128)
        specs = chain_form.explicit_operands
        operands = [RegisterOperand(src_reg)]
        operands.extend(
            RegisterOperand(dst_reg)
            for s in specs[1:]
            if s.kind == OperandKind.VEC
        )
        operands.append(Immediate(0, 8))
        chain = chain_form.instantiate(*operands)
        breakers = self._breakers(form, instr, [src], allocator,
                                  form.is_avx)
        return ctx.add(
            [instr, chain] + breakers,
            tag=f"lat:vec:{form.uid}:{src}->{dst}:{chain_form.uid}",
        )

    def _plan_mmx_chain(self, ctx, form, src, dst) -> _Interpret:
        allocator = self._allocator_for(form)
        instr = instantiate(form, allocator)
        src_reg = self._operand_register(instr, src)
        dst_reg = self._operand_register(instr, dst)
        move = self._db.by_uid("MOVQ_MM_MM")
        chain = move.instantiate(
            RegisterOperand(src_reg), RegisterOperand(dst_reg)
        )
        breakers = self._breakers(form, instr, [src], allocator,
                                  form.is_avx)
        handle = ctx.add([instr, chain] + breakers,
                         tag=f"lat:mmx:{form.uid}:{src}->{dst}")
        ctx.calibrate("movq_mm", self._mmx_move_code)

        def interpret() -> Optional[LatencyValue]:
            cycles = ctx.counters(handle).cycles
            return LatencyValue(
                max(cycles - ctx.calibration("movq_mm"), 0.0), LAT_EXACT,
                "MOVQ",
            )

        return interpret

    #: Transfer instructions for cross-register-file chains, by
    #: (source file of the chain instruction, destination file).
    _TRANSFERS = {
        (OperandKind.VEC, OperandKind.GPR): (
            "MOVQ_R64_XMM", "MOVD_R32_XMM", "PEXTRQ_R64_XMM_I8",
        ),
        (OperandKind.GPR, OperandKind.VEC): (
            "MOVQ_XMM_R64", "MOVD_XMM_R32", "PINSRQ_XMM_R64_I8",
        ),
        (OperandKind.VEC, OperandKind.MMX): ("MOVDQ2Q_MM_XMM",),
        (OperandKind.MMX, OperandKind.VEC): ("MOVQ2DQ_XMM_MM",),
        (OperandKind.GPR, OperandKind.MMX): ("MOVQ_MM_R64",),
        (OperandKind.MMX, OperandKind.GPR): ("MOVQ_R64_MM",),
    }

    def _plan_cross_file_chain(
        self, ctx, form, src, dst
    ) -> Optional[_Interpret]:
        """Compositions with all suitable transfer instructions; the
        minimum, minus one, upper-bounds the latency (Section 5.2.1)."""
        src_spec = form.operands[src]
        dst_spec = form.operands[dst]
        key = (dst_spec.kind, src_spec.kind)  # chain: dst -> src
        uids = self._TRANSFERS.get(key, ())
        candidates: List[Tuple[Experiment, str]] = []
        for uid in uids:
            try:
                chain_form = self._db.by_uid(uid)
            except KeyError:
                continue
            if not self._backend.supports(chain_form):
                continue
            handle = self._plan_composition(ctx, form, src, dst,
                                            chain_form)
            if handle is None:
                continue
            candidates.append((handle, chain_form.mnemonic))
        if not candidates:
            return None

        def interpret() -> Optional[LatencyValue]:
            best: Optional[float] = None
            chain_used = None
            for handle, mnemonic in candidates:
                cycles = ctx.counters(handle).cycles
                if best is None or cycles < best:
                    best = cycles
                    chain_used = mnemonic
            if best is None:
                return None
            return LatencyValue(max(best - 1.0, 0.0), LAT_UPPER_BOUND,
                                chain_used)

        return interpret

    def _plan_composition(
        self, ctx, form, src, dst, chain_form
    ) -> Optional[Experiment]:
        allocator = self._allocator_for(form)
        instr = instantiate(form, allocator)
        src_reg = self._operand_register(instr, src)
        dst_reg = self._operand_register(instr, dst)
        operands = []
        for spec in chain_form.explicit_operands:
            if spec.kind == OperandKind.IMM:
                operands.append(Immediate(0, 8))
            elif spec.written and not spec.read:
                operands.append(
                    RegisterOperand(self._match_width(src_reg, spec))
                )
            elif spec.written and spec.read:
                operands.append(
                    RegisterOperand(self._match_width(src_reg, spec))
                )
            else:
                operands.append(
                    RegisterOperand(self._match_width(dst_reg, spec))
                )
        try:
            chain = chain_form.instantiate(*operands)
        except (ValueError, KeyError):
            return None
        breakers = self._breakers(form, instr, [src], allocator,
                                  form.is_avx)
        return ctx.add(
            [instr, chain] + breakers,
            tag=f"lat:xfile:{form.uid}:{src}->{dst}:{chain_form.uid}",
        )

    @staticmethod
    def _match_width(reg: Register, spec) -> Register:
        if spec.kind == OperandKind.MMX:
            return reg
        return sized_view(reg, spec.width)

    # ------------------------------------------------------------------
    # Memory -> register (Section 5.2.2)
    # ------------------------------------------------------------------

    def _plan_mem_to_reg(
        self, ctx, form, src, dst
    ) -> Optional[_Interpret]:
        allocator = self._allocator_for(form)
        instr = instantiate(form, allocator)
        base = self._operand_register(instr, src)
        dst_spec = form.operands[dst]
        dst_reg = self._operand_register(instr, dst)
        code: List[Instruction] = [instr]
        kind = LAT_EXACT
        widen = False
        transferred = False
        if dst_spec.kind == OperandKind.GPR:
            feed = dst_reg
            if dst_spec.width < 32:
                movsx = self._db.by_uid(
                    f"MOVSX_R64_R{dst_spec.width}"
                )
                temp = allocator.gpr(64)
                code.append(
                    movsx.instantiate(
                        RegisterOperand(temp), RegisterOperand(dst_reg)
                    )
                )
                feed = temp
                widen = True
            feed64 = sized_view(feed, 64)
        else:
            # Combine the double XOR with a transfer to a GPR.
            transfer_uid = {
                OperandKind.VEC: "MOVQ_R64_XMM",
                OperandKind.MMX: "MOVQ_R64_MM",
            }.get(dst_spec.kind)
            if transfer_uid is None:
                return None
            transfer = self._db.by_uid(transfer_uid)
            if not self._backend.supports(transfer):
                return None
            temp = allocator.gpr(64)
            code.append(
                transfer.instantiate(
                    RegisterOperand(temp),
                    RegisterOperand(
                        sized_view(dst_reg, 128)
                        if dst_spec.kind == OperandKind.VEC
                        else dst_reg
                    ),
                )
            )
            feed64 = temp
            transferred = True
            kind = LAT_UPPER_BOUND
        xor = self._db.by_uid("XOR_R64_R64")
        base64 = sized_view(base, 64)
        double_xor = [
            xor.instantiate(
                RegisterOperand(base64), RegisterOperand(feed64)
            ),
            xor.instantiate(
                RegisterOperand(base64), RegisterOperand(feed64)
            ),
        ]
        code.extend(double_xor)
        # Flags breaker: XOR modifies the status flags (Section 5.2.2).
        code.extend(self._flag_breakers(form, allocator))
        breakers = self._breakers(form, instr, [src, FLAGS],
                                  allocator, form.is_avx)
        code.extend(breakers)
        handle = ctx.add(code, tag=f"lat:mem:{form.uid}:{src}->{dst}")
        if widen:
            ctx.calibrate("movsx", self._movsx_code)
        ctx.calibrate("xor", self._xor_code)

        def interpret() -> Optional[LatencyValue]:
            cycles = ctx.counters(handle).cycles
            # Accumulated in the same order as the inline path, so the
            # float result is bit-identical.
            overhead = 0.0
            if widen:
                overhead += ctx.calibration("movsx")
            if transferred:
                overhead += 1.0
            overhead += 2 * ctx.calibration("xor")
            return LatencyValue(max(cycles - overhead, 0.0), kind,
                                "2xXOR")

        return interpret

    # ------------------------------------------------------------------
    # Register -> memory (Section 5.2.4)
    # ------------------------------------------------------------------

    def _plan_reg_to_mem(
        self, ctx, form, src, dst
    ) -> Optional[_Interpret]:
        src_spec = form.operands[src]
        dst_spec = form.operands[dst]
        if src_spec.kind != OperandKind.GPR:
            return None
        if dst_spec.width > 64:
            return None
        allocator = self._allocator_for(form)
        instr = instantiate(form, allocator)
        src_reg = self._operand_register(instr, src)
        mem_operand = instr.operands[dst]
        try:
            load = self._db.by_uid(f"MOV_R{dst_spec.width}_M"
                                   f"{dst_spec.width}")
        except KeyError:
            return None
        temp = allocator.gpr(dst_spec.width)
        load_instr = load.instantiate(RegisterOperand(temp), mem_operand)
        # Chain the loaded value back into the stored source register.
        movsx = self._db.by_uid("MOVSX_R64_R16")
        chain = movsx.instantiate(
            RegisterOperand(sized_view(src_reg, 64)),
            RegisterOperand(sized_view(temp, 16))
            if dst_spec.width >= 16
            else RegisterOperand(sized_view(temp, 16)),
        )
        breakers = self._breakers(form, instr, [src], allocator,
                                  form.is_avx)
        handle = ctx.add([instr, load_instr, chain] + breakers,
                         tag=f"lat:store:{form.uid}:{src}->{dst}")
        ctx.calibrate("movsx", self._movsx_code)

        def interpret() -> Optional[LatencyValue]:
            cycles = ctx.counters(handle).cycles
            return LatencyValue(
                max(cycles - ctx.calibration("movsx"), 0.0),
                LAT_STORE_LOAD,
                "store/load",
            )

        return interpret

    # ------------------------------------------------------------------
    # Flags (Section 5.2.3)
    # ------------------------------------------------------------------

    def _plan_flags_to_flags(self, ctx, form) -> _Interpret:
        allocator = self._allocator_for(form)
        instr = instantiate(form, allocator)
        breakers = self._breakers(form, instr, [FLAGS], allocator,
                                  form.is_avx)
        handle = ctx.add([instr] + breakers,
                         tag=f"lat:flags:{form.uid}")

        def interpret() -> Optional[LatencyValue]:
            cycles = ctx.counters(handle).cycles
            return LatencyValue(max(cycles, 0.0), LAT_EXACT, None)

        return interpret

    def _plan_flags_to_reg(self, ctx, form, dst) -> Optional[_Interpret]:
        dst_spec = form.operands[dst]
        if dst_spec.kind != OperandKind.GPR:
            return None  # no instruction reads a flag and writes a vector
        allocator = self._allocator_for(form)
        instr = instantiate(form, allocator)
        dst_reg = self._operand_register(instr, dst)
        test = self._db.by_uid("TEST_R64_R64")
        reg64 = RegisterOperand(sized_view(dst_reg, 64))
        chain = test.instantiate(reg64, reg64)
        breakers = self._breakers(form, instr, [FLAGS], allocator,
                                  form.is_avx)
        handle = ctx.add([instr, chain] + breakers,
                         tag=f"lat:flags2reg:{form.uid}:{dst}")

        def interpret() -> Optional[LatencyValue]:
            cycles = ctx.counters(handle).cycles
            # TEST is a 1-cycle ALU instruction on every modeled
            # generation.
            return LatencyValue(max(cycles - 1.0, 0.0), LAT_EXACT,
                                "TEST")

        return interpret

    #: SETcc condition per flag, used for register -> flags chains.
    _SET_FOR_FLAG = (
        ("CF", "SETB"),
        ("ZF", "SETE"),
        ("SF", "SETS"),
        ("OF", "SETO"),
        ("PF", "SETP"),
    )

    def _plan_reg_to_flags(self, ctx, form, src) -> Optional[_Interpret]:
        src_spec = form.operands[src]
        if src_spec.kind != OperandKind.GPR:
            return None
        mnemonic = next(
            (m for flag, m in self._SET_FOR_FLAG
             if flag in form.flags_written),
            None,
        )
        if mnemonic is None:
            return None
        allocator = self._allocator_for(form)
        instr = instantiate(form, allocator)
        src_reg = self._operand_register(instr, src)
        setcc = self._db.by_uid(f"{mnemonic}_R8")
        temp8 = allocator.gpr(8)
        set_instr = setcc.instantiate(RegisterOperand(temp8))
        movzx = self._db.by_uid("MOVZX_R64_R8")
        chain = movzx.instantiate(
            RegisterOperand(sized_view(src_reg, 64)),
            RegisterOperand(temp8),
        )
        breakers = self._breakers(form, instr, [src], allocator,
                                  form.is_avx)
        handle = ctx.add([instr, set_instr, chain] + breakers,
                         tag=f"lat:reg2flags:{form.uid}:{src}")

        def interpret() -> Optional[LatencyValue]:
            cycles = ctx.counters(handle).cycles
            return LatencyValue(
                max(cycles - 2.0, 0.0), LAT_UPPER_BOUND,
                f"{mnemonic}+MOVZX"
            )

        return interpret

    # ------------------------------------------------------------------
    # Same-register scenario (Section 5.2.1)
    # ------------------------------------------------------------------

    def _plan_same_register(
        self, ctx, form
    ) -> Optional[Callable[[LatencyResult], None]]:
        """Chain the instruction with itself using one register for two
        explicit operands (detects SHLD-on-Skylake-like behaviour and
        zero idioms)."""
        explicit = [
            (i, s)
            for i, s in enumerate(form.operands)
            if not s.implicit and s.is_register and s.fixed is None
        ]
        reg_pairs = [
            (i, j)
            for (i, si) in explicit
            for (j, sj) in explicit
            if i < j and si.kind == sj.kind and si.width == sj.width
            and (si.written or sj.written)
        ]
        if not reg_pairs:
            return None
        i, j = reg_pairs[0]
        allocator = self._allocator_for(form)
        shared = allocator.for_spec(form.operands[i])
        operands = []
        for k, spec in enumerate(form.explicit_operands):
            if k in (i, j):
                operands.append(RegisterOperand(shared))
            elif spec.fixed is not None:
                operands.append(
                    RegisterOperand(register_by_name(spec.fixed))
                )
            elif spec.is_register:
                operands.append(RegisterOperand(allocator.for_spec(spec)))
            elif spec.kind in (OperandKind.MEM, OperandKind.AGEN):
                operands.append(Memory(allocator.gpr(64), spec.width))
            else:
                operands.append(Immediate(2, spec.width))
        try:
            instr = form.instantiate(*operands)
        except ValueError:
            return None
        breakers = self._breakers(form, instr, [i, j], allocator,
                                  form.is_avx)
        handle = ctx.add([instr] + breakers,
                         tag=f"lat:same:{form.uid}:{i}={j}")
        label_i = form.operand_label(i)
        label_j = form.operand_label(j)

        def interpret(result: LatencyResult) -> None:
            cycles = ctx.counters(handle).cycles
            result.same_register[(label_j, label_i)] = LatencyValue(
                max(cycles, 0.0), LAT_EXACT, "same register"
            )

        return interpret

    # ------------------------------------------------------------------
    # Divider instructions (Section 5.2.5)
    # ------------------------------------------------------------------

    def _plan_divider(self, form, batch: ExperimentBatch):
        if form.category == "div":
            return self._plan_int_divider(form, batch)
        return self._plan_fp_divider(form, batch)

    def _plan_int_divider(self, form, batch: ExperimentBatch):
        allocator = self._allocator_for(form)
        instr = instantiate(form, allocator)
        acc_slot = next(
            i for i, s in enumerate(form.operands)
            if s.implicit and s.read and s.written
        )
        acc = instr.register_operand(acc_slot)
        acc64 = sized_view(acc, 64)
        pin_reg = allocator.gpr(64)
        and_form = self._db.by_uid("AND_R64_R64")
        or_form = self._db.by_uid("OR_R64_R64")
        pin = [
            and_form.instantiate(
                RegisterOperand(acc64), RegisterOperand(pin_reg)
            ),
            or_form.instantiate(
                RegisterOperand(acc64), RegisterOperand(pin_reg)
            ),
        ]
        divisor_slot = 0
        divisor_op = instr.operands[divisor_slot]
        divisor_reg = (
            divisor_op.register.canonical
            if isinstance(divisor_op, RegisterOperand)
            else None
        )
        label = form.operand_label(acc_slot)
        handles = []
        for klass, value in (("slow", SLOW_DIVIDER_VALUE),
                             ("fast", FAST_DIVIDER_VALUE)):
            init = {acc64.name: value, pin_reg.name: value}
            if divisor_reg is not None:
                init[divisor_reg] = DIVISOR_VALUE
            handle = batch.add([instr] + pin, init,
                               tag=f"lat:div:{form.uid}:{klass}")
            handles.append((klass, handle))

        def interpret(results: ResultMap, result: LatencyResult) -> None:
            for klass, handle in handles:
                cycles = results[handle].cycles
                value_obj = LatencyValue(
                    max(cycles - 2.0, 0.0), LAT_EXACT, "AND/OR pin",
                    klass,
                )
                if klass == "slow":
                    result.pairs[(label, label)] = value_obj
                else:
                    result.fast_values[(label, label)] = value_obj

        return interpret

    def _plan_fp_divider(self, form, batch: ExperimentBatch):
        dst_spec = form.operands[0]
        if dst_spec.kind != OperandKind.VEC:
            return None
        allocator = self._allocator_for(form)
        instr = instantiate(form, allocator)
        dst_reg = sized_view(instr.register_operand(0), 128)
        pin_reg = allocator.vec(128)
        avx = form.is_avx
        if avx:
            and_form = self._db.by_uid("VPAND_XMM_XMM_XMM")
            or_form = self._db.by_uid("VPOR_XMM_XMM_XMM")
            pin = [
                and_form.instantiate(
                    RegisterOperand(dst_reg), RegisterOperand(dst_reg),
                    RegisterOperand(pin_reg),
                ),
                or_form.instantiate(
                    RegisterOperand(dst_reg), RegisterOperand(dst_reg),
                    RegisterOperand(pin_reg),
                ),
            ]
        else:
            and_form = self._db.by_uid("PAND_XMM_XMM")
            or_form = self._db.by_uid("POR_XMM_XMM")
            pin = [
                and_form.instantiate(
                    RegisterOperand(dst_reg), RegisterOperand(pin_reg)
                ),
                or_form.instantiate(
                    RegisterOperand(dst_reg), RegisterOperand(pin_reg)
                ),
            ]
        label = form.operand_label(0)
        source_regs = [
            instr.operands[i].register.canonical
            for i, s in enumerate(form.operands)
            if s.read and isinstance(instr.operands[i], RegisterOperand)
        ]
        handles = []
        for klass, value in (("slow", SLOW_DIVIDER_VALUE),
                             ("fast", FAST_DIVIDER_VALUE)):
            init = {pin_reg.canonical: value}
            for name in source_regs:
                init[name] = value
            handle = batch.add([instr] + pin, init,
                               tag=f"lat:div:{form.uid}:{klass}")
            handles.append((klass, handle))

        def interpret(results: ResultMap, result: LatencyResult) -> None:
            for klass, handle in handles:
                cycles = results[handle].cycles
                value_obj = LatencyValue(
                    max(cycles - 2.0, 0.0), LAT_EXACT, "PAND/POR pin",
                    klass,
                )
                if klass == "slow":
                    result.pairs[(label, label)] = value_obj
                else:
                    result.fast_values[(label, label)] = value_obj

        return interpret


def infer_latency(
    form: InstructionForm, backend, database: InstructionDatabase
) -> LatencyResult:
    """Convenience wrapper around :class:`LatencyMeasurer`."""
    return LatencyMeasurer(database, backend).infer(form)
