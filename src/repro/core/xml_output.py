"""Machine-readable XML output (Section 6.4).

The results of the characterization are stored in an XML file modeled on
the uops.info format: one ``<instruction>`` element per variant, with one
``<architecture>`` element per generation, each holding a ``<measurement>``
(hardware) and optionally ``<iaca>`` elements (per analyzed IACA version),
with ``ports=``, ``uops=``, ``TP=`` attributes and per-operand-pair
``<latency>`` children.

Quarantined forms (see :class:`~repro.core.runner.FormFailure`) appear as
annotated ``<failure>`` elements instead of silently vanishing, so a
results file always accounts for every requested variant.  A run without
failures produces byte-identical output to the pre-quarantine format.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Mapping, Optional

from repro.core.result import InstructionCharacterization
from repro.isa.database import InstructionDatabase


def results_to_xml(
    results_by_uarch: Mapping[
        str, Mapping[str, InstructionCharacterization]
    ],
    database: Optional[InstructionDatabase] = None,
    iaca_results: Optional[
        Mapping[str, Mapping[str, Mapping[str, object]]]
    ] = None,
    failures: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> ET.Element:
    """Build the results document.

    Args:
        results_by_uarch: {uarch name: {form uid: characterization}}.
        database: used to annotate forms with extension/category metadata.
        iaca_results: optional {uarch: {version: {form uid: result}}} from
            the IACA backend, stored alongside hardware measurements.
        failures: optional {uarch name: {form uid: FormFailure}} of
            quarantined forms, emitted as ``<failure>`` elements.
    """
    failures = failures or {}
    root = ET.Element("root")
    all_uids = sorted(
        {uid for results in results_by_uarch.values() for uid in results}
        | {uid for per_uarch in failures.values() for uid in per_uarch}
    )
    for uid in all_uids:
        instruction = ET.SubElement(root, "instruction")
        instruction.set("string", uid)
        if database is not None and uid in database:
            form = database.by_uid(uid)
            instruction.set("mnemonic", form.mnemonic)
            instruction.set("extension", form.extension)
            instruction.set("category", form.category)
        for uarch_name in sorted(
            set(results_by_uarch) | set(failures)
        ):
            results = results_by_uarch.get(uarch_name, {})
            quarantined = failures.get(uarch_name, {})
            if uid not in results and uid not in quarantined:
                continue
            architecture = ET.SubElement(instruction, "architecture")
            architecture.set("name", uarch_name)
            if uid in results:
                outcome = results[uid]
                measurement = ET.SubElement(architecture, "measurement")
                _fill_measurement(measurement, outcome)
            else:
                failure = ET.SubElement(architecture, "failure")
                _fill_failure(failure, quarantined[uid])
                continue
            if iaca_results is not None:
                for version, per_form in sorted(
                    iaca_results.get(uarch_name, {}).items()
                ):
                    if uid in per_form:
                        iaca = ET.SubElement(architecture, "iaca")
                        iaca.set("version", version)
                        _fill_iaca(iaca, per_form[uid])
    return root


def _fill_measurement(
    element: ET.Element, outcome: InstructionCharacterization
) -> None:
    element.set("uops", f"{outcome.uop_count:g}")
    if outcome.port_usage is not None:
        element.set("ports", outcome.port_usage.notation())
    if outcome.throughput is not None:
        element.set("TP", f"{outcome.throughput.measured:.2f}")
        if outcome.throughput.computed_from_ports is not None:
            element.set(
                "TP_ports",
                f"{outcome.throughput.computed_from_ports:.2f}",
            )
    if outcome.latency is not None:
        for (src, dst), value in sorted(outcome.latency.pairs.items()):
            latency = ET.SubElement(element, "latency")
            latency.set("start_op", src)
            latency.set("target_op", dst)
            latency.set("cycles", f"{value.cycles:g}")
            if value.kind != "exact":
                latency.set("kind", value.kind)
            if value.chain:
                latency.set("chain", value.chain)
        for (src, dst), value in sorted(
            outcome.latency.same_register.items()
        ):
            latency = ET.SubElement(element, "latency")
            latency.set("start_op", src)
            latency.set("target_op", dst)
            latency.set("cycles", f"{value.cycles:g}")
            latency.set("same_reg", "1")
        for (src, dst), value in sorted(
            outcome.latency.fast_values.items()
        ):
            latency = ET.SubElement(element, "latency")
            latency.set("start_op", src)
            latency.set("target_op", dst)
            latency.set("cycles", f"{value.cycles:g}")
            latency.set("value_class", "fast")


def _fill_failure(element: ET.Element, failure) -> None:
    """Annotate one quarantined form (a
    :class:`~repro.core.runner.FormFailure`)."""
    element.set("phase", failure.phase)
    element.set("error_type", failure.error_type)
    element.set("attempts", str(failure.attempts))
    if failure.shard is not None:
        element.set("shard", str(failure.shard))
    element.set("message", failure.message)


def _fill_iaca(element: ET.Element, result) -> None:
    uops = result.get("uops") if isinstance(result, dict) else None
    ports = result.get("ports") if isinstance(result, dict) else None
    if uops is not None:
        element.set("uops", f"{uops:g}")
    if ports is not None:
        element.set("ports", ports)


def write_xml(root: ET.Element, path: str) -> None:
    """Serialize with indentation for human inspection."""
    _indent(root)
    ET.ElementTree(root).write(path, encoding="unicode",
                               xml_declaration=True)


def _indent(element: ET.Element, level: int = 0) -> None:
    pad = "\n" + "  " * level
    if len(element):
        if not element.text or not element.text.strip():
            element.text = pad + "  "
        for child in element:
            _indent(child, level + 1)
            if not child.tail or not child.tail.strip():
                child.tail = pad + "  "
        if not element[-1].tail or not element[-1].tail.strip():
            element[-1].tail = pad
    elif level and (not element.tail or not element.tail.strip()):
        element.tail = pad
