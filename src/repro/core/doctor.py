"""``repro doctor``: integrity scan and repair of the persistent stores.

A crashed sweep leaves recognizable debris in the cache directory: a
torn final line in a JSONL store (the writer died mid-append), a
CRC-damaged mid-file line (bit rot, interleaved unlocked writers), a
work-queue lease whose owner is gone, a ``.tmp.<pid>`` publish that
never reached its rename, a lock file whose store was GC'd, or a
manifest that claims a form was resolved while the result store holds
no bytes for it.  Doctor walks every store, classifies each of these
into a :class:`Finding` with an explicit repair plan, and — with
``--repair`` — applies the plan:

========================  ==============================================
finding                   repair
========================  ==============================================
``torn-tail``             truncate the store at the torn offset
``corrupt-lines``         quarantine damaged lines to ``<store>.quarantine``,
                          rewrite the intact records in place
``torn-queue``            remove the undecodable queue (drainers rebuild
                          it from an enqueue)
``torn-manifest``         quarantine the undecodable manifest (the next
                          full sweep rebuilds it)
``orphaned-lease``        return expired leases to pending
``stale-lock``            remove the lock file (its store is gone)
``stray-tmp``             remove the unpublished temp file
``missing-result``        withdraw the manifest claim and re-enqueue the
                          form for re-measurement
========================  ==============================================

Repair is **lease-aware** like GC: it refuses to mutate stores while
any queue holds an unexpired lease (:class:`~repro.core.cache.
LiveLeaseError`; ``--force`` overrides).  Reads are lockless — the
atomic-rename publish and line-granular appends make any observed
snapshot consistent — so a plain ``repro doctor`` scan is always safe
to run, even under live drainers.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Dict, List, Optional

from repro.core.cache import (
    LiveLeaseError,
    MeasurementMemo,
    SweepManifest,
    cache_salt,
    default_cache_dir,
)
from repro.core.journal import (
    flock_bounded,
    quarantine_lines,
    release_flock,
    scan_journal,
    trace_event,
)
from repro.core.workqueue import (
    WorkQueue,
    WorkUnit,
    live_lease_count,
    read_queue_state,
)


@dataclasses.dataclass
class Finding:
    """One diagnosed problem and its repair plan."""

    store: str
    kind: str
    detail: str
    repair: str
    repairable: bool = True
    #: Kind-specific repair context (e.g. the uids of missing results).
    context: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "store": os.path.basename(self.store),
            "kind": self.kind,
            "detail": self.detail,
            "repair": self.repair,
            "repairable": self.repairable,
        }


class DoctorReport:
    """The result of one :func:`diagnose` pass."""

    def __init__(
        self,
        cache_dir: str,
        findings: List[Finding],
        stores_scanned: int,
        live_leases: int,
    ):
        self.cache_dir = cache_dir
        self.findings = findings
        self.stores_scanned = stores_scanned
        self.live_leases = live_leases

    @property
    def healthy(self) -> bool:
        return not self.findings

    def to_json(self) -> Dict[str, Any]:
        return {
            "cache_dir": self.cache_dir,
            "healthy": self.healthy,
            "stores_scanned": self.stores_scanned,
            "live_leases": self.live_leases,
            "findings": [
                finding.as_dict() for finding in self.findings
            ],
        }

    def render_text(self) -> str:
        lines = [
            f"doctor: scanned {self.stores_scanned} store(s) in "
            f"{self.cache_dir} ({self.live_leases} live lease(s))"
        ]
        if self.healthy:
            lines.append("doctor: all stores healthy")
        for finding in self.findings:
            name = os.path.basename(finding.store)
            lines.append(
                f"  [{finding.kind}] {name}: {finding.detail}"
                f" -> {finding.repair}"
            )
        return "\n".join(lines)


def _quarantine_path(path: str) -> str:
    return path + ".quarantine"


def _diagnose_jsonl(path: str, findings: List[Finding]) -> None:
    scan = scan_journal(path)
    if scan.torn:
        torn = next(
            record for record in scan.records
            if record.problem == "torn"
        )
        findings.append(Finding(
            store=path,
            kind="torn-tail",
            detail=(
                f"unparsable final line at byte {torn.offset} "
                "(writer died mid-append)"
            ),
            repair=f"truncate at byte {torn.offset}",
        ))
    if scan.corrupt:
        findings.append(Finding(
            store=path,
            kind="corrupt-lines",
            detail=(
                f"{scan.corrupt} damaged line(s) mid-file "
                "(CRC mismatch, malformed record, or garbage)"
            ),
            repair=(
                "quarantine damaged lines to "
                f"{os.path.basename(_quarantine_path(path))} and "
                "rewrite intact records"
            ),
        ))


def diagnose(
    cache_dir: Optional[str] = None,
    salt: Optional[str] = None,
) -> DoctorReport:
    """Scan every store under *cache_dir*; mutate nothing."""
    cache_dir = cache_dir or default_cache_dir()
    salt = salt if salt is not None else cache_salt()
    findings: List[Finding] = []
    scanned = 0
    live_leases = 0
    if not os.path.isdir(cache_dir):
        return DoctorReport(cache_dir, findings, scanned, live_leases)
    names = sorted(os.listdir(cache_dir))
    present = set(names)
    manifest = SweepManifest(cache_dir, salt=salt)

    for name in names:
        path = os.path.join(cache_dir, name)
        if ".tmp." in name:
            scanned += 1
            findings.append(Finding(
                store=path,
                kind="stray-tmp",
                detail="unpublished temp file from a crashed rename",
                repair="remove",
            ))
        elif name.endswith(".lock"):
            scanned += 1
            if name[: -len(".lock")] not in present:
                findings.append(Finding(
                    store=path,
                    kind="stale-lock",
                    detail="lock file whose store no longer exists",
                    repair="remove",
                ))
        elif name.endswith(WorkQueue.SUFFIX):
            scanned += 1
            state = read_queue_state(path, salt)
            if state is None and os.path.getsize(path) > 0:
                findings.append(Finding(
                    store=path,
                    kind="torn-queue",
                    detail=(
                        "queue state is undecodable or from another "
                        "code version"
                    ),
                    repair="remove (drainers rebuild from an enqueue)",
                ))
                continue
            live_leases += live_lease_count(state)
            orphaned = 0
            if state is not None:
                now = time.time()
                orphaned = sum(
                    1 for raw in state["units"].values()
                    if raw.get("state") == "leased"
                    and raw.get("expires", 0) <= now
                )
            if orphaned:
                findings.append(Finding(
                    store=path,
                    kind="orphaned-lease",
                    detail=(
                        f"{orphaned} expired lease(s) whose owners "
                        "are gone"
                    ),
                    repair="release to pending",
                ))
        elif name.endswith(SweepManifest.SUFFIX):
            scanned += 1
            state = manifest._load(name[: -len(SweepManifest.SUFFIX)])
            if not state["configs"] and os.path.getsize(path) > 0:
                findings.append(Finding(
                    store=path,
                    kind="torn-manifest",
                    detail=(
                        "manifest is undecodable or from another "
                        "code version"
                    ),
                    repair=(
                        "quarantine (the next full sweep rebuilds it)"
                    ),
                ))
        elif name.endswith(MeasurementMemo.SUFFIX):
            scanned += 1
            _diagnose_jsonl(path, findings)
        elif name.endswith(".jsonl"):
            scanned += 1
            _diagnose_jsonl(path, findings)
            uarch_name = name[: -len(".jsonl")]
            missing = _missing_results(
                cache_dir, uarch_name, salt, manifest
            )
            if missing:
                findings.append(Finding(
                    store=path,
                    kind="missing-result",
                    detail=(
                        f"{len(missing)} form(s) the manifest claims "
                        "resolved but the store holds no bytes for: "
                        + ", ".join(sorted(missing)[:5])
                        + ("..." if len(missing) > 5 else "")
                    ),
                    repair=(
                        "withdraw manifest claim and re-enqueue for "
                        "re-measurement"
                    ),
                    context={"uarch": uarch_name, "missing": missing},
                ))
    return DoctorReport(cache_dir, findings, scanned, live_leases)


def _missing_results(
    cache_dir: str,
    uarch_name: str,
    salt: str,
    manifest: SweepManifest,
) -> Dict[str, str]:
    """``uid -> key`` of manifest-claimed forms absent from the store
    (only *valid* current-salt records count as present — a claim whose
    bytes are torn or corrupt is missing)."""
    state = manifest._load(uarch_name)
    claimed: Dict[str, str] = {}
    for recorded in state["configs"].values():
        entries = recorded.get("entries")
        if not isinstance(entries, dict):
            continue
        for uid, entry in entries.items():
            if isinstance(entry, dict) and "key" in entry:
                claimed[uid] = entry["key"]
    if not claimed:
        return {}
    scan = scan_journal(
        os.path.join(cache_dir, f"{uarch_name}.jsonl")
    )
    stored = {
        entry["key"] for entry in scan.entries()
        if entry.get("salt") == salt
    }
    return {
        uid: key for uid, key in claimed.items()
        if key not in stored
    }


# ---------------------------------------------------------------------------
# Repairs
# ---------------------------------------------------------------------------


def _repair_jsonl(path: str) -> None:
    """Truncate a torn tail and quarantine mid-file damage, in place
    under the appenders' flock."""
    try:
        handle = open(path, "r+b")
    except OSError:
        return
    with handle:
        locked, _ = flock_bounded(handle, salt=path, name="store")
        try:
            trace_event("write", store="repair")
            scan = scan_journal(path)
            damaged = [
                record.raw for record in scan.records
                if record.problem not in (None, "torn")
            ]
            if damaged:
                quarantine_lines(_quarantine_path(path), damaged)
            if damaged or scan.torn:
                # Byte-preserving rewrite of the intact records (raw
                # lines, not re-encoded — doctor never rewrites what it
                # did not diagnose).
                intact = [
                    record.raw for record in scan.records
                    if record.problem is None
                ]
                handle.seek(0)
                handle.truncate()
                if intact:
                    handle.write(b"\n".join(intact) + b"\n")
                handle.flush()
                os.fsync(handle.fileno())
        finally:
            release_flock(handle, locked, name="store")


def _apply(finding: Finding, cache_dir: str, salt: str) -> None:
    path = finding.store
    if finding.kind in ("torn-tail", "corrupt-lines"):
        _repair_jsonl(path)
    elif finding.kind in ("stray-tmp", "stale-lock"):
        try:
            os.remove(path)
        except OSError:
            pass
    elif finding.kind == "torn-queue":
        for victim in (path, path + ".lock"):
            try:
                os.remove(victim)
            except OSError:
                pass
    elif finding.kind == "torn-manifest":
        try:
            os.replace(path, _quarantine_path(path))
        except OSError:
            pass
        try:
            os.remove(path + ".lock")
        except OSError:
            pass
    elif finding.kind == "orphaned-lease":
        name = os.path.basename(path)[: -len(WorkQueue.SUFFIX)]
        WorkQueue(cache_dir, name, salt=salt).release_expired()
    elif finding.kind == "missing-result":
        context = finding.context or {}
        uarch_name = context.get("uarch")
        missing: Dict[str, str] = context.get("missing", {})
        if not uarch_name or not missing:
            return
        SweepManifest(cache_dir, salt=salt).prune(
            uarch_name, missing.keys()
        )
        WorkQueue(cache_dir, uarch_name, salt=salt).enqueue([
            WorkUnit(key=key, uid=uid)
            for uid, key in sorted(missing.items())
        ])


#: Repair passes before giving up: one repair can surface the next
#: finding (a removed torn queue leaves a stale lock; a truncated tail
#: may reveal a missing result), so doctor re-diagnoses until the scan
#: comes back healthy or the fixpoint budget runs out.
MAX_REPAIR_PASSES = 3


def repair(
    cache_dir: Optional[str] = None,
    salt: Optional[str] = None,
    force: bool = False,
) -> DoctorReport:
    """Diagnose-and-repair to a fixpoint; returns the final report.

    Raises :class:`~repro.core.cache.LiveLeaseError` when any queue
    holds an unexpired lease and *force* is not set — repairing under
    live drainers could truncate a line one of them is about to read.
    """
    cache_dir = cache_dir or default_cache_dir()
    salt = salt if salt is not None else cache_salt()
    report = diagnose(cache_dir, salt=salt)
    if report.live_leases and not force:
        live = []
        for name in sorted(os.listdir(cache_dir)):
            if not name.endswith(WorkQueue.SUFFIX):
                continue
            path = os.path.join(cache_dir, name)
            count = live_lease_count(read_queue_state(path, salt))
            if count:
                live.append((path, count))
        raise LiveLeaseError(live)
    for _ in range(MAX_REPAIR_PASSES):
        if report.healthy:
            break
        for finding in report.findings:
            if finding.repairable:
                _apply(finding, cache_dir, salt)
        report = diagnose(cache_dir, salt=salt)
    return report
