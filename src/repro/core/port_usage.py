"""Algorithm 1: inferring the port usage of an instruction.

For each port combination (sorted by size), the instruction under test is
concatenated with ``blockRep`` copies of the combination's blocking
instruction; the µops measured on the combination's ports, minus the
blocking µops and minus the µops already attributed to strict subsets, can
execute on exactly that combination.

The two optimizations described in the paper are implemented: combinations
that share no port with the isolation run are skipped, and the loop exits
early once all of the instruction's µops are attributed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.blocking import BlockingInstructions
from repro.core.codegen import (
    RegisterAllocator,
    form_fixed_canonicals,
    independent_sequence,
    instantiate,
    used_ports,
)
from repro.core.experiment import ExperimentBatch, Plan
from repro.core.result import PortUsage
from repro.isa.instruction import Instruction, InstructionForm

#: Maximum number of ports on the modeled generations (Section 5.1.2 uses
#: blockRep = maxLatency * max number of ports; Algorithm 1 shows 8).
_MAX_PORTS = 8


def infer_port_usage(
    form: InstructionForm,
    backend,
    blocking: BlockingInstructions,
    max_latency: Optional[float] = None,
) -> PortUsage:
    """Infer the port usage of *form* on *backend* (Algorithm 1).

    One-shot wrapper around :func:`plan_port_usage`.
    """
    from repro.measure.executor import ExperimentExecutor

    return ExperimentExecutor(backend).drive(
        plan_port_usage(form, blocking, max_latency)
    )


def plan_port_usage(
    form: InstructionForm,
    blocking: BlockingInstructions,
    max_latency: Optional[float] = None,
) -> Plan:
    """Plan Algorithm 1 for *form*: one isolation round, then one
    blocking measurement per live port combination.

    The per-combination rounds are adaptive — strict-subset counts feed
    the next subtraction, and the loop exits early once every µop is
    attributed — so they are yielded one at a time rather than as one
    batch.
    """
    context = blocking.context_for(form)

    first = ExperimentBatch()
    iso_code = independent_sequence(form, 4)
    iso = first.add(iso_code, tag=f"ports:iso:{form.uid}")
    chain = None
    if max_latency is None:
        # Algorithm 1 (line 4) sizes blockRep from the instruction's
        # maximum latency, which the latency phase normally provides.
        # Estimate it with one self-chained run: a single instance
        # repeated back-to-back is an upper-bound critical path.
        chain = first.add(
            _self_chain_code(form), tag=f"ports:chain:{form.uid}"
        )
    results = yield first

    isolation = results[iso].scaled(len(iso_code))
    total_uops = isolation.uops
    ports_in_isolation = used_ports(isolation)
    if chain is not None:
        max_latency = max(1.0, results[chain].cycles)
    # blockRep must both outlast the instruction's critical path (the
    # paper's maxLatency * maxPorts term) and outnumber its µops on every
    # blocked port, so that no µop can sneak onto a blocked port.
    block_rep = max(
        8,
        int(round(_MAX_PORTS * max_latency)),
        int(round(_MAX_PORTS * (total_uops + 1))),
    )

    combinations = sorted(
        blocking.combinations(context), key=lambda c: (len(c), sorted(c))
    )

    uops_for_combination: List = []  # [(combination, count)]
    attributed = 0
    for combination in combinations:
        if not combination & ports_in_isolation:
            continue  # optimization: cannot hold µops of this instruction
        blocker_form = blocking.blocker(context, combination)
        if blocker_form is None:
            continue
        batch = ExperimentBatch()
        handle = batch.add(
            _blocking_code(form, blocker_form, block_rep),
            tag=f"ports:block:{form.uid}:{'.'.join(map(str, sorted(combination)))}",
        )
        results = yield batch
        counters = results[handle]
        measured = sum(
            counters.port_uops.get(p, 0.0) for p in combination
        )
        blocker_uops = block_rep  # each copy holds 1 µop on these ports
        uops = measured - blocker_uops
        for prior_combination, prior_uops in uops_for_combination:
            if prior_combination < combination:
                uops -= prior_uops
        count = int(round(uops))
        if count > 0:
            uops_for_combination.append((combination, count))
            attributed += count
        if attributed >= round(total_uops):
            break  # optimization: every µop accounted for

    return PortUsage(dict(uops_for_combination))


def _self_chain_code(form: InstructionForm) -> List[Instruction]:
    """One instance of the form, to be repeated by the measurement
    protocol; self-chaining yields a latency upper bound."""
    return [instantiate(form)]


def _blocking_code(
    form: InstructionForm,
    blocker_form: InstructionForm,
    block_rep: int,
) -> List[Instruction]:
    """``blockRep`` independent copies of the blocker, then the instruction.

    Blocker operands are chosen independent of the instruction under test
    and of subsequent blocker instances (Section 5.1.2).
    """
    allocator = RegisterAllocator(
        form_fixed_canonicals(form) | form_fixed_canonicals(blocker_form)
    )
    instruction = instantiate(form, allocator)
    blockers = []
    blocker_allocator = _looping_allocator(blocker_form, allocator)
    for _ in range(block_rep):
        blockers.append(next(blocker_allocator))
    return blockers + [instruction]


def _looping_allocator(blocker_form, base_allocator):
    """Yields blocker instances, cycling register assignments."""
    reserved = base_allocator.reserved()
    while True:
        allocator = RegisterAllocator(
            reserved | form_fixed_canonicals(blocker_form)
        )
        try:
            while True:
                yield instantiate(blocker_form, allocator)
        except RuntimeError:
            continue
