"""Result types of the characterization algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple


@dataclass(frozen=True)
class PortUsage:
    """Inferred port usage (Section 4.3).

    ``counts`` maps each port combination to the number of µops whose
    functional units sit exactly at those ports.  The paper's notation
    ``3*p015 + 1*p23`` is produced by :meth:`notation`.
    """

    counts: Mapping[FrozenSet[int], int]

    def notation(self) -> str:
        parts = []
        for combination in sorted(self.counts, key=lambda c: sorted(c)):
            count = self.counts[combination]
            ports = "".join(str(p) for p in sorted(combination))
            parts.append(f"{count}*p{ports}")
        return " + ".join(parts) if parts else "0"

    @property
    def total_uops(self) -> int:
        return sum(self.counts.values())

    def as_sorted_tuple(self) -> Tuple[Tuple[Tuple[int, ...], int], ...]:
        """Canonical hashable representation, for comparisons."""
        return tuple(
            sorted(
                (tuple(sorted(combination)), count)
                for combination, count in self.counts.items()
            )
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, PortUsage):
            return NotImplemented
        return self.as_sorted_tuple() == other.as_sorted_tuple()

    def __hash__(self) -> int:
        return hash(self.as_sorted_tuple())


#: Kinds of latency values (how the number was obtained).
LAT_EXACT = "exact"  # dependency chain with known chain latency
LAT_UPPER_BOUND = "upper_bound"  # composition with minimal chain (Sec 5.2.1)
LAT_STORE_LOAD = "store_load"  # store->load round trip (Section 5.2.4)


@dataclass(frozen=True)
class LatencyValue:
    """One measured latency for a (source, destination) operand pair."""

    cycles: float
    kind: str = LAT_EXACT
    chain: Optional[str] = None  # chain instruction used, if any
    value_class: Optional[str] = None  # "fast"/"slow" for divider operands

    def __str__(self) -> str:
        prefix = "≤" if self.kind == LAT_UPPER_BOUND else ""
        return f"{prefix}{self.cycles:g}"


@dataclass
class LatencyResult:
    """Per operand-pair latency mapping (Section 4.1).

    Keys are (source label, destination label); labels are operand slot
    names (``op1``, ``op2``, fixed register names) or the pseudo-operands
    ``flags`` and ``mem``.
    """

    pairs: Dict[Tuple[str, str], LatencyValue] = field(default_factory=dict)
    #: Measurements for the same-register scenario (Section 5.2.1), when
    #: applicable: e.g. SHLD on Skylake has a different latency there.
    same_register: Dict[Tuple[str, str], LatencyValue] = field(
        default_factory=dict
    )
    #: For divider instructions: latencies with low-latency operand values
    #: (Section 5.2.5); ``pairs`` holds the high-latency measurements.
    fast_values: Dict[Tuple[str, str], LatencyValue] = field(
        default_factory=dict
    )

    def max_latency(self) -> float:
        values = [v.cycles for v in self.pairs.values()]
        return max(values) if values else 1.0

    def get(self, src: str, dst: str) -> Optional[LatencyValue]:
        return self.pairs.get((src, dst))


@dataclass
class ThroughputResult:
    """Throughput measurements and computation (Sections 5.3.1, 5.3.2)."""

    #: Fog-style measured throughput: min cycles/instruction over the
    #: tested sequence lengths (Definition 2), considering also the
    #: dependency-breaking variants.
    measured: float
    #: Fog's definition taken literally ("instructions of the same kind in
    #: the same thread"): min over plain sequences, without breakers.  For
    #: instructions with implicit read+write operands (e.g. CMC) this can
    #: be much higher than Intel's port-based throughput.
    measured_same_kind: float = 0.0
    #: cycles/instruction per tested sequence length.
    by_sequence_length: Dict[int, float] = field(default_factory=dict)
    #: Intel-style throughput computed from the port usage via the linear
    #: program of Section 5.3.2 (Definition 1); None for divider users.
    computed_from_ports: Optional[float] = None
    #: For divider instructions: measured throughput with fast operands.
    measured_fast_values: Optional[float] = None


@dataclass
class InstructionCharacterization:
    """Everything the tool reports for one instruction variant."""

    form_uid: str
    uarch_name: str
    uop_count: float
    port_usage: Optional[PortUsage] = None
    latency: Optional[LatencyResult] = None
    throughput: Optional[ThroughputResult] = None
    notes: Tuple[str, ...] = ()

    def summary(self) -> str:
        parts = [f"{self.form_uid} [{self.uarch_name}]"]
        parts.append(f"uops={self.uop_count:g}")
        if self.port_usage is not None:
            parts.append(f"ports={self.port_usage.notation()}")
        if self.throughput is not None:
            parts.append(f"tp={self.throughput.measured:.2f}")
        if self.latency is not None and self.latency.pairs:
            lat = ", ".join(
                f"{src}->{dst}: {value}"
                for (src, dst), value in sorted(self.latency.pairs.items())
            )
            parts.append(f"lat({lat})")
        return " ".join(parts)
