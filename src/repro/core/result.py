"""Result types of the characterization algorithms.

Besides the dataclasses themselves, this module provides a stable,
JSON-compatible round-trip encoding (:func:`encode_characterization` /
:func:`decode_characterization`).  It is the wire format of the sweep
engine's persistent result cache and of its worker processes, so it must
be lossless: every field — port-usage maps keyed by frozensets,
per-operand-pair latency dicts keyed by tuples, notes — survives
``decode(encode(x)) == x`` exactly, preserving numeric types (ints stay
ints, floats stay floats; JSON's ``repr``-based float serialization is
exact).

Contract (enforced by ``repro lint``, RPR101/RPR102): the encoding must
be byte-deterministic — equal values encode to equal JSON — because the
persistent cache compares and content-hashes these strings.  Frozenset
keys are therefore serialized through ``sorted(...)``, never iterated
raw."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class PortUsage:
    """Inferred port usage (Section 4.3).

    ``counts`` maps each port combination to the number of µops whose
    functional units sit exactly at those ports.  The paper's notation
    ``3*p015 + 1*p23`` is produced by :meth:`notation`.
    """

    counts: Mapping[FrozenSet[int], int]

    def notation(self) -> str:
        parts = []
        for combination in sorted(self.counts, key=lambda c: sorted(c)):
            count = self.counts[combination]
            ports = "".join(str(p) for p in sorted(combination))
            parts.append(f"{count}*p{ports}")
        return " + ".join(parts) if parts else "0"

    @property
    def total_uops(self) -> int:
        return sum(self.counts.values())

    def as_sorted_tuple(self) -> Tuple[Tuple[Tuple[int, ...], int], ...]:
        """Canonical hashable representation, for comparisons."""
        return tuple(
            sorted(
                (tuple(sorted(combination)), count)
                for combination, count in self.counts.items()
            )
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, PortUsage):
            return NotImplemented
        return self.as_sorted_tuple() == other.as_sorted_tuple()

    def __hash__(self) -> int:
        return hash(self.as_sorted_tuple())


#: Kinds of latency values (how the number was obtained).
LAT_EXACT = "exact"  # dependency chain with known chain latency
LAT_UPPER_BOUND = "upper_bound"  # composition with minimal chain (Sec 5.2.1)
LAT_STORE_LOAD = "store_load"  # store->load round trip (Section 5.2.4)


@dataclass(frozen=True)
class LatencyValue:
    """One measured latency for a (source, destination) operand pair."""

    cycles: float
    kind: str = LAT_EXACT
    chain: Optional[str] = None  # chain instruction used, if any
    value_class: Optional[str] = None  # "fast"/"slow" for divider operands

    def __str__(self) -> str:
        prefix = "≤" if self.kind == LAT_UPPER_BOUND else ""
        return f"{prefix}{self.cycles:g}"


@dataclass
class LatencyResult:
    """Per operand-pair latency mapping (Section 4.1).

    Keys are (source label, destination label); labels are operand slot
    names (``op1``, ``op2``, fixed register names) or the pseudo-operands
    ``flags`` and ``mem``.
    """

    pairs: Dict[Tuple[str, str], LatencyValue] = field(default_factory=dict)
    #: Measurements for the same-register scenario (Section 5.2.1), when
    #: applicable: e.g. SHLD on Skylake has a different latency there.
    same_register: Dict[Tuple[str, str], LatencyValue] = field(
        default_factory=dict
    )
    #: For divider instructions: latencies with low-latency operand values
    #: (Section 5.2.5); ``pairs`` holds the high-latency measurements.
    fast_values: Dict[Tuple[str, str], LatencyValue] = field(
        default_factory=dict
    )

    def max_latency(self) -> float:
        values = [v.cycles for v in self.pairs.values()]
        return max(values) if values else 1.0

    def get(self, src: str, dst: str) -> Optional[LatencyValue]:
        return self.pairs.get((src, dst))


@dataclass
class ThroughputResult:
    """Throughput measurements and computation (Sections 5.3.1, 5.3.2)."""

    #: Fog-style measured throughput: min cycles/instruction over the
    #: tested sequence lengths (Definition 2), considering also the
    #: dependency-breaking variants.
    measured: float
    #: Fog's definition taken literally ("instructions of the same kind in
    #: the same thread"): min over plain sequences, without breakers.  For
    #: instructions with implicit read+write operands (e.g. CMC) this can
    #: be much higher than Intel's port-based throughput.
    measured_same_kind: float = 0.0
    #: cycles/instruction per tested sequence length.
    by_sequence_length: Dict[int, float] = field(default_factory=dict)
    #: Intel-style throughput computed from the port usage via the linear
    #: program of Section 5.3.2 (Definition 1); None for divider users.
    computed_from_ports: Optional[float] = None
    #: For divider instructions: measured throughput with fast operands.
    measured_fast_values: Optional[float] = None


@dataclass
class InstructionCharacterization:
    """Everything the tool reports for one instruction variant."""

    form_uid: str
    uarch_name: str
    uop_count: float
    port_usage: Optional[PortUsage] = None
    latency: Optional[LatencyResult] = None
    throughput: Optional[ThroughputResult] = None
    notes: Tuple[str, ...] = ()

    def summary(self) -> str:
        parts = [f"{self.form_uid} [{self.uarch_name}]"]
        parts.append(f"uops={self.uop_count:g}")
        if self.port_usage is not None:
            parts.append(f"ports={self.port_usage.notation()}")
        if self.throughput is not None:
            parts.append(f"tp={self.throughput.measured:.2f}")
        if self.latency is not None and self.latency.pairs:
            lat = ", ".join(
                f"{src}->{dst}: {value}"
                for (src, dst), value in sorted(self.latency.pairs.items())
            )
            parts.append(f"lat({lat})")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# Round-trip encoding (cache entries, sweep-worker results)
# ---------------------------------------------------------------------------
#
# Dict keys that are not strings (frozensets of ports, (src, dst) tuples,
# sequence lengths) are encoded as [key, value] lists so that JSON cannot
# coerce their types; entries are sorted so the encoding is canonical.


def _encode_latency_value(value: LatencyValue) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {"cycles": value.cycles}
    if value.kind != LAT_EXACT:
        encoded["kind"] = value.kind
    if value.chain is not None:
        encoded["chain"] = value.chain
    if value.value_class is not None:
        encoded["value_class"] = value.value_class
    return encoded


def _decode_latency_value(encoded: Mapping[str, Any]) -> LatencyValue:
    return LatencyValue(
        cycles=encoded["cycles"],
        kind=encoded.get("kind", LAT_EXACT),
        chain=encoded.get("chain"),
        value_class=encoded.get("value_class"),
    )


def _encode_pairs(
    pairs: Mapping[Tuple[str, str], LatencyValue]
) -> List[List[Any]]:
    return [
        [src, dst, _encode_latency_value(value)]
        for (src, dst), value in sorted(pairs.items())
    ]


def _decode_pairs(
    encoded: List[List[Any]],
) -> Dict[Tuple[str, str], LatencyValue]:
    return {
        (src, dst): _decode_latency_value(value)
        for src, dst, value in encoded
    }


def encode_characterization(
    outcome: InstructionCharacterization,
) -> Dict[str, Any]:
    """A JSON-compatible dict that :func:`decode_characterization` inverts."""
    encoded: Dict[str, Any] = {
        "form_uid": outcome.form_uid,
        "uarch_name": outcome.uarch_name,
        "uop_count": outcome.uop_count,
    }
    if outcome.port_usage is not None:
        encoded["port_usage"] = [
            [list(ports), count]
            for ports, count in outcome.port_usage.as_sorted_tuple()
        ]
    if outcome.latency is not None:
        encoded["latency"] = {
            "pairs": _encode_pairs(outcome.latency.pairs),
            "same_register": _encode_pairs(outcome.latency.same_register),
            "fast_values": _encode_pairs(outcome.latency.fast_values),
        }
    if outcome.throughput is not None:
        throughput = outcome.throughput
        encoded["throughput"] = {
            "measured": throughput.measured,
            "measured_same_kind": throughput.measured_same_kind,
            "by_sequence_length": sorted(
                [n, cycles]
                for n, cycles in throughput.by_sequence_length.items()
            ),
            "computed_from_ports": throughput.computed_from_ports,
            "measured_fast_values": throughput.measured_fast_values,
        }
    if outcome.notes:
        encoded["notes"] = list(outcome.notes)
    return encoded


def decode_characterization(
    encoded: Mapping[str, Any],
) -> InstructionCharacterization:
    """Inverse of :func:`encode_characterization`."""
    port_usage = None
    if "port_usage" in encoded:
        port_usage = PortUsage(
            {
                frozenset(ports): count
                for ports, count in encoded["port_usage"]
            }
        )
    latency = None
    if "latency" in encoded:
        latency = LatencyResult(
            pairs=_decode_pairs(encoded["latency"]["pairs"]),
            same_register=_decode_pairs(
                encoded["latency"]["same_register"]
            ),
            fast_values=_decode_pairs(encoded["latency"]["fast_values"]),
        )
    throughput = None
    if "throughput" in encoded:
        raw = encoded["throughput"]
        throughput = ThroughputResult(
            measured=raw["measured"],
            measured_same_kind=raw["measured_same_kind"],
            by_sequence_length={
                n: cycles for n, cycles in raw["by_sequence_length"]
            },
            computed_from_ports=raw["computed_from_ports"],
            measured_fast_values=raw["measured_fast_values"],
        )
    return InstructionCharacterization(
        form_uid=encoded["form_uid"],
        uarch_name=encoded["uarch_name"],
        uop_count=encoded["uop_count"],
        port_usage=port_usage,
        latency=latency,
        throughput=throughput,
        notes=tuple(encoded.get("notes", ())),
    )


def encode_counters(counters) -> Dict[str, Any]:
    """JSON encoding of one :class:`~repro.pipeline.core.CounterValues`.

    The wire format of the measurement memo, so it follows the same
    losslessness rule as :func:`encode_characterization`: port keys are
    encoded as ``[port, count]`` lists (JSON would coerce them to
    strings) and numeric types survive exactly (``repr``-based float
    serialization round-trips bit-identically).
    """
    return {
        "cycles": counters.cycles,
        "ports": sorted(
            [port, count] for port, count in counters.port_uops.items()
        ),
        "uops": counters.uops,
        "instructions": counters.instructions,
        "uops_fused": counters.uops_fused,
    }


def decode_counters(encoded: Mapping[str, Any]):
    """Inverse of :func:`encode_counters`."""
    from repro.pipeline.core import CounterValues

    return CounterValues(
        cycles=encoded["cycles"],
        port_uops={port: count for port, count in encoded["ports"]},
        uops=encoded["uops"],
        instructions=encoded["instructions"],
        uops_fused=encoded["uops_fused"],
    )
