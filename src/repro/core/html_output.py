"""HTML results table — the www.uops.info presentation of the data.

The paper publishes its characterizations as a website with one row per
instruction variant and one column group per microarchitecture, showing
µops, port usage, latency, and throughput.  :func:`results_to_html`
renders the same structure from in-memory results (a static, dependency-
free HTML page).
"""

from __future__ import annotations

import html
from typing import Mapping, Optional

from repro.core.result import InstructionCharacterization
from repro.isa.database import InstructionDatabase

_STYLE = """
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; font-size: 13px; }
th, td { border: 1px solid #ccc; padding: 3px 8px; text-align: left; }
th { background: #f0f0f0; position: sticky; top: 0; }
tr:nth-child(even) { background: #fafafa; }
td.num { text-align: right; }
caption { font-weight: bold; margin-bottom: 0.5em; text-align: left; }
.lat { color: #444; font-size: 12px; }
td.quarantine { background: #fdecea; color: #a02020; font-size: 12px; }
"""


def _latency_cell(outcome: InstructionCharacterization) -> str:
    if outcome.latency is None or not outcome.latency.pairs:
        return ""
    parts = []
    for (src, dst), value in sorted(outcome.latency.pairs.items()):
        parts.append(f"{src}&rarr;{dst}: {html.escape(str(value))}")
    for (src, dst), value in sorted(
        outcome.latency.same_register.items()
    ):
        parts.append(
            f"{src}&rarr;{dst} (same reg): {html.escape(str(value))}"
        )
    return "<br>".join(parts)


def results_to_html(
    results_by_uarch: Mapping[
        str, Mapping[str, InstructionCharacterization]
    ],
    database: Optional[InstructionDatabase] = None,
    title: str = "Instruction characterizations",
    failures: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> str:
    """Render results as a standalone HTML page.

    *failures* is an optional ``{uarch name: {form uid: FormFailure}}``
    of quarantined forms, rendered as highlighted cells so a report
    accounts for every requested variant.
    """
    failures = failures or {}
    uarch_names = sorted(set(results_by_uarch) | set(failures))
    all_uids = sorted(
        {uid for results in results_by_uarch.values() for uid in results}
        | {uid for per_uarch in failures.values() for uid in per_uarch}
    )
    rows = []
    for uid in all_uids:
        extension = ""
        if database is not None and uid in database:
            extension = database.by_uid(uid).extension
        cells = [
            f"<td>{html.escape(uid)}</td>",
            f"<td>{html.escape(extension)}</td>",
        ]
        for name in uarch_names:
            outcome = results_by_uarch.get(name, {}).get(uid)
            if outcome is None:
                failure = failures.get(name, {}).get(uid)
                if failure is not None:
                    cells.append(
                        '<td colspan="4" class="quarantine">'
                        f"quarantined ({html.escape(failure.phase)}): "
                        f"{html.escape(failure.error_type)} after "
                        f"{failure.attempts} attempt(s)</td>"
                    )
                else:
                    cells.append('<td colspan="4">-</td>')
                continue
            ports = (
                outcome.port_usage.notation()
                if outcome.port_usage is not None
                else ""
            )
            throughput = (
                f"{outcome.throughput.measured:.2f}"
                if outcome.throughput is not None
                else ""
            )
            cells.append(f'<td class="num">{outcome.uop_count:g}</td>')
            cells.append(f"<td>{html.escape(ports)}</td>")
            cells.append(f'<td class="num">{throughput}</td>')
            cells.append(f'<td class="lat">{_latency_cell(outcome)}</td>')
        rows.append("<tr>" + "".join(cells) + "</tr>")

    header_groups = "".join(
        f'<th colspan="4">{html.escape(name)}</th>' for name in uarch_names
    )
    header_cols = "".join(
        "<th>µops</th><th>ports</th><th>TP</th><th>latency</th>"
        for _ in uarch_names
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{html.escape(title)}</title>
<style>{_STYLE}</style>
</head>
<body>
<table>
<caption>{html.escape(title)} &mdash; {len(all_uids)} instruction
variants on {len(uarch_names)} microarchitecture(s)</caption>
<thead>
<tr><th rowspan="2">Instruction</th><th rowspan="2">Extension</th>
{header_groups}</tr>
<tr>{header_cols}</tr>
</thead>
<tbody>
{chr(10).join(rows)}
</tbody>
</table>
</body>
</html>
"""


def write_html(
    results_by_uarch,
    path: str,
    database: Optional[InstructionDatabase] = None,
    title: str = "Instruction characterizations",
    failures: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> None:
    with open(path, "w") as handle:
        handle.write(
            results_to_html(results_by_uarch, database, title, failures)
        )
