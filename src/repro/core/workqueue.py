"""Persistent, flock-guarded work queue for distributed sweeps.

The :class:`~repro.core.sweep.SweepEngine`'s original sharding was
fork-join: uids were dealt to workers up front, so one slow form (a
divider class, the blocking discovery) idled every other worker, and a
dead worker needed a bespoke watchdog/respawn path.  This module turns
the sweep into a *shared queue* of content-keyed work units that any
number of worker processes — spawned by one engine, or by independent
``repro sweep --drain`` invocations on machines sharing the cache
directory — **lease**, execute, and **ack**:

* a unit is leased for a bounded wall-clock window; a worker that dies
  or stalls simply lets the lease expire, and the next ``lease()`` call
  by any surviving worker *steals* the unit (counted per unit and in
  the queue totals) — no supervisor involvement required;
* acks are idempotent: when a stalled worker finally finishes a unit
  that was stolen from it, the duplicate ack is ignored (results are
  deterministic pure functions, so both acks carry the same bytes);
* a unit whose lease was claimed :data:`MAX_UNIT_LEASES` times without
  an ack is poisoned — it reliably takes workers down with it — and is
  marked failed with a ``WorkerLost`` record instead of starving the
  fleet forever;
* the whole state lives in one checksummed JSON file next to the
  result cache, mutated only in read-modify-write transactions under an
  exclusive ``flock`` on a sibling lock file and published atomically
  via the shared :func:`~repro.core.journal.publish_blob` writer, so
  concurrent drainers on one filesystem never observe a torn queue and
  a crash mid-publish is detected by the CRC, not trusted;
* leases are **renewable** and **fenced**: a live owner heartbeats
  (:meth:`WorkQueue.renew`, driven by :class:`LeaseHeartbeat`) to
  extend its lease on long-running units, and every grant bumps the
  unit's monotonically increasing *fencing token*.  Result writes go
  through :meth:`WorkQueue.deposit`, which stamps and checks the token
  inside the queue transaction — so a stalled-but-alive *zombie*
  whose lease was stolen cannot silently overwrite the thief's work:
  its post-steal deposit is rejected and counted (``zombie_writes``).

Lease expiry uses ``time.time()`` (the wall clock) rather than
``time.monotonic()`` deliberately: monotonic clocks are not comparable
across machines sharing a cache directory.  This module is therefore
*not* part of the cache/result determinism contract (``repro lint``
RPR101) — nothing here ever feeds a content key.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.core.cache import cache_salt
from repro.core.journal import (
    decode_blob,
    flock_bounded,
    publish_blob,
    release_flock,
    trace_event,
)

try:
    import fcntl
except ImportError:  # non-POSIX: transactions are not locked
    fcntl = None

#: How many times a unit may be leased before it is declared poisoned
#: and quarantined with a ``WorkerLost`` failure record.  Three leases
#: tolerate one crash plus one steal-then-crash before giving up.
MAX_UNIT_LEASES = 3

_PENDING = "pending"
_LEASED = "leased"
_ACKED = "acked"
_FAILED = "failed"


@dataclasses.dataclass
class WorkUnit:
    """One unit of sweep work: characterize ``uid`` and store it under
    the content-addressed result-cache ``key``.

    ``leases`` counts how many times the unit was handed out (including
    the current lease); ``stolen`` counts how many of those were
    reclaims of an expired lease.  ``failure`` carries the
    :meth:`~repro.core.runner.FormFailure.as_dict` record of a failed
    unit so independent drainers and the coordinating engine see the
    same quarantine.
    """

    key: str
    uid: str
    state: str = _PENDING
    owner: Optional[str] = None
    expires: float = 0.0
    leases: int = 0
    stolen: int = 0
    #: Fencing token: bumped on *every* lease grant (fresh, renewal not
    #: included — renewals keep ownership, steals change it).  A deposit
    #: carrying a stale token is a zombie write and is rejected.
    fence: int = 0
    failure: Optional[Dict[str, Any]] = None
    #: Transient (not persisted): whether the lease that returned this
    #: unit reclaimed an expired lease — i.e. the caller just stole it.
    stolen_now: bool = False

    def as_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data.pop("stolen_now", None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkUnit":
        return cls(**{
            key: value for key, value in data.items()
            if key in cls.__dataclass_fields__
        })


class QueueCounters(Dict[str, int]):
    """Cumulative queue-lifetime counters (a plain dict with defaults).

    Keys mirror the :class:`~repro.core.runner.RunStatistics` fields the
    sweep engine folds them into: ``units_leased``, ``units_stolen``,
    ``units_acked``, ``lease_expirations``, ``leases_renewed``,
    ``zombie_writes``.
    """

    FIELDS = (
        "units_leased", "units_stolen", "units_acked",
        "lease_expirations", "leases_renewed", "zombie_writes",
    )

    def __init__(self, values: Optional[Dict[str, int]] = None):
        super().__init__({field: 0 for field in self.FIELDS})
        if values:
            for field in self.FIELDS:
                self[field] = int(values.get(field, 0))

    def delta(self, since: "QueueCounters") -> Dict[str, int]:
        return {
            field: self[field] - since[field] for field in self.FIELDS
        }


class WorkQueue:
    """A persistent queue of :class:`WorkUnit` shared by drainers.

    One queue per (cache directory, microarchitecture); the salt ties
    the queue to the code version exactly like the result cache, so a
    drainer built from different code refuses stale work wholesale (the
    queue file is reset rather than merged).
    """

    #: File suffix distinguishing queue files from cache/memo files.
    SUFFIX = ".queue.json"

    def __init__(
        self,
        cache_dir: str,
        uarch_name: str,
        salt: Optional[str] = None,
        max_unit_leases: int = MAX_UNIT_LEASES,
    ):
        self.cache_dir = cache_dir
        self.uarch_name = uarch_name
        self.salt = salt if salt is not None else cache_salt()
        self.max_unit_leases = max_unit_leases
        #: Transactions that proceeded unlocked after the bounded wait.
        self.lock_timeouts = 0
        #: Non-blocking flock attempts that had to back off and retry.
        self.lock_retries = 0

    # -- file layout ----------------------------------------------------

    @property
    def path(self) -> str:
        return os.path.join(
            self.cache_dir, f"{self.uarch_name}{self.SUFFIX}"
        )

    @property
    def lock_path(self) -> str:
        return self.path + ".lock"

    def _read_state(self) -> Dict[str, Any]:
        state = read_queue_state(self.path, self.salt)
        if state is None:
            # Missing, torn, CRC-damaged, or written by another code
            # version: start fresh.  Work enqueued under an old salt
            # must be re-planned anyway (its result-cache keys are
            # stale too).
            return {
                "salt": self.salt,
                "units": {},
                "counters": dict(QueueCounters()),
            }
        return state

    def _write_state(self, state: Dict[str, Any]) -> None:
        os.makedirs(self.cache_dir, exist_ok=True)
        publish_blob(self.path, state, kind="queue")

    def _transaction(self, mutate):
        """Run ``mutate(state)`` under the queue lock; publish the state
        atomically when *mutate* returns ``(result, True)``."""
        os.makedirs(self.cache_dir, exist_ok=True)
        with open(self.lock_path, "a+", encoding="utf-8") as lock:
            locked, retries = flock_bounded(
                lock, salt=self.lock_path, name="queue"
            )
            self.lock_retries += retries
            if not locked and fcntl is not None:
                self.lock_timeouts += 1
            try:
                state = self._read_state()
                result, dirty = mutate(state)
                if dirty:
                    self._write_state(state)
                return result
            finally:
                release_flock(lock, locked, name="queue")

    # -- unit helpers ---------------------------------------------------

    @staticmethod
    def _units(state: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
        return state["units"]

    @staticmethod
    def _counters(state: Dict[str, Any]) -> Dict[str, int]:
        counters = state.setdefault("counters", {})
        for field in QueueCounters.FIELDS:
            counters.setdefault(field, 0)
        return counters

    # -- operations -----------------------------------------------------

    def enqueue(self, units: List[WorkUnit]) -> int:
        """Add work; returns how many units became pending.

        A unit already known to the queue is *reset to pending* when it
        is acked, failed, or expired-leased (the caller re-requesting it
        means the previous outcome is stale — e.g. an incremental
        re-sweep of a diffed form); a live lease or an existing pending
        entry is left untouched so concurrent drainers are never
        preempted.
        """

        def mutate(state):
            stored = self._units(state)
            now = time.time()
            added = 0
            for unit in units:
                existing = stored.get(unit.key)
                if existing is not None:
                    if existing["state"] == _PENDING:
                        continue
                    if (
                        existing["state"] == _LEASED
                        and existing["expires"] > now
                    ):
                        continue
                    existing["state"] = _PENDING
                    existing["owner"] = None
                    existing["failure"] = None
                    added += 1
                    continue
                stored[unit.key] = WorkUnit(
                    key=unit.key, uid=unit.uid
                ).as_dict()
                added += 1
            return added, added > 0

        return self._transaction(mutate)

    def lease(
        self,
        owner: str,
        limit: int = 1,
        lease_seconds: float = 60.0,
    ) -> List[WorkUnit]:
        """Claim up to *limit* units for *owner*.

        Units are handed out in sorted uid order (stable across
        drainers).  An expired lease is reclaimed — *stolen* — exactly
        like pending work; a unit reaching ``max_unit_leases`` claims is
        instead marked failed with a ``WorkerLost`` record, so a
        poisoned unit cannot crash the fleet indefinitely.
        """

        def mutate(state):
            stored = self._units(state)
            counters = self._counters(state)
            now = time.time()
            claimed: List[WorkUnit] = []
            dirty = False
            order = sorted(
                stored.values(), key=lambda u: (u["uid"], u["key"])
            )
            for raw in order:
                if len(claimed) >= limit:
                    break
                state_name = raw["state"]
                expired = (
                    state_name == _LEASED and raw["expires"] <= now
                )
                if state_name != _PENDING and not expired:
                    continue
                if expired:
                    counters["lease_expirations"] += 1
                if raw["leases"] >= self.max_unit_leases:
                    raw["state"] = _FAILED
                    raw["owner"] = None
                    raw["failure"] = {
                        "uid": raw["uid"],
                        "phase": "queue",
                        "error_type": "WorkerLost",
                        "message": (
                            f"unit leased {raw['leases']} times without "
                            "an ack; poisoned work quarantined"
                        ),
                        "attempts": raw["leases"],
                        "shard": None,
                    }
                    dirty = True
                    continue
                raw["state"] = _LEASED
                raw["owner"] = owner
                raw["expires"] = now + lease_seconds
                raw["leases"] += 1
                raw["fence"] = raw.get("fence", 0) + 1
                counters["units_leased"] += 1
                if expired:
                    raw["stolen"] += 1
                    counters["units_stolen"] += 1
                unit = WorkUnit.from_dict(raw)
                unit.stolen_now = expired
                claimed.append(unit)
                dirty = True
            return claimed, dirty

        return self._transaction(mutate)

    def ack(self, key: str, owner: str) -> bool:
        """Mark *key* done.  Returns ``False`` for a duplicate ack (the
        unit was stolen and already acked by the thief — harmless, the
        results are identical)."""

        def mutate(state):
            stored = self._units(state)
            counters = self._counters(state)
            raw = stored.get(key)
            if raw is None or raw["state"] == _ACKED:
                return False, False
            raw["state"] = _ACKED
            raw["owner"] = owner
            raw["failure"] = None
            counters["units_acked"] += 1
            return True, True

        return self._transaction(mutate)

    def renew(
        self,
        owner: str,
        key_fences: Dict[str, int],
        lease_seconds: float = 60.0,
    ) -> Dict[str, List[str]]:
        """Extend *owner*'s leases on ``{key: fence}`` units (heartbeat).

        A unit renews only while it is still leased to *owner* under
        the same fencing token — an expired-but-unstolen lease renews
        fine (nobody else claimed it), but once a sibling stole the
        unit the renewal is refused and the key is reported ``lost`` so
        the worker can abandon the doomed computation early instead of
        racing the thief to the cache.
        """

        def mutate(state):
            stored = self._units(state)
            counters = self._counters(state)
            now = time.time()
            renewed: List[str] = []
            lost: List[str] = []
            for key, fence in sorted(key_fences.items()):
                raw = stored.get(key)
                if (
                    raw is not None
                    and raw["state"] == _LEASED
                    and raw["owner"] == owner
                    and raw.get("fence", 0) == fence
                ):
                    raw["expires"] = now + lease_seconds
                    counters["leases_renewed"] += 1
                    renewed.append(key)
                else:
                    lost.append(key)
            return {"renewed": renewed, "lost": lost}, bool(renewed)

        return self._transaction(mutate)

    def deposit(
        self,
        key: str,
        owner: str,
        fence: int,
        write: Callable[[], None],
    ) -> str:
        """Fenced write-through: run *write* (the result-cache append)
        and ack *key*, atomically, inside the queue transaction.

        Returns a verdict string:

        * ``"acked"`` — the token matched; *write* ran and the unit is
          acked.
        * ``"duplicate"`` — already acked (a benign late ack of a
          stolen-then-finished unit whose thief's bytes are identical);
          *write* is skipped.
        * ``"fenced"`` — the unit's token moved past *fence*: the
          caller is a zombie whose lease was stolen.  *write* is
          **not** run, and ``zombie_writes`` is counted — this is the
          detection the idempotence argument of PR 7 couldn't give.
        * ``"missing"`` — the key is not in the queue at all (e.g. the
          queue was reset under a new salt mid-flight).

        Because the store append happens under the queue lock, a thief
        cannot interleave between the fence check and the write: lock
        ordering is queue lock → store lock, everywhere.
        """

        def mutate(state):
            stored = self._units(state)
            counters = self._counters(state)
            raw = stored.get(key)
            if raw is None:
                return "missing", False
            if raw["state"] == _ACKED:
                return "duplicate", False
            fresh = raw.get("fence", 0) == fence
            trace_event("fence-check", key=key, fresh=fresh)
            if not fresh:
                counters["zombie_writes"] += 1
                return "fenced", True
            write()
            raw["state"] = _ACKED
            raw["owner"] = owner
            raw["failure"] = None
            counters["units_acked"] += 1
            return "acked", True

        return self._transaction(mutate)

    def fail(
        self, key: str, owner: str, failure: Dict[str, Any]
    ) -> bool:
        """Record a quarantine for *key* (idempotent like :meth:`ack`;
        an ack always wins over a late failure report)."""

        def mutate(state):
            stored = self._units(state)
            raw = stored.get(key)
            if raw is None or raw["state"] in (_ACKED, _FAILED):
                return False, False
            raw["state"] = _FAILED
            raw["owner"] = owner
            raw["failure"] = failure
            return True, True

        return self._transaction(mutate)

    def expire_owner(self, owner: str) -> int:
        """Force-expire every live lease held by *owner*.

        The coordinating engine calls this when it *knows* a worker died
        (it reaped the process), so siblings can steal the dead worker's
        units immediately instead of waiting out the lease window.  The
        units stay leased with ``expires=0``; the next :meth:`lease`
        reclaims them through the ordinary steal path, keeping the
        steal/expiration counters truthful.
        """

        def mutate(state):
            now = time.time()
            released = 0
            for raw in self._units(state).values():
                if (
                    raw["state"] == _LEASED
                    and raw["owner"] == owner
                    and raw["expires"] > now
                ):
                    raw["expires"] = 0.0
                    released += 1
            return released, released > 0

        return self._transaction(mutate)

    def release_expired(self) -> int:
        """Return expired leases to pending (``repro doctor``'s
        orphaned-lease repair).

        The ordinary steal path already reclaims these lazily; doctor
        releases them eagerly so a repaired store shows no leftover
        lease debris.  The fencing token is untouched — it only bumps
        on the next grant — so a zombie of the released owner is still
        fenced out.
        """

        def mutate(state):
            counters = self._counters(state)
            now = time.time()
            released = 0
            for raw in self._units(state).values():
                if raw["state"] == _LEASED and raw["expires"] <= now:
                    raw["state"] = _PENDING
                    raw["owner"] = None
                    counters["lease_expirations"] += 1
                    released += 1
            return released, released > 0

        return self._transaction(mutate)

    # -- introspection --------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A consistent read: per-state unit counts, cumulative
        counters, and the failure records of failed units."""

        def mutate(state):
            stored = self._units(state)
            counts = {
                _PENDING: 0, _LEASED: 0, _ACKED: 0, _FAILED: 0,
            }
            failures = {}
            for raw in stored.values():
                counts[raw["state"]] += 1
                if raw["state"] == _FAILED and raw["failure"]:
                    failures[raw["uid"]] = dict(raw["failure"])
            return {
                "counts": counts,
                "counters": QueueCounters(self._counters(state)),
                "failures": failures,
                "units": len(stored),
            }, False

        return self._transaction(mutate)

    def counters(self) -> QueueCounters:
        return self.snapshot()["counters"]

    def remaining_units(self) -> List[WorkUnit]:
        """Units still pending or leased, in stable uid order."""

        def mutate(state):
            units = [
                WorkUnit.from_dict(raw)
                for raw in sorted(
                    self._units(state).values(),
                    key=lambda u: (u["uid"], u["key"]),
                )
                if raw["state"] in (_PENDING, _LEASED)
            ]
            return units, False

        return self._transaction(mutate)

    def all_units(self) -> List[WorkUnit]:
        """Every unit, any state, in stable uid order (doctor's view)."""

        def mutate(state):
            units = [
                WorkUnit.from_dict(raw)
                for raw in sorted(
                    self._units(state).values(),
                    key=lambda u: (u["uid"], u["key"]),
                )
            ]
            return units, False

        return self._transaction(mutate)

    def live_leases(self) -> int:
        """Units currently leased with an unexpired lease."""
        return live_lease_count(read_queue_state(self.path, self.salt))

    @property
    def drained(self) -> bool:
        """No unit is pending or leased (everything acked or failed)."""
        counts = self.snapshot()["counts"]
        return counts[_PENDING] == 0 and counts[_LEASED] == 0

    def outstanding(self) -> int:
        """Units still pending or leased."""
        counts = self.snapshot()["counts"]
        return counts[_PENDING] + counts[_LEASED]

    def clear(self) -> None:
        """Remove the queue file (e.g. after a drained sweep is GC'd)."""

        def mutate(state):
            state["units"] = {}
            return None, True

        self._transaction(mutate)
        try:
            os.remove(self.path)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Lockless state readers (GC / doctor)
# ---------------------------------------------------------------------------
#
# ``flock`` is advisory per open file description, so a process already
# holding a queue's lock handle would deadlock against itself by calling
# the transactional methods above (they open a second description).
# Callers that must inspect queues *while holding their locks* — GC's
# compaction phase, doctor — read the state file directly instead: the
# atomic-rename publish guarantees any successfully read blob is a
# consistent snapshot.


def read_queue_state(
    path: str, salt: str
) -> Optional[Dict[str, Any]]:
    """The queue state at *path*, or ``None`` when the file is missing,
    torn, CRC-damaged, malformed, or written under another salt (all of
    which a :class:`WorkQueue` would reset to empty)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            state, _ = decode_blob(handle.read())
    except (OSError, UnicodeDecodeError):
        return None
    if (
        not isinstance(state, dict)
        or state.get("salt") != salt
        or not isinstance(state.get("units"), dict)
    ):
        return None
    return state


def live_lease_count(state: Optional[Dict[str, Any]]) -> int:
    """Unexpired leases in a :func:`read_queue_state` snapshot."""
    if state is None:
        return 0
    now = time.time()
    return sum(
        1 for raw in state["units"].values()
        if raw.get("state") == _LEASED and raw.get("expires", 0) > now
    )


def outstanding_count(state: Optional[Dict[str, Any]]) -> int:
    """Pending-or-leased units in a :func:`read_queue_state` snapshot
    (0 = drained; ``None`` states count as drained, matching
    :meth:`WorkQueue._read_state`'s reset-to-empty behavior)."""
    if state is None:
        return 0
    return sum(
        1 for raw in state["units"].values()
        if raw.get("state") in (_PENDING, _LEASED)
    )


# ---------------------------------------------------------------------------
# Lease heartbeat
# ---------------------------------------------------------------------------


class LeaseHeartbeat:
    """A daemon thread renewing a drainer's leases while units run.

    PR 7's fixed lease window forced an ugly choice: long enough for
    the slowest form (slow steals after real crashes) or short enough
    for fast steals (spurious steals of healthy long units).  A
    heartbeat renewing at ``lease_seconds / 3`` decouples them: the
    window can be short, because a *live* worker keeps extending it —
    only a dead or wedged one lets it lapse.

    ``watch(unit)`` / ``unwatch(key)`` bracket each unit's execution.
    When a renewal is refused (the unit was stolen), the key lands in
    :attr:`lost` and is dropped from the watch set — the worker checks
    :meth:`is_lost` before depositing to skip doomed work early (the
    fence check in :meth:`WorkQueue.deposit` remains the authority).
    """

    def __init__(
        self,
        queue: WorkQueue,
        owner: str,
        lease_seconds: float = 60.0,
    ):
        self.queue = queue
        self.owner = owner
        self.lease_seconds = lease_seconds
        self.interval = max(0.05, lease_seconds / 3.0)
        #: Cumulative successful renewals (folded into run statistics).
        self.renewed = 0
        #: Heartbeats that raised (queue unreachable, lock storms);
        #: the loop keeps beating — a missed renewal just means the
        #: lease is not extended this round.
        self.errors = 0
        self.last_error: Optional[BaseException] = None
        self._watched: Dict[str, int] = {}
        self._lost: set = set()
        self._mutex = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def watch(self, unit: WorkUnit) -> None:
        with self._mutex:
            self._watched[unit.key] = unit.fence
            self._lost.discard(unit.key)

    def unwatch(self, key: str) -> None:
        with self._mutex:
            self._watched.pop(key, None)

    def is_lost(self, key: str) -> bool:
        with self._mutex:
            return key in self._lost

    def _beat(self) -> None:
        with self._mutex:
            watched = dict(self._watched)
        if not watched:
            return
        result = self.queue.renew(
            self.owner, watched, self.lease_seconds
        )
        self.renewed += len(result["renewed"])
        if result["lost"]:
            with self._mutex:
                for key in result["lost"]:
                    if key in self._watched:
                        self._watched.pop(key, None)
                        self._lost.add(key)

    def start(self) -> "LeaseHeartbeat":
        self._thread = threading.Thread(
            target=self._run, name="lease-heartbeat", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._beat()
            except Exception as exc:
                # A failed heartbeat must never kill the worker; the
                # lease simply is not extended this round.
                self.errors += 1
                self.last_error = exc

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
