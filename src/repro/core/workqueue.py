"""Persistent, flock-guarded work queue for distributed sweeps.

The :class:`~repro.core.sweep.SweepEngine`'s original sharding was
fork-join: uids were dealt to workers up front, so one slow form (a
divider class, the blocking discovery) idled every other worker, and a
dead worker needed a bespoke watchdog/respawn path.  This module turns
the sweep into a *shared queue* of content-keyed work units that any
number of worker processes — spawned by one engine, or by independent
``repro sweep --drain`` invocations on machines sharing the cache
directory — **lease**, execute, and **ack**:

* a unit is leased for a bounded wall-clock window; a worker that dies
  or stalls simply lets the lease expire, and the next ``lease()`` call
  by any surviving worker *steals* the unit (counted per unit and in
  the queue totals) — no supervisor involvement required;
* acks are idempotent: when a stalled worker finally finishes a unit
  that was stolen from it, the duplicate ack is ignored (results are
  deterministic pure functions, so both acks carry the same bytes);
* a unit whose lease was claimed :data:`MAX_UNIT_LEASES` times without
  an ack is poisoned — it reliably takes workers down with it — and is
  marked failed with a ``WorkerLost`` record instead of starving the
  fleet forever;
* the whole state lives in one JSON file next to the result cache,
  mutated only in read-modify-write transactions under an exclusive
  ``flock`` on a sibling lock file and published atomically via
  ``os.replace``, so concurrent drainers on one filesystem never
  observe a torn queue.

Lease expiry uses ``time.time()`` (the wall clock) rather than
``time.monotonic()`` deliberately: monotonic clocks are not comparable
across machines sharing a cache directory.  This module is therefore
*not* part of the cache/result determinism contract (``repro lint``
RPR101) — nothing here ever feeds a content key.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from typing import Any, Dict, List, Optional

from repro.core.cache import _flock_bounded, cache_salt

try:
    import fcntl
except ImportError:  # non-POSIX: transactions are not locked
    fcntl = None

#: How many times a unit may be leased before it is declared poisoned
#: and quarantined with a ``WorkerLost`` failure record.  Three leases
#: tolerate one crash plus one steal-then-crash before giving up.
MAX_UNIT_LEASES = 3

_PENDING = "pending"
_LEASED = "leased"
_ACKED = "acked"
_FAILED = "failed"


@dataclasses.dataclass
class WorkUnit:
    """One unit of sweep work: characterize ``uid`` and store it under
    the content-addressed result-cache ``key``.

    ``leases`` counts how many times the unit was handed out (including
    the current lease); ``stolen`` counts how many of those were
    reclaims of an expired lease.  ``failure`` carries the
    :meth:`~repro.core.runner.FormFailure.as_dict` record of a failed
    unit so independent drainers and the coordinating engine see the
    same quarantine.
    """

    key: str
    uid: str
    state: str = _PENDING
    owner: Optional[str] = None
    expires: float = 0.0
    leases: int = 0
    stolen: int = 0
    failure: Optional[Dict[str, Any]] = None
    #: Transient (not persisted): whether the lease that returned this
    #: unit reclaimed an expired lease — i.e. the caller just stole it.
    stolen_now: bool = False

    def as_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data.pop("stolen_now", None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkUnit":
        return cls(**{
            key: value for key, value in data.items()
            if key in cls.__dataclass_fields__
        })


class QueueCounters(Dict[str, int]):
    """Cumulative queue-lifetime counters (a plain dict with defaults).

    Keys mirror the :class:`~repro.core.runner.RunStatistics` fields the
    sweep engine folds them into: ``units_leased``, ``units_stolen``,
    ``units_acked``, ``lease_expirations``.
    """

    FIELDS = (
        "units_leased", "units_stolen", "units_acked",
        "lease_expirations",
    )

    def __init__(self, values: Optional[Dict[str, int]] = None):
        super().__init__({field: 0 for field in self.FIELDS})
        if values:
            for field in self.FIELDS:
                self[field] = int(values.get(field, 0))

    def delta(self, since: "QueueCounters") -> Dict[str, int]:
        return {
            field: self[field] - since[field] for field in self.FIELDS
        }


class WorkQueue:
    """A persistent queue of :class:`WorkUnit` shared by drainers.

    One queue per (cache directory, microarchitecture); the salt ties
    the queue to the code version exactly like the result cache, so a
    drainer built from different code refuses stale work wholesale (the
    queue file is reset rather than merged).
    """

    #: File suffix distinguishing queue files from cache/memo files.
    SUFFIX = ".queue.json"

    def __init__(
        self,
        cache_dir: str,
        uarch_name: str,
        salt: Optional[str] = None,
        max_unit_leases: int = MAX_UNIT_LEASES,
    ):
        self.cache_dir = cache_dir
        self.uarch_name = uarch_name
        self.salt = salt if salt is not None else cache_salt()
        self.max_unit_leases = max_unit_leases
        #: Transactions that proceeded unlocked after the bounded wait.
        self.lock_timeouts = 0

    # -- file layout ----------------------------------------------------

    @property
    def path(self) -> str:
        return os.path.join(
            self.cache_dir, f"{self.uarch_name}{self.SUFFIX}"
        )

    @property
    def lock_path(self) -> str:
        return self.path + ".lock"

    def _read_state(self) -> Dict[str, Any]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                state = json.load(handle)
        except (OSError, ValueError):
            state = None
        if (
            not isinstance(state, dict)
            or state.get("salt") != self.salt
            or not isinstance(state.get("units"), dict)
        ):
            # Missing, torn, or written by another code version: start
            # fresh.  Work enqueued under an old salt must be re-planned
            # anyway (its result-cache keys are stale too).
            return {
                "salt": self.salt,
                "units": {},
                "counters": dict(QueueCounters()),
            }
        return state

    def _write_state(self, state: Dict[str, Any]) -> None:
        os.makedirs(self.cache_dir, exist_ok=True)
        blob = json.dumps(state, sort_keys=True)
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def _transaction(self, mutate):
        """Run ``mutate(state)`` under the queue lock; publish the state
        atomically when *mutate* returns ``(result, True)``."""
        os.makedirs(self.cache_dir, exist_ok=True)
        with open(self.lock_path, "a+", encoding="utf-8") as lock:
            locked = _flock_bounded(lock)
            if not locked and fcntl is not None:
                self.lock_timeouts += 1
            try:
                state = self._read_state()
                result, dirty = mutate(state)
                if dirty:
                    self._write_state(state)
                return result
            finally:
                if locked:
                    fcntl.flock(lock.fileno(), fcntl.LOCK_UN)

    # -- unit helpers ---------------------------------------------------

    @staticmethod
    def _units(state: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
        return state["units"]

    @staticmethod
    def _counters(state: Dict[str, Any]) -> Dict[str, int]:
        counters = state.setdefault("counters", {})
        for field in QueueCounters.FIELDS:
            counters.setdefault(field, 0)
        return counters

    # -- operations -----------------------------------------------------

    def enqueue(self, units: List[WorkUnit]) -> int:
        """Add work; returns how many units became pending.

        A unit already known to the queue is *reset to pending* when it
        is acked, failed, or expired-leased (the caller re-requesting it
        means the previous outcome is stale — e.g. an incremental
        re-sweep of a diffed form); a live lease or an existing pending
        entry is left untouched so concurrent drainers are never
        preempted.
        """

        def mutate(state):
            stored = self._units(state)
            now = time.time()
            added = 0
            for unit in units:
                existing = stored.get(unit.key)
                if existing is not None:
                    if existing["state"] == _PENDING:
                        continue
                    if (
                        existing["state"] == _LEASED
                        and existing["expires"] > now
                    ):
                        continue
                    existing["state"] = _PENDING
                    existing["owner"] = None
                    existing["failure"] = None
                    added += 1
                    continue
                stored[unit.key] = WorkUnit(
                    key=unit.key, uid=unit.uid
                ).as_dict()
                added += 1
            return added, added > 0

        return self._transaction(mutate)

    def lease(
        self,
        owner: str,
        limit: int = 1,
        lease_seconds: float = 60.0,
    ) -> List[WorkUnit]:
        """Claim up to *limit* units for *owner*.

        Units are handed out in sorted uid order (stable across
        drainers).  An expired lease is reclaimed — *stolen* — exactly
        like pending work; a unit reaching ``max_unit_leases`` claims is
        instead marked failed with a ``WorkerLost`` record, so a
        poisoned unit cannot crash the fleet indefinitely.
        """

        def mutate(state):
            stored = self._units(state)
            counters = self._counters(state)
            now = time.time()
            claimed: List[WorkUnit] = []
            dirty = False
            order = sorted(
                stored.values(), key=lambda u: (u["uid"], u["key"])
            )
            for raw in order:
                if len(claimed) >= limit:
                    break
                state_name = raw["state"]
                expired = (
                    state_name == _LEASED and raw["expires"] <= now
                )
                if state_name != _PENDING and not expired:
                    continue
                if expired:
                    counters["lease_expirations"] += 1
                if raw["leases"] >= self.max_unit_leases:
                    raw["state"] = _FAILED
                    raw["owner"] = None
                    raw["failure"] = {
                        "uid": raw["uid"],
                        "phase": "queue",
                        "error_type": "WorkerLost",
                        "message": (
                            f"unit leased {raw['leases']} times without "
                            "an ack; poisoned work quarantined"
                        ),
                        "attempts": raw["leases"],
                        "shard": None,
                    }
                    dirty = True
                    continue
                raw["state"] = _LEASED
                raw["owner"] = owner
                raw["expires"] = now + lease_seconds
                raw["leases"] += 1
                counters["units_leased"] += 1
                if expired:
                    raw["stolen"] += 1
                    counters["units_stolen"] += 1
                unit = WorkUnit.from_dict(raw)
                unit.stolen_now = expired
                claimed.append(unit)
                dirty = True
            return claimed, dirty

        return self._transaction(mutate)

    def ack(self, key: str, owner: str) -> bool:
        """Mark *key* done.  Returns ``False`` for a duplicate ack (the
        unit was stolen and already acked by the thief — harmless, the
        results are identical)."""

        def mutate(state):
            stored = self._units(state)
            counters = self._counters(state)
            raw = stored.get(key)
            if raw is None or raw["state"] == _ACKED:
                return False, False
            raw["state"] = _ACKED
            raw["owner"] = owner
            raw["failure"] = None
            counters["units_acked"] += 1
            return True, True

        return self._transaction(mutate)

    def fail(
        self, key: str, owner: str, failure: Dict[str, Any]
    ) -> bool:
        """Record a quarantine for *key* (idempotent like :meth:`ack`;
        an ack always wins over a late failure report)."""

        def mutate(state):
            stored = self._units(state)
            raw = stored.get(key)
            if raw is None or raw["state"] in (_ACKED, _FAILED):
                return False, False
            raw["state"] = _FAILED
            raw["owner"] = owner
            raw["failure"] = failure
            return True, True

        return self._transaction(mutate)

    def expire_owner(self, owner: str) -> int:
        """Force-expire every live lease held by *owner*.

        The coordinating engine calls this when it *knows* a worker died
        (it reaped the process), so siblings can steal the dead worker's
        units immediately instead of waiting out the lease window.  The
        units stay leased with ``expires=0``; the next :meth:`lease`
        reclaims them through the ordinary steal path, keeping the
        steal/expiration counters truthful.
        """

        def mutate(state):
            now = time.time()
            released = 0
            for raw in self._units(state).values():
                if (
                    raw["state"] == _LEASED
                    and raw["owner"] == owner
                    and raw["expires"] > now
                ):
                    raw["expires"] = 0.0
                    released += 1
            return released, released > 0

        return self._transaction(mutate)

    # -- introspection --------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A consistent read: per-state unit counts, cumulative
        counters, and the failure records of failed units."""

        def mutate(state):
            stored = self._units(state)
            counts = {
                _PENDING: 0, _LEASED: 0, _ACKED: 0, _FAILED: 0,
            }
            failures = {}
            for raw in stored.values():
                counts[raw["state"]] += 1
                if raw["state"] == _FAILED and raw["failure"]:
                    failures[raw["uid"]] = dict(raw["failure"])
            return {
                "counts": counts,
                "counters": QueueCounters(self._counters(state)),
                "failures": failures,
                "units": len(stored),
            }, False

        return self._transaction(mutate)

    def counters(self) -> QueueCounters:
        return self.snapshot()["counters"]

    def remaining_units(self) -> List[WorkUnit]:
        """Units still pending or leased, in stable uid order."""

        def mutate(state):
            units = [
                WorkUnit.from_dict(raw)
                for raw in sorted(
                    self._units(state).values(),
                    key=lambda u: (u["uid"], u["key"]),
                )
                if raw["state"] in (_PENDING, _LEASED)
            ]
            return units, False

        return self._transaction(mutate)

    @property
    def drained(self) -> bool:
        """No unit is pending or leased (everything acked or failed)."""
        counts = self.snapshot()["counts"]
        return counts[_PENDING] == 0 and counts[_LEASED] == 0

    def outstanding(self) -> int:
        """Units still pending or leased."""
        counts = self.snapshot()["counts"]
        return counts[_PENDING] + counts[_LEASED]

    def clear(self) -> None:
        """Remove the queue file (e.g. after a drained sweep is GC'd)."""

        def mutate(state):
            state["units"] = {}
            return None, True

        self._transaction(mutate)
        try:
            os.remove(self.path)
        except OSError:
            pass
