"""Checksummed, torn-write-safe journal I/O: the shared persistence writer.

Every durable byte the sweep stack writes — result-cache and memo JSONL
lines, the sweep manifest, the work-queue state — goes through this
module, so crash safety is implemented (and chaos-tested) exactly once:

* **Per-line CRC** (:func:`encode_entry` / :func:`decode_entry`): each
  JSONL record carries a CRC-32 of its canonical body.  A reader can
  therefore tell a *torn tail* — an unparsable final line, the signature
  of a writer killed mid-append — from *corruption* anywhere else (an
  unparsable line mid-file, a parsable line whose CRC does not match, a
  malformed envelope).  Torn tails are truncated and the sweep
  continues; corruption is counted and surfaced by ``repro doctor``,
  which quarantines the damaged bytes rather than silently dropping
  them.  Whole-file JSON states (queue, manifest) get the same
  treatment via :func:`encode_blob` / :func:`decode_blob`.
* **One append path** (:func:`append_entry`): single-``write()`` line
  appends under a bounded advisory flock, with a *self-healing* check
  that the file currently ends in a newline — so an append after a torn
  write can never merge into the garbage tail and lose its own record.
  ``repro lint`` RPR150 forbids raw append-mode ``open()`` calls
  anywhere else in the package.
* **Durability policy** (``REPRO_DURABILITY``): ``fsync`` syncs every
  append and every atomic-rename publish; ``batch`` (the default) skips
  the per-append fsync — completed ``write()`` syscalls survive process
  death, only machine death can lose them — but still syncs before
  rename publishes; ``off`` never syncs (throwaway stores, tests).
* **Crash points**: every write site calls :func:`maybe_crash` with a
  stable site name (``cache.pre-append``, ``queue.post-rename``, ...).
  When ``REPRO_CRASH_POINT`` is armed the process SIGKILLs itself there
  (see :mod:`repro.measure.faults`), which is how the crash-consistency
  suite proves doctor + resume reconverges from every named site.

Determinism contract (``repro lint`` RPR101/RPR102): encoded lines are
pure functions of their entries — the CRC covers a ``sort_keys``
canonical serialization, and nothing here reads wall clocks or entropy
(``time.monotonic``/``time.sleep`` pace the flock retry only).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import zlib
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

try:
    import fcntl
except ImportError:  # non-POSIX: appends are not locked
    fcntl = None

#: Environment variable selecting the durability mode.
DURABILITY_ENV = "REPRO_DURABILITY"

#: ``fsync`` — sync every append and rename; ``batch`` — sync renames
#: only (appends survive process crashes, not power loss); ``off`` —
#: never sync.
DURABILITY_MODES = ("fsync", "batch", "off")

#: Environment variable arming a crash point (``site`` or ``site:N`` to
#: SIGKILL on the Nth hit).  The site registry and the kill itself live
#: in :mod:`repro.measure.faults`.
CRASH_POINT_ENV = "REPRO_CRASH_POINT"

#: Environment variable naming a JSONL file the lock/fence trace
#: recorder appends to.  Unset (the default) the recorder is a no-op
#: costing one ``os.environ`` lookup per event; set, every flock
#: acquire/release, fence check, and durable write emits one line — the
#: dynamic oracle the concurrency lint tier (RPR160–163) is validated
#: against.
LOCK_TRACE_ENV = "REPRO_LOCK_TRACE"

#: Longest a writer waits for the advisory file lock before proceeding
#: unlocked (single-line ``write()`` appends interleave at line
#: granularity anyway, so a missed lock degrades to at worst one torn
#: line — which the loader classifies and recovers — rather than a
#: deadlocked sweep).
LOCK_TIMEOUT = 5.0

#: Exponential-backoff schedule of the flock retry loop (mirrors
#: :class:`repro.measure.executor.RetryPolicy`): attempt *n* sleeps
#: ``min(max, base * 2**(n-1))`` plus a deterministic jitter fraction.
LOCK_RETRY_BASE = 0.005
LOCK_RETRY_MAX = 0.1
LOCK_RETRY_JITTER = 0.25


def durability_mode(explicit: Optional[str] = None) -> str:
    """The active durability mode: *explicit*, ``$REPRO_DURABILITY``,
    or the ``batch`` default.  Unknown values fall back to ``batch``
    (the conservative middle) rather than crashing a sweep."""
    mode = explicit or os.environ.get(DURABILITY_ENV) or "batch"
    return mode if mode in DURABILITY_MODES else "batch"


def maybe_crash(site: str) -> None:
    """SIGKILL the process at *site* when ``REPRO_CRASH_POINT`` arms it.

    A no-op (without even importing the chaos harness) unless the
    environment variable is set, so the hot append path costs one
    ``os.environ`` lookup.
    """
    if not os.environ.get(CRASH_POINT_ENV):
        return
    from repro.measure.faults import crash_point

    crash_point(site)


def _crash_armed(site: str) -> bool:
    """Whether *site* is the armed crash point (regardless of count)."""
    if not os.environ.get(CRASH_POINT_ENV):
        return False
    from repro.measure.faults import crash_site_armed

    return crash_site_armed(site)


# ---------------------------------------------------------------------------
# Lock/fence trace recorder (the dynamic oracle of the concurrency lint)
# ---------------------------------------------------------------------------

#: Per-thread stack of lock-class names this thread currently holds, in
#: acquisition order.  Lock *classes* ("queue", "store", "manifest",
#: "quarantine"), not paths: the static model (RPR161) reasons about
#: classes, so the trace does too.
_TRACE_STATE = threading.local()


def _held_locks() -> List[str]:
    held = getattr(_TRACE_STATE, "held", None)
    if held is None:
        held = []
        _TRACE_STATE.held = held
    return held


def trace_event(event: str, **fields) -> None:
    """Append one trace line when ``REPRO_LOCK_TRACE`` names a file.

    Each line is a self-contained JSON record carrying the event name,
    the emitting pid/thread, and the lock classes held at that moment.
    O_APPEND single-``write()`` lines keep concurrent processes from
    interleaving mid-record (same argument as :func:`append_entry`); a
    reader that hits a torn final line skips it.
    """
    path = os.environ.get(LOCK_TRACE_ENV)
    if not path:
        return
    record = dict(fields)
    record["event"] = event
    record["held"] = list(_held_locks())
    record["pid"] = os.getpid()
    record["thread"] = threading.get_ident()
    line = json.dumps(record, sort_keys=True) + "\n"
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line)
    except OSError:
        # Tracing is observability, never control flow: a broken trace
        # file must not take down the writer being observed.
        pass


# ---------------------------------------------------------------------------
# Bounded, jittered flock
# ---------------------------------------------------------------------------


def _retry_delay(attempt: int, salt: str) -> float:
    """Deterministic backoff-plus-jitter delay for retry *attempt*
    (1-based).  Mirrors ``RetryPolicy.delay_for``: the jitter fraction
    is drawn from a digest of (attempt, salt), so two writers contending
    for the same lock de-synchronize identically on every run."""
    delay = min(LOCK_RETRY_MAX, LOCK_RETRY_BASE * 2 ** (attempt - 1))
    digest = hashlib.sha256(f"{attempt}:{salt}".encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:4], "big") / 2**32
    return delay * (1.0 + LOCK_RETRY_JITTER * fraction)


def flock_bounded(
    handle,
    timeout: float = LOCK_TIMEOUT,
    salt: str = "",
    name: str = "store",
) -> Tuple[bool, int]:
    """Try to take an exclusive flock, giving up after *timeout* seconds.

    Returns ``(locked, retries)``: whether the lock was acquired, and
    how many non-blocking attempts failed before it was (or before the
    deadline).  A plain blocking ``flock`` can park a sweep forever
    behind a worker that died while holding the lock; polling a
    non-blocking attempt with capped exponential backoff (plus the
    deterministic jitter of :func:`_retry_delay`) bounds the damage
    without stampeding the lock.

    *name* is the lock **class** ("queue", "store", "manifest",
    "quarantine") recorded by the trace recorder and matched against
    the static lock-order model (RPR161).  On success the acquire event
    carries the classes already held — the edges of the observed
    lock-order graph — and *name* is pushed onto this thread's held
    stack until :func:`release_flock`.
    """
    if fcntl is None:
        return False, 0
    deadline = time.monotonic() + timeout
    attempt = 0
    while True:
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            trace_event("acquire", lock=name)
            _held_locks().append(name)
            return True, attempt
        except OSError:
            now = time.monotonic()
            if now >= deadline:
                return False, attempt
            attempt += 1
            time.sleep(
                min(_retry_delay(attempt, salt), deadline - now)
            )


def release_flock(handle, locked: bool, name: str = "store") -> None:
    """Release an flock taken by :func:`flock_bounded` (no-op when the
    acquisition failed), popping *name* from the held stack and tracing
    the release.  Every ``finally`` block in the persistence layer goes
    through here so the trace's held-stack bookkeeping cannot drift
    from the real lock state."""
    if not locked or fcntl is None:
        return
    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
    held = _held_locks()
    for index in range(len(held) - 1, -1, -1):
        if held[index] == name:
            del held[index]
            break
    trace_event("release", lock=name)


def _count(stats, field: str, amount: int) -> None:
    """Bump ``stats.<field>`` when *stats* carries such a counter."""
    if stats is None or amount == 0:
        return
    current = getattr(stats, field, None)
    if current is not None:
        setattr(stats, field, current + amount)


# ---------------------------------------------------------------------------
# Per-line CRC codec
# ---------------------------------------------------------------------------


def line_crc(body: str) -> str:
    """CRC-32 of a canonical line body, as 8 hex digits."""
    return format(zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF, "08x")


def encode_entry(entry: Dict[str, Any]) -> str:
    """One checksummed JSONL line (without the trailing newline).

    The CRC covers the ``sort_keys`` canonical serialization of the
    entry *without* its ``crc`` field, so decoding re-derives the same
    bytes from the parsed JSON — no raw-line bookkeeping needed.
    """
    body = {key: value for key, value in entry.items() if key != "crc"}
    crc = line_crc(json.dumps(body, sort_keys=True))
    body["crc"] = crc
    return json.dumps(body, sort_keys=True)


def decode_entry(line: str):
    """Parse one checksummed JSONL line.

    Returns ``(entry, None)`` — the entry *without* its ``crc`` field —
    or ``(None, problem)`` where *problem* is:

    * ``"unparsable"`` — not JSON at all (a torn write, if it is the
      file's final line; corruption otherwise — the caller classifies
      by position, see :func:`scan_journal`);
    * ``"corrupt"`` — well-formed JSON with a malformed envelope (not a
      dict, no string ``key``, no ``data``);
    * ``"crc"`` — envelope intact but the checksum is missing or does
      not match the body (bit rot, a partially overwritten line, or a
      legacy line from before checksumming).
    """
    try:
        entry = json.loads(line)
    except ValueError:
        return None, "unparsable"
    if not isinstance(entry, dict):
        return None, "corrupt"
    crc = entry.pop("crc", None)
    if not isinstance(entry.get("key"), str) or "data" not in entry:
        return None, "corrupt"
    if crc != line_crc(json.dumps(entry, sort_keys=True)):
        return None, "crc"
    return entry, None


# ---------------------------------------------------------------------------
# Whole-file JSON states (queue, manifest)
# ---------------------------------------------------------------------------


def encode_blob(state: Dict[str, Any]) -> str:
    """A whole-file JSON state with a top-level ``crc`` field (same
    canonical-body scheme as :func:`encode_entry`)."""
    body = {key: value for key, value in state.items() if key != "crc"}
    crc = line_crc(json.dumps(body, sort_keys=True))
    body["crc"] = crc
    return json.dumps(body, sort_keys=True)


def decode_blob(text: str):
    """Parse a checksummed whole-file state; ``(state, None)`` or
    ``(None, "unparsable" | "corrupt" | "crc")``."""
    try:
        state = json.loads(text)
    except ValueError:
        return None, "unparsable"
    if not isinstance(state, dict):
        return None, "corrupt"
    crc = state.pop("crc", None)
    if crc != line_crc(json.dumps(state, sort_keys=True)):
        return None, "crc"
    return state, None


# ---------------------------------------------------------------------------
# Scanning: torn-tail vs. mid-file classification
# ---------------------------------------------------------------------------


class JournalRecord(NamedTuple):
    """One line of a scanned journal, valid or not."""

    entry: Optional[Dict[str, Any]]
    #: ``None`` (valid), ``"torn"`` (unparsable final line — a crashed
    #: append, safe to truncate), ``"unparsable"`` / ``"corrupt"`` /
    #: ``"crc"`` (mid-file damage — quarantine material).
    problem: Optional[str]
    #: Byte offset of the line start within the file.
    offset: int
    #: Raw line bytes (without the newline).
    raw: bytes


class JournalScan:
    """The result of :func:`scan_journal`: every record, classified."""

    def __init__(self):
        self.records: List[JournalRecord] = []
        #: Byte offset where a torn tail starts (``None`` = clean tail).
        #: Truncating the file here recovers every intact record.
        self.torn_offset: Optional[int] = None
        #: Mid-file records that failed to decode (excludes the torn
        #: tail): these need quarantine, not truncation.
        self.corrupt = 0
        self.size = 0

    @property
    def torn(self) -> bool:
        return self.torn_offset is not None

    def entries(self) -> List[Dict[str, Any]]:
        """The valid entries, in file order."""
        return [
            record.entry for record in self.records
            if record.problem is None
        ]


def scan_journal(path: str) -> JournalScan:
    """Read and classify every line of the JSONL store at *path*.

    The classification rule: a line that is not even JSON *and* is the
    file's final line is a **torn tail** — the signature of a writer
    killed mid-append — and is safe to truncate away.  Everything else
    that fails to decode (unparsable mid-file, bad envelope, CRC
    mismatch anywhere) is **corruption**: bytes that claim to be a
    record but cannot be trusted, counted and left for ``repro doctor``
    to quarantine.  A missing file scans as empty.
    """
    scan = JournalScan()
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError:
        return scan
    scan.size = len(blob)
    lines: List[Tuple[int, bytes]] = []
    offset = 0
    for raw in blob.split(b"\n"):
        if raw.strip():
            lines.append((offset, raw))
        offset += len(raw) + 1
    for index, (start, raw) in enumerate(lines):
        try:
            entry, problem = decode_entry(raw.decode("utf-8"))
        except UnicodeDecodeError:
            entry, problem = None, "unparsable"
        if problem == "unparsable" and index == len(lines) - 1:
            problem = "torn"
            scan.torn_offset = start
        elif problem is not None:
            scan.corrupt += 1
        scan.records.append(JournalRecord(entry, problem, start, raw))
    return scan


# ---------------------------------------------------------------------------
# The one append path
# ---------------------------------------------------------------------------


def append_entry(
    path: str,
    entry: Dict[str, Any],
    kind: str = "cache",
    stats=None,
    durability: Optional[str] = None,
) -> None:
    """Append one checksummed entry to the JSONL store at *path*.

    *kind* names the store for crash-point sites (``cache``, ``memo``).
    *stats* is any object carrying ``lock_timeouts`` / ``lock_retries``
    counters (e.g. :class:`~repro.core.cache.ResultCache`); the bounded
    flock's retries and timeouts are folded into it.

    Crash safety: the record is a single ``write()`` of one line, taken
    after self-healing a missing trailing newline — so a predecessor's
    torn tail can corrupt at most *itself*, never a later append.  The
    armed ``{kind}.mid-append`` site deliberately splits the write to
    manufacture the torn-tail case the readers must recover from.
    """
    line = encode_entry(entry)
    payload = (line + "\n").encode("utf-8")
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    mode = durability_mode(durability)
    maybe_crash(f"{kind}.pre-append")
    with open(path, "ab+") as handle:
        locked, retries = flock_bounded(handle, salt=path, name="store")
        _count(stats, "lock_retries", retries)
        if not locked and fcntl is not None:
            _count(stats, "lock_timeouts", 1)
        try:
            trace_event("write", store=kind)
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    # A previous writer died mid-line: terminate the
                    # torn tail so this record starts on its own line
                    # (the scan still classifies the tail as torn-or-
                    # corrupt; it just cannot swallow this append).
                    handle.write(b"\n")
            if _crash_armed(f"{kind}.mid-append"):
                half = max(1, len(payload) // 2)
                handle.write(payload[:half])
                handle.flush()
                maybe_crash(f"{kind}.mid-append")
                handle.write(payload[half:])
            else:
                handle.write(payload)
            handle.flush()
            maybe_crash(f"{kind}.pre-fsync")
            if mode == "fsync":
                os.fsync(handle.fileno())
        finally:
            release_flock(handle, locked, name="store")
    maybe_crash(f"{kind}.post-append")


def quarantine_lines(
    path: str,
    lines: List[bytes],
    durability: Optional[str] = None,
    kind: str = "quarantine",
) -> None:
    """Append raw damaged lines to the quarantine sidecar at *path*.

    Quarantined bytes are preserved verbatim — they failed to decode,
    so they cannot be re-encoded through :func:`append_entry` — but the
    append still goes through this module (lint RPR150) so it shares
    the flock, the durability policy, and the ``{kind}.pre-append`` /
    ``{kind}.post-append`` crash points with every other writer (lint
    RPR163 proves no durable write path escapes the registry).
    """
    if not lines:
        return
    mode = durability_mode(durability)
    maybe_crash(f"{kind}.pre-append")
    with open(path, "ab+") as handle:
        locked, _ = flock_bounded(handle, salt=path, name="quarantine")
        try:
            trace_event("write", store=kind)
            handle.seek(0, os.SEEK_END)
            handle.write(b"\n".join(lines) + b"\n")
            handle.flush()
            if mode == "fsync":
                os.fsync(handle.fileno())
        finally:
            release_flock(handle, locked, name="quarantine")
    maybe_crash(f"{kind}.post-append")


def publish_blob(
    path: str,
    state: Dict[str, Any],
    kind: str,
    durability: Optional[str] = None,
) -> None:
    """Atomically publish a checksummed whole-file JSON state.

    Write-to-temp + ``os.replace``: readers observe either the old or
    the new state, never a mixture.  Under ``fsync``/``batch`` the temp
    file is synced before the rename (an unsynced rename can publish an
    empty inode after power loss); ``off`` skips the sync.  The
    ``{kind}.pre-rename`` / ``{kind}.post-rename`` crash points bracket
    the publish.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    mode = durability_mode(durability)
    blob = encode_blob(state)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(blob)
        handle.flush()
        if mode != "off":
            os.fsync(handle.fileno())
    trace_event("write", store=kind)
    maybe_crash(f"{kind}.pre-rename")
    os.replace(tmp, path)
    maybe_crash(f"{kind}.post-rename")
