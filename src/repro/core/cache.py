"""Content-addressed persistent cache of characterization results.

A full sweep re-measures thousands of instruction variants even though
the simulator is deterministic: for a fixed (form, microarchitecture,
measurement configuration, code version) the characterization can never
change.  This module memoizes it on disk so that repeated ``sweep`` runs,
``table1`` regeneration, and the benchmark harness skip measurement
entirely.

Entries live in JSON-lines files, one per microarchitecture, under
``~/.cache/repro`` (or an explicit ``cache_dir``).  Each line carries

* ``salt`` — the code-version salt it was written under,
* ``key``  — a SHA-256 digest of (form uid, uarch name, the
  :class:`~repro.measure.backend.MeasurementConfig` protocol fields,
  salt),
* ``uid`` / ``uarch`` — for human inspection of the file,
* ``data`` — the :func:`~repro.core.result.encode_characterization`
  encoding, or ``null`` for a form the runner skips (so a warm sweep
  does not need a backend even to re-discover what is unmeasurable).

Because the salt participates in the key, bumping :data:`CACHE_SCHEMA`
(or the package version) invalidates every existing entry; stale lines
are counted as invalidations and dropped on load, while lines that do
not decode at all — torn concurrent appends, truncation, garbage, or
well-formed JSON missing its envelope fields — are counted separately
as ``corrupt_lines``.  The file is append-only: re-characterized
entries are appended and the last line for a key wins.  Appends take an
advisory ``flock`` with a **bounded** wait (:data:`LOCK_TIMEOUT`): a
writer that cannot get the lock proceeds unlocked (counted in
``lock_timeouts``) rather than deadlocking the sweep behind a crashed
lock holder.

Contract (enforced by ``repro lint``, RPR101/RPR102): keys and encoded
entries must be deterministic functions of their inputs — no wall-clock
reads, no unseeded randomness, no iteration over unordered sets on any
path that feeds a digest or a serialized line.  ``time.monotonic`` /
``time.sleep`` are exempt because the flock retry loop paces with them;
they never reach a key.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, Optional, Sequence

from repro.measure.backend import MeasurementConfig

try:
    import fcntl
except ImportError:  # non-POSIX: appends are not locked
    fcntl = None

#: Bump to invalidate every cache entry written by older code — part of
#: every cache key, together with the package version.
CACHE_SCHEMA = 1

#: Longest a writer waits for the advisory file lock before appending
#: unlocked (single-line ``write()`` appends interleave at line
#: granularity anyway, so a missed lock degrades to at worst one torn
#: line — which the loader drops — rather than a deadlocked sweep).
LOCK_TIMEOUT = 5.0

_MISS = object()


def _flock_bounded(handle, timeout: float = LOCK_TIMEOUT) -> bool:
    """Try to take an exclusive flock, giving up after *timeout* seconds.

    Returns ``True`` when the lock was acquired.  A plain blocking
    ``flock`` can park a sweep forever behind a worker that died while
    holding the lock; polling a non-blocking attempt bounds the damage.
    """
    if fcntl is None:
        return False
    deadline = time.monotonic() + timeout
    while True:
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            return True
        except OSError:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)


def _decode_line(line: str):
    """Parse one JSONL entry; returns ``(entry, None)`` or
    ``(None, reason)`` for a line that must be skipped."""
    try:
        entry = json.loads(line)
    except ValueError:
        return None, "corrupt"  # truncated/torn/garbage line
    if not isinstance(entry, dict):
        return None, "corrupt"
    if not isinstance(entry.get("key"), str) or "data" not in entry:
        return None, "corrupt"  # well-formed JSON, malformed payload
    return entry, None


def cache_salt() -> str:
    """The code-version salt mixed into every cache key."""
    from repro import __version__

    return f"{__version__}/{CACHE_SCHEMA}"


def default_cache_dir() -> str:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro")


def cache_key(
    form_uid: str,
    uarch_name: str,
    config: MeasurementConfig,
    salt: Optional[str] = None,
) -> str:
    """Content address of one measurement: digest of everything that
    could change its outcome."""
    payload = json.dumps(
        {
            "uid": form_uid,
            "uarch": uarch_name,
            # Protocol fields only: resource knobs such as the LRU bound
            # do not affect results and must not invalidate the cache.
            "config": config.protocol_fields(),
            "salt": salt if salt is not None else cache_salt(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Persistent characterization store, one JSON-lines file per uarch."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        salt: Optional[str] = None,
    ):
        self.cache_dir = cache_dir or default_cache_dir()
        # Fail before any measurement work, not at the first put().
        if os.path.exists(self.cache_dir) and not os.path.isdir(
            self.cache_dir
        ):
            raise NotADirectoryError(
                f"cache path exists and is not a directory: "
                f"{self.cache_dir}"
            )
        self.salt = salt if salt is not None else cache_salt()
        #: Entries loaded under a different salt, dropped on load.
        self.invalidations = 0
        #: Lines that could not be decoded at all (truncated writes,
        #: garbage, malformed payloads) — distinct from invalidations,
        #: which are *valid* entries from another code version.
        self.corrupt_lines = 0
        #: Appends that proceeded unlocked after the bounded flock wait.
        self.lock_timeouts = 0
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._loaded: set = set()

    # -- file layout ----------------------------------------------------

    def path_for(self, uarch_name: str) -> str:
        return os.path.join(self.cache_dir, f"{uarch_name}.jsonl")

    def _load(self, uarch_name: str) -> None:
        if uarch_name in self._loaded:
            return
        self._loaded.add(uarch_name)
        path = self.path_for(uarch_name)
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                entry, problem = _decode_line(line)
                if problem is not None:
                    self.corrupt_lines += 1
                    continue
                if entry.get("salt") != self.salt:
                    self.invalidations += 1
                    continue
                self._entries[entry["key"]] = entry

    # -- lookup / store -------------------------------------------------

    def key_for(self, form_uid: str, uarch_name: str,
                config: MeasurementConfig) -> str:
        return cache_key(form_uid, uarch_name, config, self.salt)

    def get(self, key: str, uarch_name: str):
        """The stored ``data`` dict, ``None`` for a cached skip marker, or
        the module-level miss sentinel."""
        self._load(uarch_name)
        entry = self._entries.get(key)
        if entry is None:
            return _MISS
        return entry["data"]

    @staticmethod
    def is_miss(value) -> bool:
        return value is _MISS

    @staticmethod
    def miss():
        """The sentinel :meth:`get` returns for an absent key."""
        return _MISS

    def put(
        self,
        key: str,
        form_uid: str,
        uarch_name: str,
        data: Optional[Dict[str, Any]],
    ) -> None:
        """Persist one characterization (``data=None`` marks a skip)."""
        self._load(uarch_name)
        entry = {
            "salt": self.salt,
            "key": key,
            "uid": form_uid,
            "uarch": uarch_name,
            "data": data,
        }
        self._entries[key] = entry
        os.makedirs(self.cache_dir, exist_ok=True)
        line = json.dumps(entry, sort_keys=True) + "\n"
        with open(self.path_for(uarch_name), "a",
                  encoding="utf-8") as handle:
            locked = _flock_bounded(handle)
            if not locked and fcntl is not None:
                self.lock_timeouts += 1
            try:
                handle.write(line)
            finally:
                if locked:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def __len__(self) -> int:
        return len(self._entries)


def measurement_key(
    uarch_name: str,
    config: MeasurementConfig,
    code: Sequence,
    init: Optional[Dict[str, int]],
    salt: Optional[str] = None,
) -> str:
    """Content address of one raw ``measure()`` call.

    ``code`` is a sequence of instantiated instructions; the digest uses
    ``form.uid|<intel syntax>`` per instruction, which pins both the
    form and the concrete operand assignment (registers, immediates,
    memory operands) that codegen chose.
    """
    payload = json.dumps(
        {
            "uarch": uarch_name,
            "config": config.protocol_fields(),
            "salt": salt if salt is not None else cache_salt(),
            "code": [
                f"{instruction.form.uid}|{instruction}"
                for instruction in code
            ],
            "init": sorted(init.items()) if init else None,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class MeasurementMemo:
    """Persistent memo of raw backend measurements, shared across shards.

    The characterization algorithms re-measure the same *sub*-sequences
    for thousands of forms: every blocking-instruction discovery run
    (Section 5.1.1), the per-port blocking blocks of Algorithm 1, and
    the chain fragments of the latency generators are identical across
    forms — and across the :class:`~repro.core.sweep.SweepEngine` worker
    processes, each of which used to rebuild its own in-process cache
    from scratch.  This memo persists those
    :class:`~repro.pipeline.core.CounterValues` (in the lossless
    :func:`~repro.core.result.encode_counters` wire format) next to the
    result cache, keyed by :func:`measurement_key`.

    Concurrency model: workers load the file once (lazily) and append
    new entries under an advisory ``flock``; appends are single
    ``write()`` calls of one JSON line, so concurrent writers interleave
    at line granularity and a torn tail line is dropped as an
    invalidation on the next load.  Entries written by one worker become
    visible to *other* processes on their next load — the parent
    pre-warms shared measurements before forking so shards start hot.
    """

    #: File suffix distinguishing memo files from result-cache files.
    SUFFIX = ".measure.jsonl"

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        salt: Optional[str] = None,
    ):
        self.cache_dir = cache_dir or default_cache_dir()
        if os.path.exists(self.cache_dir) and not os.path.isdir(
            self.cache_dir
        ):
            raise NotADirectoryError(
                f"cache path exists and is not a directory: "
                f"{self.cache_dir}"
            )
        self.salt = salt if salt is not None else cache_salt()
        self.invalidations = 0
        #: Undecodable lines (torn concurrent writes, garbage) skipped
        #: on load — see :class:`ResultCache`.
        self.corrupt_lines = 0
        #: Appends that proceeded unlocked after the bounded flock wait.
        self.lock_timeouts = 0
        self._entries: Dict[str, Any] = {}
        self._loaded: set = set()

    def path_for(self, uarch_name: str) -> str:
        return os.path.join(self.cache_dir, f"{uarch_name}{self.SUFFIX}")

    def _load(self, uarch_name: str) -> None:
        if uarch_name in self._loaded:
            return
        self._loaded.add(uarch_name)
        path = self.path_for(uarch_name)
        if not os.path.exists(path):
            return
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                entry, problem = _decode_line(line)
                if problem is not None:
                    self.corrupt_lines += 1
                    continue
                if entry.get("salt") != self.salt:
                    self.invalidations += 1
                    continue
                self._entries[entry["key"]] = entry["data"]

    def key_for(
        self,
        uarch_name: str,
        config: MeasurementConfig,
        code: Sequence,
        init: Optional[Dict[str, int]],
    ) -> str:
        return measurement_key(uarch_name, config, code, init, self.salt)

    def get(self, key: str, uarch_name: str):
        """The encoded counters, or the module-level miss sentinel."""
        self._load(uarch_name)
        return self._entries.get(key, _MISS)

    @staticmethod
    def is_miss(value) -> bool:
        return value is _MISS

    def put(self, key: str, uarch_name: str, data: Dict[str, Any]) -> None:
        self._load(uarch_name)
        if key in self._entries:
            return
        self._entries[key] = data
        os.makedirs(self.cache_dir, exist_ok=True)
        line = json.dumps(
            {"salt": self.salt, "key": key, "data": data}, sort_keys=True
        ) + "\n"
        with open(self.path_for(uarch_name), "a",
                  encoding="utf-8") as handle:
            # Bounded wait: a writer that died holding the advisory lock
            # must not park the whole sweep; a lockless single-line
            # append interleaves at line granularity, and a torn tail is
            # dropped (and counted) by the next load.
            locked = _flock_bounded(handle)
            if not locked and fcntl is not None:
                self.lock_timeouts += 1
            try:
                handle.write(line)
            finally:
                if locked:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def __len__(self) -> int:
        return len(self._entries)
