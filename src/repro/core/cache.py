"""Content-addressed persistent cache of characterization results.

A full sweep re-measures thousands of instruction variants even though
the simulator is deterministic: for a fixed (form, microarchitecture,
measurement configuration, code version) the characterization can never
change.  This module memoizes it on disk so that repeated ``sweep`` runs,
``table1`` regeneration, and the benchmark harness skip measurement
entirely.

Entries live in JSON-lines files, one per microarchitecture, under
``~/.cache/repro`` (or an explicit ``cache_dir``).  Each line carries

* ``salt`` — the code-version salt it was written under,
* ``key``  — a SHA-256 digest of (form uid, uarch name, the
  :class:`~repro.measure.backend.MeasurementConfig` protocol fields,
  salt),
* ``uid`` / ``uarch`` — for human inspection of the file,
* ``data`` — the :func:`~repro.core.result.encode_characterization`
  encoding, or ``null`` for a form the runner skips (so a warm sweep
  does not need a backend even to re-discover what is unmeasurable).

Because the salt participates in the key, bumping :data:`CACHE_SCHEMA`
(or the package version) invalidates every existing entry; stale lines
are counted as invalidations and dropped on load.  Each line carries a
CRC (see :mod:`repro.core.journal`, the shared crash-safe writer all
appends go through): an unparsable *final* line is a **torn tail** — a
writer died mid-append — counted in ``torn_tails`` and recovered by
truncation, while damage anywhere else (unparsable mid-file lines,
CRC mismatches, malformed envelopes) is counted in ``corrupt_lines``
and left for ``repro doctor`` to quarantine.  The file is append-only:
re-characterized entries are appended and the last line for a key
wins.  Appends take an advisory ``flock`` with a **bounded**, jittered
retry (:func:`~repro.core.journal.flock_bounded`): a writer that
cannot get the lock proceeds unlocked (counted in ``lock_timeouts``,
with the retry attempts in ``lock_retries``) rather than deadlocking
the sweep behind a crashed lock holder.

Beyond the result store this module also holds the *incremental sweep*
machinery: :func:`form_fingerprint` digests every input of one form's
characterization (catalog entry, ground-truth µop tables, uarch knobs,
measurement protocol, code-version salt), :class:`SweepManifest`
persists those fingerprints per (uarch, config) so the next sweep can
diff them and re-measure only affected forms, and
:func:`collect_garbage` compacts the JSONL stores, dropping orphaned
keys (no manifest references them) and superseded or stale lines.

Contract (enforced by ``repro lint``, RPR101/RPR102): keys and encoded
entries must be deterministic functions of their inputs — no wall-clock
reads, no unseeded randomness, no iteration over unordered sets on any
path that feeds a digest or a serialized line.  ``time.monotonic`` /
``time.sleep`` are exempt because the flock retry loop paces with them;
they never reach a key.  (The sweep *work queue* needs wall-clock lease
expiry and therefore lives in :mod:`repro.core.workqueue`, outside this
contract.)
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.journal import (
    LOCK_TIMEOUT,
    append_entry,
    decode_blob,
    decode_entry,
    encode_entry,
    flock_bounded,
    publish_blob,
    release_flock,
    scan_journal,
    trace_event,
)
from repro.measure.backend import MeasurementConfig

#: Bump to invalidate every cache entry written by older code — part of
#: every cache key, together with the package version.  2: per-line
#: CRCs (PR 9) — pre-CRC lines would all classify as damaged, so the
#: salt retires them wholesale instead.
CACHE_SCHEMA = 2

_MISS = object()


class LiveLeaseError(RuntimeError):
    """GC (or doctor ``--repair``) refused to run: a work queue in the
    cache directory holds unexpired leases, i.e. drainers are (or very
    recently were) live.  Compacting or repairing under them could drop
    bytes they are about to write or read; wait, or force past the
    check when the drainers are known dead."""

    def __init__(self, queues: List[Tuple[str, int]]):
        self.queues = queues
        detail = ", ".join(
            f"{os.path.basename(path)} ({count} live lease(s))"
            for path, count in queues
        )
        super().__init__(
            f"live leases in work queue(s): {detail}"
        )


def cache_salt() -> str:
    """The code-version salt mixed into every cache key."""
    from repro import __version__

    return f"{__version__}/{CACHE_SCHEMA}"


def default_cache_dir() -> str:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro")


def cache_key(
    form_uid: str,
    uarch_name: str,
    config: MeasurementConfig,
    salt: Optional[str] = None,
) -> str:
    """Content address of one measurement: digest of everything that
    could change its outcome."""
    payload = json.dumps(
        {
            "uid": form_uid,
            "uarch": uarch_name,
            # Protocol fields only: resource knobs such as the LRU bound
            # do not affect results and must not invalidate the cache.
            "config": config.protocol_fields(),
            "salt": salt if salt is not None else cache_salt(),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Persistent characterization store, one JSON-lines file per uarch."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        salt: Optional[str] = None,
    ):
        self.cache_dir = cache_dir or default_cache_dir()
        # Fail before any measurement work, not at the first put().
        if os.path.exists(self.cache_dir) and not os.path.isdir(
            self.cache_dir
        ):
            raise NotADirectoryError(
                f"cache path exists and is not a directory: "
                f"{self.cache_dir}"
            )
        self.salt = salt if salt is not None else cache_salt()
        #: Entries loaded under a different salt, dropped on load.
        self.invalidations = 0
        #: Mid-file lines that could not be decoded (garbage, CRC
        #: mismatches, malformed payloads) — distinct from
        #: invalidations, which are *valid* entries from another code
        #: version, and from torn tails, which are crash residue.
        self.corrupt_lines = 0
        #: Unparsable final lines (a writer died mid-append); the
        #: intact prefix is served and doctor truncates the tail.
        self.torn_tails = 0
        #: Appends that proceeded unlocked after the bounded flock wait,
        #: and the total lock-retry attempts behind all appends.
        self.lock_timeouts = 0
        self.lock_retries = 0
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._loaded: set = set()

    # -- file layout ----------------------------------------------------

    def path_for(self, uarch_name: str) -> str:
        return os.path.join(self.cache_dir, f"{uarch_name}.jsonl")

    def _load(self, uarch_name: str) -> None:
        if uarch_name in self._loaded:
            return
        self._loaded.add(uarch_name)
        scan = scan_journal(self.path_for(uarch_name))
        self.torn_tails += 1 if scan.torn else 0
        self.corrupt_lines += scan.corrupt
        for entry in scan.entries():
            if entry.get("salt") != self.salt:
                self.invalidations += 1
                continue
            self._entries[entry["key"]] = entry

    # -- lookup / store -------------------------------------------------

    def key_for(self, form_uid: str, uarch_name: str,
                config: MeasurementConfig) -> str:
        return cache_key(form_uid, uarch_name, config, self.salt)

    def get(self, key: str, uarch_name: str):
        """The stored ``data`` dict, ``None`` for a cached skip marker, or
        the module-level miss sentinel."""
        self._load(uarch_name)
        entry = self._entries.get(key)
        if entry is None:
            return _MISS
        return entry["data"]

    @staticmethod
    def is_miss(value) -> bool:
        return value is _MISS

    @staticmethod
    def miss():
        """The sentinel :meth:`get` returns for an absent key."""
        return _MISS

    def put(
        self,
        key: str,
        form_uid: str,
        uarch_name: str,
        data: Optional[Dict[str, Any]],
        fence: Optional[int] = None,
    ) -> None:
        """Persist one characterization (``data=None`` marks a skip).

        *fence* stamps the work-queue fencing token of the lease the
        write happened under (queue-mode drainers; see
        :meth:`~repro.core.workqueue.WorkQueue.deposit`), so a write by
        a zombie whose lease was stolen is attributable.  Serial sweeps
        write unfenced entries.
        """
        self._load(uarch_name)
        entry = {
            "salt": self.salt,
            "key": key,
            "uid": form_uid,
            "uarch": uarch_name,
            "data": data,
        }
        if fence is not None:
            entry["fence"] = fence
        self._entries[key] = entry
        os.makedirs(self.cache_dir, exist_ok=True)
        append_entry(
            self.path_for(uarch_name), entry, kind="cache", stats=self
        )

    def __len__(self) -> int:
        return len(self._entries)


def measurement_key(
    uarch_name: str,
    config: MeasurementConfig,
    code: Sequence,
    init: Optional[Dict[str, int]],
    salt: Optional[str] = None,
) -> str:
    """Content address of one raw ``measure()`` call.

    ``code`` is a sequence of instantiated instructions; the digest uses
    ``form.uid|<intel syntax>`` per instruction, which pins both the
    form and the concrete operand assignment (registers, immediates,
    memory operands) that codegen chose.
    """
    payload = json.dumps(
        {
            "uarch": uarch_name,
            "config": config.protocol_fields(),
            "salt": salt if salt is not None else cache_salt(),
            "code": [
                f"{instruction.form.uid}|{instruction}"
                for instruction in code
            ],
            "init": sorted(init.items()) if init else None,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class MeasurementMemo:
    """Persistent memo of raw backend measurements, shared across shards.

    The characterization algorithms re-measure the same *sub*-sequences
    for thousands of forms: every blocking-instruction discovery run
    (Section 5.1.1), the per-port blocking blocks of Algorithm 1, and
    the chain fragments of the latency generators are identical across
    forms — and across the :class:`~repro.core.sweep.SweepEngine` worker
    processes, each of which used to rebuild its own in-process cache
    from scratch.  This memo persists those
    :class:`~repro.pipeline.core.CounterValues` (in the lossless
    :func:`~repro.core.result.encode_counters` wire format) next to the
    result cache, keyed by :func:`measurement_key`.

    Concurrency model: workers load the file once (lazily) and append
    new entries under an advisory ``flock``; appends are single
    ``write()`` calls of one JSON line, so concurrent writers interleave
    at line granularity and a torn tail line is dropped as an
    invalidation on the next load.  Entries written by one worker become
    visible to *other* processes on their next load — the parent
    pre-warms shared measurements before forking so shards start hot.
    """

    #: File suffix distinguishing memo files from result-cache files.
    SUFFIX = ".measure.jsonl"

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        salt: Optional[str] = None,
    ):
        self.cache_dir = cache_dir or default_cache_dir()
        if os.path.exists(self.cache_dir) and not os.path.isdir(
            self.cache_dir
        ):
            raise NotADirectoryError(
                f"cache path exists and is not a directory: "
                f"{self.cache_dir}"
            )
        self.salt = salt if salt is not None else cache_salt()
        self.invalidations = 0
        #: Mid-file undecodable lines skipped on load — see
        #: :class:`ResultCache`.
        self.corrupt_lines = 0
        #: Unparsable final lines (crashed appends) — see
        #: :class:`ResultCache`.
        self.torn_tails = 0
        #: Appends that proceeded unlocked after the bounded flock wait,
        #: and the lock-retry attempts behind all appends.
        self.lock_timeouts = 0
        self.lock_retries = 0
        self._entries: Dict[str, Any] = {}
        self._loaded: set = set()

    def path_for(self, uarch_name: str) -> str:
        return os.path.join(self.cache_dir, f"{uarch_name}{self.SUFFIX}")

    def _load(self, uarch_name: str) -> None:
        if uarch_name in self._loaded:
            return
        self._loaded.add(uarch_name)
        scan = scan_journal(self.path_for(uarch_name))
        self.torn_tails += 1 if scan.torn else 0
        self.corrupt_lines += scan.corrupt
        for entry in scan.entries():
            if entry.get("salt") != self.salt:
                self.invalidations += 1
                continue
            self._entries[entry["key"]] = entry["data"]

    def key_for(
        self,
        uarch_name: str,
        config: MeasurementConfig,
        code: Sequence,
        init: Optional[Dict[str, int]],
    ) -> str:
        return measurement_key(uarch_name, config, code, init, self.salt)

    def get(self, key: str, uarch_name: str):
        """The encoded counters, or the module-level miss sentinel."""
        self._load(uarch_name)
        return self._entries.get(key, _MISS)

    @staticmethod
    def is_miss(value) -> bool:
        return value is _MISS

    def put(self, key: str, uarch_name: str, data: Dict[str, Any]) -> None:
        self._load(uarch_name)
        if key in self._entries:
            return
        self._entries[key] = data
        os.makedirs(self.cache_dir, exist_ok=True)
        append_entry(
            self.path_for(uarch_name),
            {"salt": self.salt, "key": key, "data": data},
            kind="memo",
            stats=self,
        )

    def __len__(self) -> int:
        return len(self._entries)


# ---------------------------------------------------------------------------
# Incremental re-characterization: per-form input fingerprints + manifest
# ---------------------------------------------------------------------------


def catalog_context_digest(database, uarch) -> str:
    """Digest of everything the *blocking-instruction discovery* reads.

    The port-usage algorithm measures every form against blocking
    instructions selected from the whole catalog (Section 5.1.1), so a
    form's characterization depends not only on its own entry but on the
    µop decompositions of every potential blocker.  This digest covers
    the sorted (uid, encoded entry) pairs of the full catalog on one
    generation: any edit that could shift the blocking selection — an
    entry's ports, a form added or removed — changes it, conservatively
    re-characterizing everything.  Catalog edits that leave all entries
    intact (an attribute toggle, a flags fix) leave it unchanged, so
    only the edited forms re-measure.
    """
    from repro.uarch.tables import build_entry
    from repro.uarch.uops import encode_entry

    pairs = []
    for form in database:
        try:
            encoded = encode_entry(build_entry(form, uarch))
        except KeyError:
            encoded = f"error:{form.category}"
        pairs.append([form.uid, encoded])
    pairs.sort(key=lambda pair: pair[0])
    payload = json.dumps(
        {"uarch": uarch.name, "entries": pairs}, sort_keys=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def form_fingerprint(
    form,
    uarch,
    config: MeasurementConfig,
    salt: Optional[str] = None,
    context: Optional[str] = None,
) -> str:
    """Digest of every input of one form's characterization.

    Covers the catalog entry (:meth:`InstructionForm.fingerprint_payload`),
    the ground-truth µop tables (``build_entry``, overrides included),
    the generation's simulation knobs, the measurement protocol, the
    code-version salt, and optionally the catalog-wide blocking
    *context* (:func:`catalog_context_digest`).  Two sweeps whose
    fingerprints agree for a form would measure byte-identical results,
    so the incremental path may serve the cached one; any input edit
    flips the fingerprint and re-enqueues exactly the affected forms.
    """
    from repro.uarch.tables import build_entry
    from repro.uarch.uops import encode_entry

    try:
        entry = encode_entry(build_entry(form, uarch))
    except KeyError:
        entry = f"error:{form.category}"
    payload = json.dumps(
        {
            "catalog": form.fingerprint_payload(),
            "entry": entry,
            "uarch": uarch.fingerprint_fields(),
            "config": config.protocol_fields(),
            "salt": salt if salt is not None else cache_salt(),
            "context": context,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SweepManifest:
    """Persistent record of the input fingerprints of the last sweep.

    One JSON file per microarchitecture next to the result cache,
    holding — per measurement-config digest — the ``uid ->
    {fingerprint, key}`` map of every form the last sweep(s) resolved.
    The incremental sweep path diffs current fingerprints against it to
    enqueue only affected forms, and :func:`collect_garbage` uses the
    union of recorded ``key`` values as the *root set*: a result-cache
    entry no manifest references is an orphan.

    Updates are read-modify-write transactions under an advisory flock
    on a sibling lock file, merged per config digest, and published
    atomically via ``os.replace`` — concurrent sweeps of different
    configs (or samples) never clobber each other's entries.
    """

    SUFFIX = ".manifest.json"

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        salt: Optional[str] = None,
    ):
        self.cache_dir = cache_dir or default_cache_dir()
        self.salt = salt if salt is not None else cache_salt()

    def path_for(self, uarch_name: str) -> str:
        return os.path.join(
            self.cache_dir, f"{uarch_name}{self.SUFFIX}"
        )

    def config_digest(self, config: MeasurementConfig) -> str:
        payload = json.dumps(
            {"config": config.protocol_fields(), "salt": self.salt},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _load(self, uarch_name: str) -> Dict[str, Any]:
        try:
            with open(self.path_for(uarch_name), "r",
                      encoding="utf-8") as handle:
                state, _ = decode_blob(handle.read())
        except (OSError, UnicodeDecodeError):
            state = None
        if (
            not isinstance(state, dict)
            or state.get("salt") != self.salt
            or not isinstance(state.get("configs"), dict)
        ):
            # Missing, torn, CRC-damaged, or another code version: an
            # empty manifest (a full sweep will rebuild it; GC keeps
            # everything current-salt when no manifest exists).
            return {"salt": self.salt, "configs": {}}
        return state

    def entries_for(
        self, uarch_name: str, config: MeasurementConfig
    ) -> Dict[str, Dict[str, str]]:
        """``uid -> {"fingerprint": ..., "key": ...}`` of the previous
        sweep under *config* (empty when none was recorded)."""
        state = self._load(uarch_name)
        recorded = state["configs"].get(self.config_digest(config))
        if not isinstance(recorded, dict):
            return {}
        entries = recorded.get("entries")
        return dict(entries) if isinstance(entries, dict) else {}

    def update(
        self,
        uarch_name: str,
        config: MeasurementConfig,
        entries: Dict[str, Dict[str, str]],
    ) -> None:
        """Merge *entries* into the manifest for (*uarch*, *config*)."""
        os.makedirs(self.cache_dir, exist_ok=True)
        path = self.path_for(uarch_name)
        with open(path + ".lock", "a+", encoding="utf-8") as lock:
            locked, _ = flock_bounded(lock, salt=path, name="manifest")
            try:
                state = self._load(uarch_name)
                digest = self.config_digest(config)
                recorded = state["configs"].setdefault(
                    digest, {"config": config.protocol_fields(),
                             "entries": {}},
                )
                recorded["entries"].update(entries)
                publish_blob(path, state, kind="manifest")
            finally:
                release_flock(lock, locked, name="manifest")

    def prune(self, uarch_name: str, uids) -> int:
        """Drop *uids* from every recorded config of *uarch*.

        ``repro doctor --repair`` calls this when the manifest claims a
        form was resolved but the result store has no bytes for it (a
        crash between the write and the manifest record, or quarantined
        damage): the false claim is withdrawn so the next sweep
        re-measures the form instead of trusting a phantom entry.
        Returns how many entries were removed.
        """
        uids = set(uids)
        path = self.path_for(uarch_name)
        if not uids or not os.path.exists(path):
            return 0
        removed = 0
        with open(path + ".lock", "a+", encoding="utf-8") as lock:
            locked, _ = flock_bounded(lock, salt=path, name="manifest")
            try:
                state = self._load(uarch_name)
                for recorded in state["configs"].values():
                    entries = recorded.get("entries")
                    if not isinstance(entries, dict):
                        continue
                    for uid in uids & set(entries):
                        del entries[uid]
                        removed += 1
                if removed:
                    publish_blob(path, state, kind="manifest")
            finally:
                release_flock(lock, locked, name="manifest")
        return removed

    def live_keys(self, uarch_name: str) -> Optional[set]:
        """Every result-cache key any recorded sweep references, or
        ``None`` when no manifest exists for *uarch* (in which case GC
        must keep all current-salt entries — orphanhood is unprovable).
        """
        if not os.path.exists(self.path_for(uarch_name)):
            return None
        state = self._load(uarch_name)
        if not state["configs"]:
            return None
        keys = set()
        for recorded in state["configs"].values():
            entries = recorded.get("entries")
            if isinstance(entries, dict):
                for entry in entries.values():
                    if isinstance(entry, dict) and "key" in entry:
                        keys.add(entry["key"])
        return keys


# ---------------------------------------------------------------------------
# Garbage collection / compaction
# ---------------------------------------------------------------------------


class GCStats:
    """Counters of one :func:`collect_garbage` run."""

    def __init__(self):
        self.result_kept = 0
        self.result_dropped_orphan = 0
        self.result_dropped_stale = 0
        self.result_dropped_superseded = 0
        self.memo_kept = 0
        self.memo_dropped = 0
        self.corrupt_dropped = 0
        self.queues_removed = 0
        self.bytes_before = 0
        self.bytes_after = 0

    @property
    def keys_dropped(self) -> int:
        """Total lines dropped across every store (the ``gc_keys_dropped``
        statistics counter)."""
        return (
            self.result_dropped_orphan
            + self.result_dropped_stale
            + self.result_dropped_superseded
            + self.memo_dropped
            + self.corrupt_dropped
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "result_kept": self.result_kept,
            "result_dropped_orphan": self.result_dropped_orphan,
            "result_dropped_stale": self.result_dropped_stale,
            "result_dropped_superseded": self.result_dropped_superseded,
            "memo_kept": self.memo_kept,
            "memo_dropped": self.memo_dropped,
            "corrupt_dropped": self.corrupt_dropped,
            "queues_removed": self.queues_removed,
            "keys_dropped": self.keys_dropped,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
        }


def _compact_jsonl(path: str, keep, stats: GCStats, kind: str) -> None:
    """Rewrite one JSONL store in place, keeping the last entry per key
    for which ``keep(entry)`` is true.

    The rewrite happens under the same advisory flock the appenders
    take, *in place* (seek + truncate, not replace), so a concurrent
    well-behaved writer blocks on the lock instead of appending to a
    doomed inode.  Undecodable lines — torn tails and mid-file
    corruption alike — are dropped and counted: GC is an explicit
    "compact everything" request, unlike the read path, which preserves
    damaged bytes for ``repro doctor``.
    """
    with open(path, "r+", encoding="utf-8") as handle:
        locked, _ = flock_bounded(handle, salt=path, name="store")
        try:
            trace_event("write", store="compact")
            raw_lines = handle.read().splitlines()
            last: Dict[str, Any] = {}
            order: Dict[str, int] = {}
            for index, line in enumerate(raw_lines):
                line = line.strip()
                if not line:
                    continue
                entry, problem = decode_entry(line)
                if problem is not None:
                    stats.corrupt_dropped += 1
                    continue
                key = entry["key"]
                if key in last:
                    stats.result_dropped_superseded += (
                        1 if kind == "result" else 0
                    )
                    stats.memo_dropped += 1 if kind == "memo" else 0
                last[key] = entry
                order.setdefault(key, index)
            kept_lines = []
            for key in sorted(last, key=lambda k: order[k]):
                entry = last[key]
                verdict = keep(entry)
                if verdict == "keep":
                    kept_lines.append(encode_entry(entry))
                    if kind == "result":
                        stats.result_kept += 1
                    else:
                        stats.memo_kept += 1
                elif verdict == "stale":
                    if kind == "result":
                        stats.result_dropped_stale += 1
                    else:
                        stats.memo_dropped += 1
                else:  # orphan
                    if kind == "result":
                        stats.result_dropped_orphan += 1
                    else:
                        stats.memo_dropped += 1
            handle.seek(0)
            handle.truncate()
            if kept_lines:
                handle.write("\n".join(kept_lines) + "\n")
        finally:
            release_flock(handle, locked, name="store")


def collect_garbage(
    cache_dir: Optional[str] = None,
    salt: Optional[str] = None,
    force: bool = False,
) -> GCStats:
    """Compact the persistent stores under *cache_dir*.

    * **Result stores** (``<uarch>.jsonl``): drop lines written under
      another salt, superseded lines (append-only last-wins history),
      undecodable lines, and — when a :class:`SweepManifest` exists for
      the generation — *orphans*: keys no recorded sweep references
      (stale configs, forms renamed or removed from the catalog).
      Without a manifest every current-salt entry is kept: a key's
      liveness cannot be proven, and GC must never drop a live key.
    * **Measurement memos** (``<uarch>.measure.jsonl``): stale-salt,
      duplicate, and corrupt lines are dropped (memo keys are raw
      measurement content; no per-form root set exists for them).
    * **Work queues** (``<uarch>.queue.json``): fully drained queue
      files are removed.

    GC is **lease-aware**: it takes (and holds, for the whole run)
    every queue's transaction lock, so no drainer can lease, ack, or
    write through mid-compaction — and it *refuses to run at all*,
    raising :class:`LiveLeaseError`, when any queue holds an unexpired
    lease, i.e. drainers are live (*force* overrides, for queues whose
    machines are known dead).  Returns the per-store :class:`GCStats`.
    """
    from repro.core.workqueue import (
        WorkQueue,
        live_lease_count,
        outstanding_count,
        read_queue_state,
    )

    cache_dir = cache_dir or default_cache_dir()
    salt = salt if salt is not None else cache_salt()
    stats = GCStats()
    if not os.path.isdir(cache_dir):
        return stats
    manifest = SweepManifest(cache_dir, salt=salt)
    names = sorted(os.listdir(cache_dir))
    queue_paths = [
        os.path.join(cache_dir, name)
        for name in names if name.endswith(WorkQueue.SUFFIX)
    ]

    def tally(path: str, attr: str) -> None:
        try:
            setattr(stats, attr,
                    getattr(stats, attr) + os.path.getsize(path))
        except OSError:
            pass

    held = []
    removed_locks = []
    try:
        live = []
        for path in queue_paths:
            lock = open(path + ".lock", "a+", encoding="utf-8")
            locked, _ = flock_bounded(lock, salt=path, name="queue")
            held.append((lock, locked))
            count = live_lease_count(read_queue_state(path, salt))
            if count:
                live.append((path, count))
        if live and not force:
            raise LiveLeaseError(live)

        for name in names:
            path = os.path.join(cache_dir, name)
            if name.endswith(MeasurementMemo.SUFFIX):
                tally(path, "bytes_before")

                def keep_memo(entry):
                    return (
                        "keep" if entry.get("salt") == salt else "stale"
                    )

                _compact_jsonl(path, keep_memo, stats, "memo")
                tally(path, "bytes_after")
            elif name.endswith(WorkQueue.SUFFIX):
                # While the lock is held, queue state cannot move under
                # us: drained (or missing/torn/stale-salt, which a
                # drainer would reset to empty anyway) means removable.
                if outstanding_count(read_queue_state(path, salt)) == 0:
                    try:
                        os.remove(path)
                    except OSError:
                        pass
                    removed_locks.append(path + ".lock")
                    stats.queues_removed += 1
            elif name.endswith(".jsonl"):
                uarch_name = name[: -len(".jsonl")]
                tally(path, "bytes_before")
                live_keys = manifest.live_keys(uarch_name)

                def keep_result(entry):
                    if entry.get("salt") != salt:
                        return "stale"
                    if (
                        live_keys is not None
                        and entry["key"] not in live_keys
                    ):
                        return "orphan"
                    return "keep"

                _compact_jsonl(path, keep_result, stats, "result")
                tally(path, "bytes_after")
    finally:
        for lock, locked in held:
            release_flock(lock, locked, name="queue")
            lock.close()
        for lock_path in removed_locks:
            try:
                os.remove(lock_path)
            except OSError:
                pass
    return stats
