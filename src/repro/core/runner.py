"""Orchestration: characterize instruction forms on a backend.

This is the top of the tool described in Section 6: for every supported
instruction variant it measures the µop count, infers the port usage with
Algorithm 1, measures per-operand-pair latencies, measures throughput, and
computes the Intel-style throughput from the port usage.

The runner itself is a composition of *plans* (see
:mod:`repro.core.experiment`): the isolation run, the latency chains, and
the throughput sequences of one form are merged into a single dispatch
through an :class:`~repro.measure.executor.ExperimentExecutor`, followed by
the adaptive port-usage rounds.  One executor serves the runner's whole
lifetime, so identical experiments planned by different algorithms — or by
different forms of a sweep shard — are measured exactly once.

Contract (enforced by ``repro lint``): :class:`RunStatistics` and
:class:`FormFailure` cross the sweep worker queues, so their fields must
stay picklable (RPR120), and every counter added to ``RunStatistics``
must also be rendered by a ``cli._STATS_LINES`` template (RPR140) and
folded from the worker ``*Stats`` snapshots (RPR141) — silent counters
were the PR-3 bug.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.core.blocking import (
    BlockingInstructions,
    plan_blocking_instructions,
)
from repro.core.codegen import independent_sequence
from repro.core.experiment import ExperimentBatch, Plan, merge_plans
from repro.core.latency import LatencyMeasurer
from repro.core.port_usage import plan_port_usage
from repro.core.result import InstructionCharacterization
from repro.core.throughput import (
    compute_throughput_from_port_usage,
    plan_throughput,
)
from repro.isa.database import InstructionDatabase, load_default_database
from repro.isa.instruction import (
    ATTR_SERIALIZING,
    ATTR_SYSTEM,
    ATTR_UNSUPPORTED,
    InstructionForm,
)


@dataclass
class RunStatistics:
    """Bookkeeping for a characterization run (cf. Section 7.1).

    ``seconds`` is *measurement* time only: it accumulates solely while a
    form is actually being characterized on a backend.  Forms that are
    skipped (unmeasurable) or served from the sweep engine's persistent
    cache contribute nothing to it, so cached re-runs report near-zero
    measured time even when the wall clock is dominated by I/O.
    """

    characterized: int = 0
    skipped: int = 0
    seconds: float = 0.0
    #: Persistent-cache counters (filled by the sweep engine; a serial
    #: :class:`CharacterizationRunner` never touches the cache).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    #: Measurement-memo counters (persistent raw-measurement memo shared
    #: across sweep shards; see :class:`~repro.core.cache.MeasurementMemo`).
    memo_hits: int = 0
    memo_misses: int = 0
    #: Timing-kernel work split: cycles actually simulated vs. produced
    #: analytically by steady-state extrapolation, and the number of
    #: unrolled runs served without a simulation of their own.
    cycles_simulated: int = 0
    cycles_extrapolated: int = 0
    runs_extrapolated: int = 0
    #: Closed-form analytic fast path (the third simulation tier): runs
    #: answered with no kernel run at all, and the cycles they cover.
    runs_analytic: int = 0
    cycles_analytic: int = 0
    #: Entries evicted from the backend's bounded in-process caches (see
    #: ``MeasurementConfig.max_cached_measurements``).
    cache_evictions: int = 0
    #: Experiment-executor counters: how many experiments the plans
    #: emitted, how many were deduplicated away before reaching the
    #: backend, how many were actually dispatched, and the time split
    #: between the planning/interpreting and executing phases.
    experiments_planned: int = 0
    experiments_deduped: int = 0
    experiments_measured: int = 0
    batches_dispatched: int = 0
    plan_seconds: float = 0.0
    execute_seconds: float = 0.0
    #: Fault-tolerance counters: transient-failure re-dispatches, the
    #: experiments that exhausted the retry budget, forms quarantined
    #: instead of characterized, sweep worker shards respawned after a
    #: crash or watchdog timeout, and cache hygiene (malformed JSONL
    #: lines skipped, bounded flock waits that timed out).
    retries: int = 0
    experiments_gave_up: int = 0
    forms_failed: int = 0
    shards_respawned: int = 0
    corrupt_lines: int = 0
    lock_timeouts: int = 0
    #: Store-integrity counters (see :mod:`repro.core.journal`): torn
    #: tails truncated-and-recovered on load (a writer died mid-append),
    #: and bounded-flock attempts that had to back off and retry before
    #: acquiring the lock (``lock_timeouts`` counts the waits that gave
    #: up entirely).
    torn_tails: int = 0
    lock_retries: int = 0
    #: Distributed-sweep queue health (see
    #: :mod:`repro.core.workqueue`): work units this sweep leased,
    #: leases reclaimed from dead/stalled drainers (and the expirations
    #: that enabled the steals), units acknowledged as done, lease
    #: renewals by drainer heartbeats, fenced-off writes by zombie
    #: workers whose lease was stolen, forms served from cache because
    #: their input fingerprints were unchanged (``--incremental``), and
    #: cache lines dropped by ``repro cache gc``.
    units_leased: int = 0
    units_stolen: int = 0
    units_acked: int = 0
    lease_expirations: int = 0
    leases_renewed: int = 0
    zombie_writes: int = 0
    incremental_skips: int = 0
    gc_keys_dropped: int = 0

    def merge(self, other: "RunStatistics") -> None:
        """Fold in the statistics of another run (e.g. a sweep worker)."""
        for spec in fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )

    def fold_snapshot(self, before, after) -> None:
        """Add the delta of two stats snapshots taken around a stretch of
        measurement work.

        *before* and *after* are matching NamedTuples
        (:class:`~repro.measure.backend.BackendStats` or
        :class:`~repro.measure.executor.ExecutorStats`); fields are
        matched to this dataclass *by name*, so reordering or extending a
        snapshot type cannot silently misattribute a counter.
        """
        names = after._fields
        if len(before) != len(names):
            raise ValueError(
                f"snapshot length mismatch: {len(before)} != {len(names)}"
            )
        for name, a, b in zip(names, before, after):
            setattr(self, name, getattr(self, name) + (b - a))

    #: Backwards-compatible alias (the zip-by-position version this
    #: replaces was specific to the backend snapshot).
    fold_backend = fold_snapshot

    def as_dict(self) -> Dict[str, float]:
        """All counters, JSON-serializable (for ``--stats-json``)."""
        return {
            spec.name: getattr(self, spec.name) for spec in fields(self)
        }


@dataclass(frozen=True)
class FormFailure:
    """The structured record of one quarantined instruction form.

    Produced instead of a characterization when a form's plan ultimately
    fails (after the executor's retry budget); a sweep collects these,
    reports them in the statistics table and ``--stats-json``, and emits
    them as annotated XML/HTML entries instead of silently dropping the
    form.  All fields are primitives so the record crosses the sweep
    engine's process boundary unchanged.
    """

    uid: str
    #: The characterization stage that died: an experiment-tag prefix
    #: (``iso``, ``lat``, ``ports``, ``tp``, ``blocking``), ``shard`` for
    #: a lost worker, or ``characterize`` when unattributable.
    phase: str
    error_type: str
    message: str
    attempts: int = 1
    #: Shard index for worker-loss failures, ``None`` otherwise.
    shard: Optional[int] = None

    @classmethod
    def from_error(cls, uid: str, error: BaseException) -> "FormFailure":
        tag = getattr(error, "experiment_tag", "")
        phase = tag.split(":", 1)[0] if tag else "characterize"
        return cls(
            uid=uid,
            phase=phase,
            error_type=type(error).__name__,
            message=str(error),
            attempts=getattr(error, "attempts", 1),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "uid": self.uid,
            "phase": self.phase,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "shard": self.shard,
        }

    def summary(self) -> str:
        where = (
            f"shard {self.shard}" if self.shard is not None else self.phase
        )
        return (
            f"{self.uid}: quarantined in {where} after "
            f"{self.attempts} attempt(s): {self.error_type}: {self.message}"
        )


class CharacterizationRunner:
    """Characterizes instruction forms against one measurement backend."""

    def __init__(
        self,
        backend,
        database: Optional[InstructionDatabase] = None,
        executor=None,
    ):
        self.backend = backend
        self.database = database or load_default_database()
        self._blocking: Optional[BlockingInstructions] = None
        self._latency = LatencyMeasurer(self.database, backend)
        if executor is None:
            from repro.measure.executor import ExperimentExecutor

            executor = ExperimentExecutor(backend)
        #: The executor all of this runner's plans flow through; shared
        #: across forms so cross-form duplicates are measured once.
        self.executor = executor
        self.statistics = RunStatistics()

    @property
    def blocking(self) -> BlockingInstructions:
        """Blocking instructions, discovered once per backend (5.1.1)."""
        if self._blocking is None:
            self._blocking = self.executor.drive(
                plan_blocking_instructions(self.database, self.backend)
            )
        return self._blocking

    # ------------------------------------------------------------------

    def can_measure(self, form: InstructionForm) -> bool:
        if form.has_attribute(ATTR_UNSUPPORTED):
            return False
        if form.category in ("jmp", "jmp_indirect", "call", "ret"):
            return False  # would leave the straight-line benchmark
        return self.backend.supports(form)

    def characterize(
        self, form: InstructionForm
    ) -> Optional[InstructionCharacterization]:
        """Full characterization of one instruction variant."""
        if not self.can_measure(form):
            self.statistics.skipped += 1
            return None
        measurable_ports = not (
            form.has_attribute(ATTR_SERIALIZING)
            or form.has_attribute(ATTR_SYSTEM)
        )
        # The blocking-instruction discovery is a one-time backend-wide
        # cost, not part of this form's measurement time.
        blocking = self.blocking if measurable_ports else None
        started = time.perf_counter()
        outcome = self.executor.drive(
            self._plan_characterization(form, blocking, measurable_ports)
        )
        self.statistics.characterized += 1
        self.statistics.seconds += time.perf_counter() - started
        return outcome

    def characterize_resilient(
        self, form: InstructionForm
    ) -> Union[InstructionCharacterization, FormFailure, None]:
        """Like :meth:`characterize`, but degrade instead of raising.

        A form whose plan ultimately fails — after the executor's
        transient-retry budget — becomes a :class:`FormFailure` record
        rather than aborting the caller's whole sweep.  The sweep paths
        (serial and sharded) run through this entry point; direct API
        users keep :meth:`characterize`'s raising behaviour.
        """
        try:
            return self.characterize(form)
        except Exception as error:
            self.statistics.forms_failed += 1
            return FormFailure.from_error(form.uid, error)

    def _plan_isolation(self, form: InstructionForm) -> Plan:
        batch = ExperimentBatch()
        code = independent_sequence(form, 4)
        handle = batch.add(code, tag=f"iso:{form.uid}")
        results = yield batch
        return results[handle].scaled(len(code))

    def _plan_characterization(
        self,
        form: InstructionForm,
        blocking: Optional[BlockingInstructions],
        measurable_ports: bool,
    ) -> Plan:
        """One form's characterization as a composed plan.

        Round 1 merges the isolation run, every latency chain, and the
        throughput sequences into a single dispatch; the adaptive
        port-usage rounds (which need the measured maximum latency)
        follow.
        """
        notes: List[str] = []
        plans = [self._plan_isolation(form), self._latency.plan(form)]
        if measurable_ports:
            plans.append(plan_throughput(form, self.database))
        merged = yield from merge_plans(plans)
        if measurable_ports:
            isolation, latency, throughput = merged
        else:
            isolation, latency = merged
            throughput = None
        uop_count = isolation.uops

        port_usage = None
        if measurable_ports:
            max_latency = (
                latency.max_latency() if latency and latency.pairs else 1.0
            )
            port_usage = yield from plan_port_usage(
                form, blocking, max_latency
            )
            if form.category not in ("div", "vec_fp_div", "vec_fp_sqrt"):
                computed = compute_throughput_from_port_usage(
                    port_usage, self.backend.uarch.ports
                )
                throughput.computed_from_ports = computed
            else:
                notes.append("divider: Intel-style throughput undefined")

        return InstructionCharacterization(
            form_uid=form.uid,
            uarch_name=self.backend.uarch.name,
            uop_count=uop_count,
            port_usage=port_usage,
            latency=latency,
            throughput=throughput,
            notes=tuple(notes),
        )

    def characterize_all(
        self,
        forms: Optional[Iterable[InstructionForm]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> Dict[str, InstructionCharacterization]:
        """Characterize many forms; returns results keyed by form uid."""
        results: Dict[str, InstructionCharacterization] = {}
        for form in forms if forms is not None else self.database:
            outcome = self.characterize(form)
            if outcome is not None:
                results[form.uid] = outcome
                if progress is not None:
                    progress(outcome.summary())
        return results

    def supported_forms(self) -> List[InstructionForm]:
        """All forms this backend can measure (Table 1's variant count)."""
        return [f for f in self.database if self.can_measure(f)]
