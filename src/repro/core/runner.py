"""Orchestration: characterize instruction forms on a backend.

This is the top of the tool described in Section 6: for every supported
instruction variant it measures the µop count, infers the port usage with
Algorithm 1, measures per-operand-pair latencies, measures throughput, and
computes the Intel-style throughput from the port usage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.blocking import (
    BlockingInstructions,
    find_blocking_instructions,
)
from repro.core.codegen import measure_isolated
from repro.core.latency import LatencyMeasurer
from repro.core.port_usage import infer_port_usage
from repro.core.result import InstructionCharacterization
from repro.core.throughput import (
    compute_throughput_from_port_usage,
    measure_throughput,
)
from repro.isa.database import InstructionDatabase, load_default_database
from repro.isa.instruction import (
    ATTR_CONTROL_FLOW,
    ATTR_SERIALIZING,
    ATTR_SYSTEM,
    ATTR_UNSUPPORTED,
    InstructionForm,
)


@dataclass
class RunStatistics:
    """Bookkeeping for a characterization run (cf. Section 7.1).

    ``seconds`` is *measurement* time only: it accumulates solely while a
    form is actually being characterized on a backend.  Forms that are
    skipped (unmeasurable) or served from the sweep engine's persistent
    cache contribute nothing to it, so cached re-runs report near-zero
    measured time even when the wall clock is dominated by I/O.
    """

    characterized: int = 0
    skipped: int = 0
    seconds: float = 0.0
    #: Persistent-cache counters (filled by the sweep engine; a serial
    #: :class:`CharacterizationRunner` never touches the cache).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    #: Measurement-memo counters (persistent raw-measurement memo shared
    #: across sweep shards; see :class:`~repro.core.cache.MeasurementMemo`).
    memo_hits: int = 0
    memo_misses: int = 0
    #: Timing-kernel work split: cycles actually simulated vs. produced
    #: analytically by steady-state extrapolation, and the number of
    #: unrolled runs served without a simulation of their own.
    cycles_simulated: int = 0
    cycles_extrapolated: int = 0
    runs_extrapolated: int = 0

    def merge(self, other: "RunStatistics") -> None:
        """Fold in the statistics of another run (e.g. a sweep worker)."""
        self.characterized += other.characterized
        self.skipped += other.skipped
        self.seconds += other.seconds
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_invalidations += other.cache_invalidations
        self.memo_hits += other.memo_hits
        self.memo_misses += other.memo_misses
        self.cycles_simulated += other.cycles_simulated
        self.cycles_extrapolated += other.cycles_extrapolated
        self.runs_extrapolated += other.runs_extrapolated

    def fold_backend(self, before, after) -> None:
        """Add the delta of two :meth:`HardwareBackend.stats_tuple`
        snapshots taken around a stretch of measurement work."""
        (
            self.memo_hits,
            self.memo_misses,
            self.cycles_simulated,
            self.cycles_extrapolated,
            self.runs_extrapolated,
        ) = (
            current + (b - a)
            for current, a, b in zip(
                (
                    self.memo_hits,
                    self.memo_misses,
                    self.cycles_simulated,
                    self.cycles_extrapolated,
                    self.runs_extrapolated,
                ),
                before,
                after,
            )
        )


class CharacterizationRunner:
    """Characterizes instruction forms against one measurement backend."""

    def __init__(
        self,
        backend,
        database: Optional[InstructionDatabase] = None,
    ):
        self.backend = backend
        self.database = database or load_default_database()
        self._blocking: Optional[BlockingInstructions] = None
        self._latency = LatencyMeasurer(self.database, backend)
        self.statistics = RunStatistics()

    @property
    def blocking(self) -> BlockingInstructions:
        """Blocking instructions, discovered once per backend (5.1.1)."""
        if self._blocking is None:
            self._blocking = find_blocking_instructions(
                self.database, self.backend
            )
        return self._blocking

    # ------------------------------------------------------------------

    def can_measure(self, form: InstructionForm) -> bool:
        if form.has_attribute(ATTR_UNSUPPORTED):
            return False
        if form.category in ("jmp", "jmp_indirect", "call", "ret"):
            return False  # would leave the straight-line benchmark
        return self.backend.supports(form)

    def characterize(
        self, form: InstructionForm
    ) -> Optional[InstructionCharacterization]:
        """Full characterization of one instruction variant."""
        if not self.can_measure(form):
            self.statistics.skipped += 1
            return None
        started = time.perf_counter()
        notes: List[str] = []

        isolation = measure_isolated(form, self.backend)
        uop_count = isolation.uops

        # infer() itself returns an empty result for forms whose latency
        # cannot be measured (control flow, REP, system, serializing).
        latency = self._latency.infer(form)

        port_usage = None
        throughput = None
        measurable_ports = not (
            form.has_attribute(ATTR_SERIALIZING)
            or form.has_attribute(ATTR_SYSTEM)
        )
        if measurable_ports:
            max_latency = (
                latency.max_latency() if latency and latency.pairs else 1.0
            )
            port_usage = infer_port_usage(
                form, self.backend, self.blocking, max_latency
            )
            throughput = measure_throughput(
                form, self.backend, self.database
            )
            if form.category not in ("div", "vec_fp_div", "vec_fp_sqrt"):
                computed = compute_throughput_from_port_usage(
                    port_usage, self.backend.uarch.ports
                )
                throughput.computed_from_ports = computed
            else:
                notes.append("divider: Intel-style throughput undefined")

        self.statistics.characterized += 1
        self.statistics.seconds += time.perf_counter() - started
        return InstructionCharacterization(
            form_uid=form.uid,
            uarch_name=self.backend.uarch.name,
            uop_count=uop_count,
            port_usage=port_usage,
            latency=latency,
            throughput=throughput,
            notes=tuple(notes),
        )

    def characterize_all(
        self,
        forms: Optional[Iterable[InstructionForm]] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> Dict[str, InstructionCharacterization]:
        """Characterize many forms; returns results keyed by form uid."""
        results: Dict[str, InstructionCharacterization] = {}
        for form in forms if forms is not None else self.database:
            outcome = self.characterize(form)
            if outcome is not None:
                results[form.uid] = outcome
                if progress is not None:
                    progress(outcome.summary())
        return results

    def supported_forms(self) -> List[InstructionForm]:
        """All forms this backend can measure (Table 1's variant count)."""
        return [f for f in self.database if self.can_measure(f)]
