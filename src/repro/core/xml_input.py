"""Read a previously written results XML back into characterizations.

The machine-readable output (Section 6.4) exists so that downstream tools
can consume the measurements without re-running them; this module is that
consumer path: :func:`load_results` parses a results file produced by
:mod:`repro.core.xml_output` into
:class:`~repro.core.result.InstructionCharacterization` objects, which is
enough to drive the performance predictor (``python -m repro analyze
--model results.xml``).
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import Dict

from repro.core.result import (
    InstructionCharacterization,
    LatencyResult,
    LatencyValue,
    PortUsage,
    ThroughputResult,
)

_PORTS_RE = re.compile(r"(\d+)\*p(\d+)")


def parse_port_notation(text: str) -> PortUsage:
    """Parse the paper's ``2*p05 + 1*p23`` notation."""
    counts = {}
    for count, ports in _PORTS_RE.findall(text or ""):
        combination = frozenset(int(p) for p in ports)
        counts[combination] = counts.get(combination, 0) + int(count)
    return PortUsage(counts)


def _parse_measurement(element: ET.Element, uid: str,
                       uarch_name: str) -> InstructionCharacterization:
    uops = float(element.get("uops", "0"))
    ports_text = element.get("ports")
    port_usage = (
        parse_port_notation(ports_text) if ports_text is not None else None
    )
    throughput = None
    if element.get("TP") is not None:
        throughput = ThroughputResult(
            measured=float(element.get("TP")),
            measured_same_kind=float(element.get("TP")),
            computed_from_ports=(
                float(element.get("TP_ports"))
                if element.get("TP_ports") is not None
                else None
            ),
        )
    latency = LatencyResult()
    for entry in element.findall("latency"):
        pair = (entry.get("start_op"), entry.get("target_op"))
        value = LatencyValue(
            cycles=float(entry.get("cycles")),
            kind=entry.get("kind", "exact"),
            chain=entry.get("chain"),
            value_class=entry.get("value_class"),
        )
        if entry.get("same_reg") == "1":
            latency.same_register[pair] = value
        elif entry.get("value_class") == "fast":
            latency.fast_values[pair] = value
        else:
            latency.pairs[pair] = value
    return InstructionCharacterization(
        form_uid=uid,
        uarch_name=uarch_name,
        uop_count=uops,
        port_usage=port_usage,
        latency=latency,
        throughput=throughput,
    )


def load_results(
    path_or_root,
) -> Dict[str, Dict[str, InstructionCharacterization]]:
    """Load a results XML file (or parsed root element).

    Returns ``{uarch name: {form uid: characterization}}`` — the same
    structure :func:`repro.core.xml_output.results_to_xml` consumes.
    """
    if isinstance(path_or_root, str):
        root = ET.parse(path_or_root).getroot()
    else:
        root = path_or_root
    results: Dict[str, Dict[str, InstructionCharacterization]] = {}
    for instruction in root.findall("instruction"):
        uid = instruction.get("string")
        for architecture in instruction.findall("architecture"):
            name = architecture.get("name")
            measurement = architecture.find("measurement")
            if measurement is None:
                continue
            results.setdefault(name, {})[uid] = _parse_measurement(
                measurement, uid, name
            )
    return results
