"""Command-line interface: ``python -m repro <command> ...``.

Commands mirror the workflows of the paper:

* ``characterize FORM [UARCH]``    — one variant, full report,
* ``sweep [UARCH] [--sample N] [--jobs N] [--cache-dir D | --no-cache]``
  — many variants → XML (Section 6.4), parallelized through a shared
  work queue of content-keyed units next to the persistent result
  cache; ``--enqueue-only`` / ``--drain`` split the coordinator and
  worker roles across processes (or machines sharing the cache
  directory), and ``--incremental`` re-measures only forms whose input
  fingerprints changed since the last recorded sweep,
* ``table1 [--sample N]``          — regenerate Table 1 (same flags),
* ``cache gc``                     — compact the cache stores: drop
  orphaned/stale/superseded entries and drained work queues (refuses
  under live drainer leases; ``--force`` overrides),
* ``doctor [--repair]``            — scan every persistent store for
  crash damage (torn tails, CRC failures, orphaned leases, stale
  locks, manifest/cache disagreement) and optionally repair it,
* ``case-studies``                 — all Section 7.3 case studies,
* ``list [MNEMONIC]``              — catalog queries,
* ``analyze FILE [UARCH]``         — predict a loop kernel's performance,
* ``lint [PATHS]``                 — the repo's own invariant checker
  (:mod:`repro.lint`): AST code-contract rules plus the uarch model
  consistency pass.

Exit codes are uniform: 0 on success, 1 on findings or user errors
(including a consumer closing our stdout mid-print), 2 on internal
errors.  ``sweep --strict`` adds exit 3: the sweep itself succeeded
but some forms were quarantined — distinct from both "clean" and
"broken invocation" so CI cannot silently pass on a partial sweep.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional


def _cmd_characterize(args) -> int:
    from repro import characterize

    result = characterize(args.form, args.uarch)
    print(result.summary())
    if result.latency is not None:
        for (src, dst), value in sorted(result.latency.pairs.items()):
            chain = f" (chain: {value.chain})" if value.chain else ""
            print(f"  lat({src} -> {dst}) = {value}{chain}")
        for (src, dst), value in sorted(
            result.latency.same_register.items()
        ):
            print(f"  lat({src} -> {dst}) [same register] = {value}")
        for (src, dst), value in sorted(
            result.latency.fast_values.items()
        ):
            print(f"  lat({src} -> {dst}) [fast values] = {value}")
    if result.throughput is not None:
        throughput = result.throughput
        print(f"  throughput (measured) = {throughput.measured:.2f}")
        if throughput.computed_from_ports is not None:
            print(
                "  throughput (from port usage) = "
                f"{throughput.computed_from_ports:.2f}"
            )
    return 0


def _make_cache(args):
    """A ResultCache from --cache-dir/--no-cache flags, or None."""
    if getattr(args, "no_cache", False):
        return None
    from repro.core.cache import ResultCache

    try:
        return ResultCache(args.cache_dir)
    except NotADirectoryError as exc:
        raise SystemExit(f"error: {exc}")


#: The stderr statistics report: one ``(label, format string)`` row per
#: caching layer, rendered from :meth:`RunStatistics.as_dict` — a new
#: counter needs a row here, not another hand-assembled print call.
_STATS_LINES = (
    ("cache",
     "{cache_hits} hits, {cache_misses} misses, "
     "{cache_invalidations} invalidated; "
     "measured {seconds:.1f}s over {characterized} variants "
     "({skipped} skipped)"),
    ("memo",
     "{memo_hits} hits, {memo_misses} misses; "
     "kernel: {cycles_simulated} cycles simulated, "
     "{cycles_extrapolated} extrapolated ({runs_extrapolated} runs), "
     "{cycles_analytic} analytic ({runs_analytic} runs)"),
    ("executor",
     "{experiments_planned} planned, {experiments_deduped} deduped, "
     "{experiments_measured} measured in {batches_dispatched} batches; "
     "plan {plan_seconds:.1f}s, execute {execute_seconds:.1f}s; "
     "{cache_evictions} evictions"),
    ("faults",
     "{forms_failed} quarantined, {retries} retries, "
     "{experiments_gave_up} gave up, {shards_respawned} shards "
     "respawned; {corrupt_lines} corrupt lines, "
     "{torn_tails} torn tails, "
     "{lock_timeouts} lock timeouts ({lock_retries} retries)"),
    ("queue",
     "{units_leased} leased, {units_stolen} stolen, "
     "{units_acked} acked, {lease_expirations} lease expirations, "
     "{leases_renewed} renewed, {zombie_writes} zombie writes; "
     "{incremental_skips} incremental skips, "
     "{gc_keys_dropped} keys GC'd"),
)


def _print_cache_stats(statistics) -> None:
    values = statistics.as_dict()
    for label, template in _STATS_LINES:
        print(f"{label}: {template.format(**values)}", file=sys.stderr)


def _write_stats_json(statistics, path: Optional[str],
                      failures=None) -> None:
    """Dump one or many :class:`RunStatistics` to *path* as JSON.

    *statistics* is either a single statistics object (``sweep``) or a
    dict of them keyed by microarchitecture name (``table1``).
    *failures* is an optional ``{uid: FormFailure}`` of quarantined
    forms, serialized under a ``"failures"`` key (``sweep`` only).
    """
    if not path:
        return
    import json

    if isinstance(statistics, dict):
        payload = {
            name: stats.as_dict() for name, stats in statistics.items()
        }
    else:
        payload = statistics.as_dict()
        if failures:
            payload["failures"] = [
                failures[uid].as_dict() for uid in sorted(failures)
            ]
    try:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as exc:
        raise SystemExit(f"error: cannot write --stats-json: {exc}")


def _report_quarantine(failures) -> None:
    """One stderr line per quarantined form (``{uid: FormFailure}``)."""
    for uid in sorted(failures):
        print(f"quarantined: {failures[uid].summary()}", file=sys.stderr)


def _cmd_sweep(args) -> int:
    from repro import get_uarch
    from repro.analysis.sampling import stratified_sample
    from repro.core.sweep import SweepEngine
    from repro.core.xml_output import results_to_xml, write_xml
    from repro.isa.database import load_default_database

    for flag in ("resume", "drain", "enqueue_only", "incremental"):
        if getattr(args, flag) and args.no_cache:
            raise SystemExit(
                f"error: --{flag.replace('_', '-')} needs the "
                "persistent cache (incompatible with --no-cache)"
            )
    if args.drain and args.enqueue_only:
        raise SystemExit(
            "error: --drain and --enqueue-only are mutually exclusive"
        )
    database = load_default_database()
    engine = SweepEngine(
        get_uarch(args.uarch),
        database,
        jobs=args.jobs,
        cache=_make_cache(args),
        fault_spec=args.fault_spec,
        shard_timeout=args.shard_timeout,
        mode=args.sweep_mode,
        lease_timeout=args.lease_timeout,
        incremental=args.incremental,
    )
    if args.drain:
        # Worker role: execute queued units until the shared queue is
        # drained.  No XML — the coordinating (or a final, warm) sweep
        # collects the full result set from the cache.
        results = engine.drain(
            progress=(lambda line: print(line, file=sys.stderr))
            if args.verbose else None,
        )
        _report_quarantine(engine.failures)
        _print_cache_stats(engine.statistics)
        _write_stats_json(
            engine.statistics, args.stats_json, engine.failures
        )
        print(
            f"drained {len(results)} characterization(s) into "
            f"{engine.cache.cache_dir}"
        )
        if args.strict and engine.failures:
            print(
                f"strict: {len(engine.failures)} form(s) quarantined",
                file=sys.stderr,
            )
            return 3
        return 0
    supported = engine.supported_forms()
    forms = (
        supported if args.sample == 0
        else stratified_sample(supported, args.sample)
    )
    if args.enqueue_only:
        counts = engine.enqueue_pending(forms)
        print(
            f"enqueued {counts['enqueued']} unit(s) for "
            f"{engine.uarch.name}: {counts['pending']} pending of "
            f"{counts['requested']} requested "
            f"({counts['cached']} already cached)"
        )
        return 0
    print(f"characterizing {len(forms)} of {len(supported)} variants on "
          f"{engine.uarch.full_name} ({args.jobs} jobs)", file=sys.stderr)
    results = engine.sweep(
        forms,
        progress=(lambda line: print(line, file=sys.stderr))
        if args.verbose else None,
    )
    if args.resume:
        print(
            f"resume: {engine.statistics.cache_hits} form(s) from "
            f"cache, {engine.statistics.characterized} re-measured",
            file=sys.stderr,
        )
    _report_quarantine(engine.failures)
    _print_cache_stats(engine.statistics)
    _write_stats_json(engine.statistics, args.stats_json, engine.failures)
    failures_by_uarch = (
        {engine.uarch.name: engine.failures} if engine.failures else None
    )
    root = results_to_xml(
        {engine.uarch.name: results}, database,
        failures=failures_by_uarch,
    )
    write_xml(root, args.output)
    print(f"wrote {len(results)} characterizations to {args.output}")
    if args.html:
        from repro.core.html_output import write_html

        write_html(
            {engine.uarch.name: results}, args.html, database,
            failures=failures_by_uarch,
        )
        print(f"wrote HTML report to {args.html}")
    if args.llvm:
        from repro.core.llvm_export import write_tablegen

        write_tablegen(results, engine.uarch, args.llvm)
        print(f"wrote LLVM-style scheduling model to {args.llvm}")
    if args.strict and engine.failures:
        print(
            f"strict: {len(engine.failures)} form(s) quarantined",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_table1(args) -> int:
    from repro.analysis.compare import compute_agreement
    from repro.analysis.sampling import stratified_sample
    from repro.core.sweep import SweepEngine
    from repro.uarch.configs import ALL_UARCHES

    cache = _make_cache(args)
    stats_by_uarch = {}
    print(f"{'Arch':4s} {'Processor':18s} {'#Instr':>6s}  "
          f"{'IACA':8s} {'µops':>8s} {'Ports':>8s}")
    for uarch in ALL_UARCHES:
        engine = SweepEngine(
            uarch, jobs=args.jobs, cache=cache,
            fault_spec=args.fault_spec,
            shard_timeout=args.shard_timeout,
            mode=args.sweep_mode,
            lease_timeout=args.lease_timeout,
        )
        supported = engine.supported_forms()
        sample = (
            supported if args.sample == 0
            else stratified_sample(supported, args.sample)
        )
        # The engine characterizes (or cache-loads) the hardware side
        # once; compute_agreement then only measures the IACA side.
        hw_results = engine.sweep(sample) if uarch.iaca_versions else {}
        row = compute_agreement(
            uarch, engine.database, sample, engine.backend,
            n_variants=len(supported),
            hw_results=hw_results,
        )
        print(row.format())
        stats_by_uarch[uarch.name] = engine.statistics
        if cache is not None and uarch.iaca_versions:
            _print_cache_stats(engine.statistics)
    _write_stats_json(stats_by_uarch, args.stats_json)
    return 0


def _cmd_case_studies(args) -> int:
    from repro.analysis.casestudies import (
        aes_latency_study,
        movq2dq_port_study,
        multi_latency_study,
        shld_latency_study,
        zero_idiom_study,
    )

    failed = 0
    for study in (aes_latency_study, shld_latency_study,
                  movq2dq_port_study, multi_latency_study,
                  zero_idiom_study):
        result = study()
        print(result.render())
        print()
        failed += 0 if result.passed else 1
    return 1 if failed else 0


def _cmd_list(args) -> int:
    from repro.isa.database import load_default_database

    database = load_default_database()
    if args.mnemonic:
        forms = database.forms_for_mnemonic(args.mnemonic)
        if not forms:
            print(f"no forms for mnemonic {args.mnemonic!r}",
                  file=sys.stderr)
            return 1
        for form in forms:
            print(f"{form.uid:40s} {form.extension:10s} {form.category}")
    else:
        print(f"{len(database)} instruction variants, "
              f"{len(database.mnemonics())} mnemonics, extensions: "
              f"{', '.join(database.extensions())}")
    return 0


def _cmd_analyze(args) -> int:
    from repro import CharacterizationRunner, HardwareBackend, get_uarch
    from repro.isa.assembler import parse_sequence
    from repro.isa.database import load_default_database
    from repro.predictor import LoopAnalyzer

    database = load_default_database()
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file) as handle:
            text = handle.read()
    code = parse_sequence(text, database)
    uarch = get_uarch(args.uarch)
    if args.model:
        from repro.core.xml_input import load_results

        results = load_results(args.model).get(uarch.name, {})
        missing = [
            instr.form.uid for instr in code
            if instr.form.uid not in results
        ]
        if missing:
            print(
                f"model file lacks characterizations for: "
                f"{', '.join(sorted(set(missing)))}",
                file=sys.stderr,
            )
            return 1
    else:
        backend = HardwareBackend(uarch)
        runner = CharacterizationRunner(backend, database)
        results = runner.characterize_all(
            dict.fromkeys(instr.form for instr in code)
        )
    analyzer = LoopAnalyzer(results, uarch)
    analysis = analyzer.analyze(code)
    print(f"loop body: {len(code)} instructions on {uarch.full_name}")
    print(analysis.render())
    return 0


def _cmd_cache_gc(args) -> int:
    """Compact the persistent cache stores (``repro cache gc``)."""
    from repro.core.cache import LiveLeaseError, collect_garbage
    from repro.core.runner import RunStatistics

    try:
        stats = collect_garbage(args.cache_dir, force=args.force)
    except LiveLeaseError as exc:
        print(f"gc: refusing to compact: {exc}", file=sys.stderr)
        print(
            "gc: drainers appear to be live; wait for them to finish "
            "(or pass --force if they are known dead)",
            file=sys.stderr,
        )
        return 1
    summary = stats.as_dict()
    print(
        f"gc: kept {summary['result_kept']} result(s) and "
        f"{summary['memo_kept']} memo line(s); dropped "
        f"{summary['result_dropped_orphan']} orphaned, "
        f"{summary['result_dropped_stale']} stale, "
        f"{summary['result_dropped_superseded']} superseded, "
        f"{summary['memo_dropped']} memo, "
        f"{summary['corrupt_dropped']} corrupt line(s); "
        f"removed {summary['queues_removed']} drained queue(s); "
        f"{summary['bytes_before']} -> {summary['bytes_after']} bytes"
    )
    if args.stats_json:
        _write_stats_json(
            RunStatistics(gc_keys_dropped=stats.keys_dropped),
            args.stats_json,
        )
    return 0


def _emit_json(payload) -> None:
    """The one JSON emitter of the CLI: every ``--json`` mode (doctor,
    lint) prints through here, so the rendering (two-space indent,
    sorted keys, trailing newline from ``print``) cannot drift apart
    between subcommands."""
    import json

    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_doctor(args) -> int:
    """Scan (and optionally repair) the persistent stores.

    Exit 0 when every store is healthy (after repair, if requested),
    1 when findings remain, 2 on an internal error.
    """
    from repro.core.cache import LiveLeaseError
    from repro.core.doctor import diagnose, repair

    try:
        if args.repair:
            report = repair(args.cache_dir, force=args.force)
        else:
            report = diagnose(args.cache_dir)
    except LiveLeaseError as exc:
        print(f"doctor: refusing to repair: {exc}", file=sys.stderr)
        print(
            "doctor: drainers appear to be live; wait for them to "
            "finish (or pass --force if they are known dead)",
            file=sys.stderr,
        )
        return 1
    except (BrokenPipeError, SystemExit, KeyboardInterrupt):
        raise
    except Exception as exc:
        print(f"repro doctor: internal error: {exc!r}", file=sys.stderr)
        return 2
    if args.json:
        _emit_json(report.to_json())
    else:
        print(report.render_text())
    return 0 if report.healthy else 1


def _cmd_lint(args) -> int:
    """Run :mod:`repro.lint`.  0 = clean, 1 = findings, 2 = lint crash
    or usage error (a broken gate, distinct from a failing one)."""
    from repro.lint import LintUsageError, all_rules, run_lint

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name} [{rule.severity}] — "
                  f"{rule.summary}")
        return 0
    def split(spec):
        return [c for c in spec.split(",") if c] if spec else None

    paths = args.paths or None
    if args.changed is not None:
        from repro.lint import changed_paths

        if args.paths:
            print(
                "repro lint: --changed and explicit paths are "
                "mutually exclusive",
                file=sys.stderr,
            )
            return 2
        try:
            paths = changed_paths(args.changed)
        except LintUsageError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        if not paths:
            print(
                "0 violation(s) in 0 file(s), 0 suppressed "
                f"(no .py files changed vs {args.changed})"
            )
            return 0
    model = False if args.no_model else None
    try:
        report = run_lint(
            paths=paths,
            select=split(args.select),
            ignore=split(args.ignore),
            baseline_path=args.baseline,
            cache_path=args.cache,
            model=model,
            jobs=args.jobs,
        )
    except (BrokenPipeError, SystemExit, KeyboardInterrupt):
        raise
    except LintUsageError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        # A crash of the linter itself must be distinguishable from
        # "the tree has findings" (exit 1), so CI can tell a broken
        # gate from a failing one.
        print(f"repro lint: internal error: {exc!r}", file=sys.stderr)
        return 2
    if args.json:
        _emit_json(report.to_payload())
    else:
        print(report.render_text())
    return 1 if report.violations else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="uops.info reproduction: characterize x86 "
        "instructions on simulated Intel Core generations.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="characterize one variant")
    p.add_argument("form", help="form uid, e.g. ADD_R64_R64")
    p.add_argument("uarch", nargs="?", default="SKL")
    p.set_defaults(func=_cmd_characterize)

    def add_sweep_options(p) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the sharded sweep")
        p.add_argument("--cache-dir", default=None,
                       help="persistent result cache directory "
                            "(default: ~/.cache/repro)")
        p.add_argument("--no-cache", action="store_true",
                       help="measure everything, ignore the cache")
        p.add_argument("--stats-json", default=None, metavar="PATH",
                       help="write the full run statistics as JSON "
                            "(table1: one object per generation)")
        p.add_argument("--fault-spec", default=None, metavar="SPEC",
                       help="inject deterministic faults for chaos "
                            "testing, e.g. 'seed=7,transient=0.1' "
                            "(same syntax as $REPRO_FAULTS)")
        p.add_argument("--shard-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="static mode watchdog: respawn a sweep "
                            "shard that makes no progress for this "
                            "long")
        p.add_argument("--sweep-mode", default=None,
                       choices=("queue", "static"),
                       help="parallel execution mode for --jobs>1: "
                            "the shared work queue (default) or the "
                            "fork-join static sharding "
                            "(default: $REPRO_SWEEP_MODE or queue)")
        p.add_argument("--lease-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="queue mode: how long a leased work unit "
                            "is protected from being stolen by "
                            "another drainer (default: 60)")

    p = sub.add_parser("sweep", help="characterize many variants -> XML")
    p.add_argument("uarch", nargs="?", default="SKL")
    p.add_argument("--sample", type=int, default=60,
                   help="stratified sample size (0 = full catalog)")
    p.add_argument("--output", default="characterization.xml")
    p.add_argument("--html", default=None,
                   help="also write an HTML report (uops.info-style)")
    p.add_argument("--llvm", default=None,
                   help="also write an LLVM-style scheduling model (.td)")
    p.add_argument("--resume", action="store_true",
                   help="re-run only forms missing from the persistent "
                        "cache (e.g. quarantined by a faulty run) and "
                        "report the resumed/re-measured split")
    p.add_argument("--incremental", action="store_true",
                   help="diff per-form input fingerprints against the "
                        "sweep manifest and re-measure only forms "
                        "whose inputs (catalog entry, µop tables, "
                        "uarch knobs, protocol) changed")
    p.add_argument("--drain", action="store_true",
                   help="worker role: execute units from the shared "
                        "work queue in the cache directory until it "
                        "is drained (no XML output; any number of "
                        "drainers may share one cache directory)")
    p.add_argument("--enqueue-only", action="store_true",
                   help="coordinator role: enqueue the pending work "
                        "units for --drain processes instead of "
                        "executing them")
    p.add_argument("--strict", action="store_true",
                   help="exit 3 when any form was quarantined or "
                        "failed, so CI cannot silently pass on a "
                        "partial sweep")
    p.add_argument("--verbose", action="store_true")
    add_sweep_options(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("table1", help="regenerate Table 1")
    p.add_argument("--sample", type=int, default=45)
    add_sweep_options(p)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("case-studies",
                       help="run all Section 7.3 case studies")
    p.set_defaults(func=_cmd_case_studies)

    p = sub.add_parser("list", help="query the instruction catalog")
    p.add_argument("mnemonic", nargs="?")
    p.set_defaults(func=_cmd_list)

    p = sub.add_parser("analyze",
                       help="predict a loop kernel's performance")
    p.add_argument("file", help="assembly file ('-' for stdin)")
    p.add_argument("uarch", nargs="?", default="SKL")
    p.add_argument("--model", default=None,
                   help="use characterizations from a results XML "
                        "instead of measuring")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("cache",
                       help="manage the persistent result cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    g = cache_sub.add_parser(
        "gc",
        help="compact the cache stores: drop orphaned, stale, "
             "superseded, and corrupt entries; remove drained work "
             "queues",
    )
    g.add_argument("--cache-dir", default=None,
                   help="cache directory (default: ~/.cache/repro)")
    g.add_argument("--stats-json", default=None, metavar="PATH",
                   help="write the run statistics (gc_keys_dropped) "
                        "as JSON")
    g.add_argument("--force", action="store_true",
                   help="compact even when work queues hold unexpired "
                        "leases (only when the drainers are known "
                        "dead)")
    g.set_defaults(func=_cmd_cache_gc)

    p = sub.add_parser(
        "doctor",
        help="scan the persistent stores for crash damage (torn "
             "tails, CRC failures, orphaned leases, stale locks, "
             "manifest/cache disagreement) and optionally repair it",
    )
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: ~/.cache/repro)")
    p.add_argument("--repair", action="store_true",
                   help="apply the repair plan (truncate torn tails, "
                        "quarantine corrupt lines, release orphaned "
                        "leases, re-enqueue missing results)")
    p.add_argument("--force", action="store_true",
                   help="repair even when work queues hold unexpired "
                        "leases (only when the drainers are known "
                        "dead)")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON on stdout")
    p.set_defaults(func=_cmd_doctor)

    p = sub.add_parser("lint", help="run the repo's invariant checker")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: the "
                        "installed repro package + the model "
                        "consistency pass)")
    p.add_argument("--select", default=None, metavar="CODES",
                   help="comma-separated rule-code prefixes to "
                        "enable, e.g. RPR1,RPR203")
    p.add_argument("--ignore", default=None, metavar="CODES",
                   help="comma-separated rule-code prefixes to skip")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON on stdout")
    p.add_argument("--baseline", default=None, metavar="PATH",
                   help="a previous --json report whose findings are "
                        "accepted and filtered out")
    p.add_argument("--cache", default=None, metavar="PATH",
                   help="per-file result cache (JSON, keyed by "
                        "content hash) to speed up repeated runs")
    p.add_argument("--no-model", action="store_true",
                   help="skip the uarch model consistency pass")
    p.add_argument("--changed", nargs="?", const="HEAD", default=None,
                   metavar="BASE",
                   help="lint only .py files changed vs the given git "
                        "ref (default HEAD); an empty diff exits 0 "
                        "without linting anything")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="run per-file passes of cache misses in N "
                        "worker processes (output is byte-identical "
                        "to a serial run)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # The stdout consumer went away (`repro lint | head`).  Point
        # the real stdout at devnull so interpreter shutdown does not
        # raise a second time, and fail cleanly without a traceback.
        # When stdout is already redirected (tests, embedding), there
        # is nothing to protect.
        try:
            fd = sys.stdout.fileno()
        except (OSError, ValueError):
            fd = None
        if fd == 1:
            os.dup2(os.open(os.devnull, os.O_WRONLY), fd)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
