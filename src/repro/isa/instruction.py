"""Instruction forms and concrete instructions.

An :class:`InstructionForm` corresponds to what the paper counts as an
*instruction variant*: a mnemonic together with a specific combination of
operand kinds and widths (``ADD R64, R64`` and ``ADD R64, M64`` are distinct
forms).  A concrete :class:`Instruction` binds a form to actual registers,
memory operands, and immediates; the microbenchmark generators of Section 5
produce sequences of these.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Tuple

from repro.isa.operands import (
    Memory,
    Operand,
    OperandKind,
    OperandSpec,
    RegisterOperand,
    operand_registers_read,
    operand_registers_written,
)
from repro.isa.registers import Register, register_by_name

#: Attribute strings understood by the generators and the simulator.
ATTR_SYSTEM = "system"
ATTR_SERIALIZING = "serializing"
ATTR_CONTROL_FLOW = "control_flow"
ATTR_PAUSE = "pause"
ATTR_NOP = "nop"
ATTR_MOVE = "move"  # reg-to-reg move, candidate for move elimination
ATTR_ZERO_IDIOM = "zero_idiom"  # zero idiom when both operands are equal
ATTR_DEP_BREAKING = "dep_breaking"  # breaks dependency when operands equal
ATTR_DIVIDER = "divider"  # uses the (non-pipelined) divider unit
ATTR_UNSUPPORTED = "unsupported"  # cannot be measured meaningfully (UD, HLT)
ATTR_REP = "rep"
ATTR_LOCK = "lock"


def _shape_token(spec: OperandSpec) -> str:
    if spec.fixed:
        return spec.fixed
    if spec.kind == OperandKind.GPR:
        return f"R{spec.width}"
    if spec.kind == OperandKind.VEC:
        return {128: "XMM", 256: "YMM"}[spec.width]
    if spec.kind == OperandKind.MMX:
        return "MM"
    if spec.kind == OperandKind.MEM:
        return f"M{spec.width}"
    if spec.kind == OperandKind.AGEN:
        return "AGEN"
    if spec.kind == OperandKind.IMM:
        return f"I{spec.width}"
    raise AssertionError(spec.kind)


@dataclass(frozen=True)
class InstructionForm:
    """One instruction variant of the x86 instruction set.

    Attributes:
        mnemonic: assembler mnemonic, e.g. ``"ADD"``.
        operands: all operand slots, explicit ones first, implicit ones last.
        flags_read: status flags read by the instruction.
        flags_written: status flags written by the instruction.
        extension: ISA extension (``"BASE"``, ``"SSE2"``, ``"AVX"``, ...),
            used both for availability per microarchitecture and for the
            SSE/AVX blocking-instruction separation of Section 5.1.1.
        category: semantic category used by the machine-description rules in
            :mod:`repro.uarch.tables` (e.g. ``"int_alu"``, ``"vec_shuffle"``).
        attributes: behavioural attribute strings (see ``ATTR_*``).
    """

    mnemonic: str
    operands: Tuple[OperandSpec, ...]
    flags_read: frozenset = frozenset()
    flags_written: frozenset = frozenset()
    extension: str = "BASE"
    category: str = "int_alu"
    attributes: frozenset = frozenset()

    @functools.cached_property
    def uid(self) -> str:
        """Stable identity of the form, e.g. ``"ADD_R64_R64"``."""
        tokens = [self.mnemonic.replace(" ", "_")]
        for spec in self.operands:
            if spec.implicit:
                continue
            tokens.append(_shape_token(spec))
        return "_".join(tokens)

    def __hash__(self) -> int:
        # Forms are interned in practice but hashed constantly as parts
        # of measurement cache keys; the generated dataclass hash walks
        # every operand spec and frozenset each time.  Cache it (writing
        # through __dict__ bypasses the frozen-instance __setattr__).
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((
                self.mnemonic,
                self.operands,
                self.flags_read,
                self.flags_written,
                self.extension,
                self.category,
                self.attributes,
            ))
            self.__dict__["_hash"] = h
        return h

    @property
    def explicit_operands(self) -> Tuple[OperandSpec, ...]:
        return tuple(s for s in self.operands if not s.implicit)

    @property
    def implicit_operands(self) -> Tuple[OperandSpec, ...]:
        return tuple(s for s in self.operands if s.implicit)

    @property
    def has_memory_operand(self) -> bool:
        return any(s.kind == OperandKind.MEM for s in self.operands)

    @property
    def reads_memory(self) -> bool:
        return any(s.kind == OperandKind.MEM and s.read for s in self.operands)

    @property
    def writes_memory(self) -> bool:
        return any(
            s.kind == OperandKind.MEM and s.written for s in self.operands
        )

    @property
    def is_sse(self) -> bool:
        return self.extension.startswith("SSE") or self.extension in (
            "SSSE3",
            "AES",
            "PCLMULQDQ",
        )

    @property
    def is_avx(self) -> bool:
        return self.extension.startswith("AVX") or self.extension in (
            "F16C",
            "FMA",
        )

    def has_attribute(self, attr: str) -> bool:
        return attr in self.attributes

    def fingerprint_payload(self) -> dict:
        """A canonical, JSON-stable description of this catalog entry.

        Feeds the per-form input fingerprints of the incremental sweep
        manifest (:func:`repro.core.cache.form_fingerprint`): any edit
        to the catalog definition of a form — operand shapes, flags,
        extension, category, attributes — must change this payload, and
        nothing else may.  All unordered containers are sorted.
        """
        return {
            "mnemonic": self.mnemonic,
            "operands": [
                {
                    "kind": spec.kind.value,
                    "width": spec.width,
                    "read": spec.read,
                    "written": spec.written,
                    "implicit": spec.implicit,
                    "fixed": spec.fixed,
                }
                for spec in self.operands
            ],
            "flags_read": sorted(self.flags_read),
            "flags_written": sorted(self.flags_written),
            "extension": self.extension,
            "category": self.category,
            "attributes": sorted(self.attributes),
        }

    def source_operand_indices(self) -> List[int]:
        """Indices of operand slots the instruction reads.

        Memory slots count as sources when the memory contents are read;
        the address registers of *any* memory slot are additionally treated
        as sources by the dependency machinery.
        """
        return [i for i, s in enumerate(self.operands) if s.read]

    def destination_operand_indices(self) -> List[int]:
        return [i for i, s in enumerate(self.operands) if s.written]

    def operand_label(self, index: int) -> str:
        """Human-readable label for latency reports (``op1``, ``CL``, ...)."""
        return self.operands[index].describe(index + 1)

    def instantiate(self, *explicit: Operand) -> "Instruction":
        """Create a concrete instruction, auto-filling implicit slots."""
        explicit_specs = self.explicit_operands
        if len(explicit) != len(explicit_specs):
            raise ValueError(
                f"{self.uid}: expected {len(explicit_specs)} explicit "
                f"operands, got {len(explicit)}"
            )
        operands: List[Operand] = []
        it = iter(explicit)
        for spec in self.operands:
            if spec.implicit:
                operands.append(_implicit_operand(spec))
            else:
                operands.append(next(it))
        return Instruction(self, tuple(operands))

    def __str__(self) -> str:
        return self.uid


def _implicit_operand(spec: OperandSpec) -> Operand:
    if spec.fixed is not None:
        return RegisterOperand(register_by_name(spec.fixed))
    raise ValueError(f"implicit operand without fixed register: {spec}")


@dataclass(frozen=True)
class Instruction:
    """A concrete instruction: a form plus concrete operands (all slots)."""

    form: InstructionForm
    operands: Tuple[Operand, ...]

    def __post_init__(self) -> None:
        if len(self.operands) != len(self.form.operands):
            raise ValueError(
                f"{self.form.uid}: {len(self.form.operands)} slots, "
                f"{len(self.operands)} operands given"
            )

    def __hash__(self) -> int:
        # Measurement cache keys are tuples of instructions; cache the
        # per-instruction hash so repeated lookups don't re-walk the
        # operand structure (see InstructionForm.__hash__).
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.form, self.operands))
            self.__dict__["_hash"] = h
        return h

    # ------------------------------------------------------------------
    # Dependency queries (canonical register names)
    # ------------------------------------------------------------------

    def registers_read(self) -> Tuple[str, ...]:
        """Canonical names of registers read (incl. address registers)."""
        names: List[str] = []
        for spec, op in zip(self.form.operands, self.operands):
            names.extend(operand_registers_read(spec, op))
        return tuple(dict.fromkeys(names))

    def registers_written(self) -> Tuple[str, ...]:
        names: List[str] = []
        for spec, op in zip(self.form.operands, self.operands):
            names.extend(operand_registers_written(spec, op))
        return tuple(dict.fromkeys(names))

    def flags_read(self) -> frozenset:
        return self.form.flags_read

    def flags_written(self) -> frozenset:
        return self.form.flags_written

    def memory_reads(self) -> Tuple[Memory, ...]:
        return tuple(
            op
            for spec, op in zip(self.form.operands, self.operands)
            if isinstance(op, Memory)
            and spec.kind == OperandKind.MEM
            and spec.read
        )

    def memory_writes(self) -> Tuple[Memory, ...]:
        return tuple(
            op
            for spec, op in zip(self.form.operands, self.operands)
            if isinstance(op, Memory)
            and spec.kind == OperandKind.MEM
            and spec.written
        )

    def register_operand(self, index: int) -> Register:
        op = self.operands[index]
        if not isinstance(op, RegisterOperand):
            raise TypeError(f"operand {index} of {self} is not a register")
        return op.register

    def same_register_operands(self) -> bool:
        """Whether two register slots share a canonical register.

        Zero idioms and the SHLD same-register behaviour of Section 7.3.2
        trigger on this condition.
        """
        seen = set()
        for spec, op in zip(self.form.operands, self.operands):
            if spec.implicit or not isinstance(op, RegisterOperand):
                continue
            canon = op.register.canonical
            if canon in seen:
                return True
            seen.add(canon)
        return False

    def __str__(self) -> str:
        from repro.isa.assembler import format_instruction

        return format_instruction(self)
