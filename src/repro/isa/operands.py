"""Operand specifications and concrete operands.

An :class:`OperandSpec` describes one operand *slot* of an instruction form:
its kind (register file, memory, immediate), width, whether it is read and/or
written, whether it is implicit, and whether it is pinned to a fixed register
(as in ``SHL r/m, CL`` or ``MUL``'s implicit ``RDX:RAX``).

Concrete operands (:class:`RegisterOperand`, :class:`Memory`,
:class:`Immediate`) are what the microbenchmark generators instantiate the
slots with.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

from repro.isa.registers import Register, RegisterClass, register_by_name


class OperandKind(enum.Enum):
    """The kind of value an operand slot accepts."""

    GPR = "gpr"
    VEC = "vec"
    MMX = "mmx"
    MEM = "mem"
    IMM = "imm"
    AGEN = "agen"  # address-generation-only memory operand (LEA)


#: Pseudo-operand name used in latency maps for the status-flag inputs and
#: outputs of an instruction (the paper treats the flags as implicit
#: operands; we expose them as one source/destination column).
FLAGS_OPERAND = "flags"

#: Pseudo-operand name for the data stored to memory by an instruction with
#: a memory destination (Section 5.2.4: register -> memory latency).
MEM_OPERAND_PREFIX = "mem"


@dataclass(frozen=True)
class OperandSpec:
    """Description of one operand slot of an instruction form.

    Attributes:
        kind: register file / memory / immediate.
        width: operand width in bits (immediate width for ``IMM``).
        read: whether the instruction reads this operand.
        written: whether the instruction writes this operand.
        implicit: implicit operands do not appear in assembler syntax.
        fixed: if not ``None``, the name of the only register this slot can
            hold (e.g. ``"CL"`` for shift counts, ``"RAX"`` for ``MUL``).
        name: optional human-readable slot label used in latency reports.
    """

    kind: OperandKind
    width: int
    read: bool = True
    written: bool = False
    implicit: bool = False
    fixed: Optional[str] = None
    name: Optional[str] = None

    @property
    def is_register(self) -> bool:
        return self.kind in (OperandKind.GPR, OperandKind.VEC, OperandKind.MMX)

    @property
    def register_class(self) -> RegisterClass:
        return {
            OperandKind.GPR: RegisterClass.GPR,
            OperandKind.VEC: RegisterClass.VEC,
            OperandKind.MMX: RegisterClass.MMX,
        }[self.kind]

    def fixed_register(self) -> Optional[Register]:
        """The pinned register, if this slot is pinned."""
        return register_by_name(self.fixed) if self.fixed else None

    def describe(self, index: int) -> str:
        """A short slot label: explicit name, fixed register, or index."""
        if self.name:
            return self.name
        if self.fixed:
            return self.fixed
        return f"op{index}"


@dataclass(frozen=True)
class RegisterOperand:
    """A concrete register operand."""

    register: Register

    def __str__(self) -> str:
        return self.register.name


@dataclass(frozen=True)
class Memory:
    """A concrete memory operand ``[base + index*scale + disp]``.

    The paper's generated microbenchmarks only ever use the base register
    (Section 8); index/scale/displacement exist for assembler completeness.
    """

    base: Optional[Register]
    width: int
    index: Optional[Register] = None
    scale: int = 1
    displacement: int = 0

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"invalid scale: {self.scale}")

    def __str__(self) -> str:
        parts = []
        if self.base is not None:
            parts.append(self.base.name)
        if self.index is not None:
            term = self.index.name
            if self.scale != 1:
                term += f"*{self.scale}"
            parts.append(term)
        body = "+".join(parts)
        if self.displacement or not body:
            if body:
                sign = "+" if self.displacement >= 0 else "-"
                body += f"{sign}{abs(self.displacement)}"
            else:
                body = str(self.displacement)
        return f"[{body}]"


@dataclass(frozen=True)
class Immediate:
    """A concrete immediate operand."""

    value: int
    width: int = 32

    def __str__(self) -> str:
        return str(self.value)


Operand = Union[RegisterOperand, Memory, Immediate]


def operand_registers_read(spec: OperandSpec, operand: Operand) -> tuple:
    """Canonical register names read through *operand* under *spec*.

    A memory operand's base and index registers are always read (for address
    generation), regardless of whether the memory location itself is read.
    """
    names = []
    if isinstance(operand, RegisterOperand):
        if spec.read:
            names.append(operand.register.canonical)
    elif isinstance(operand, Memory):
        if operand.base is not None:
            names.append(operand.base.canonical)
        if operand.index is not None:
            names.append(operand.index.canonical)
    return tuple(names)


def operand_registers_written(spec: OperandSpec, operand: Operand) -> tuple:
    """Canonical register names written through *operand* under *spec*."""
    if isinstance(operand, RegisterOperand) and spec.written:
        return (operand.register.canonical,)
    return ()
