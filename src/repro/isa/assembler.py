"""Intel-syntax assembler front end (formatting and parsing).

The measurement kernels operate on :class:`~repro.isa.instruction.Instruction`
objects directly, but both the XML output and the examples round-trip through
Intel assembler syntax (``mnemonic op1, op2, ...``; memory operands written
``qword ptr [RAX+RBX*2+8]``), matching the notation of Section 3.2.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence

from repro.isa.instruction import Instruction, InstructionForm
from repro.isa.operands import (
    Immediate,
    Memory,
    Operand,
    OperandKind,
    OperandSpec,
    RegisterOperand,
)
from repro.isa.registers import is_register_name, register_by_name

_WIDTH_KEYWORDS = {
    8: "byte",
    16: "word",
    32: "dword",
    64: "qword",
    128: "xmmword",
    256: "ymmword",
}
_KEYWORD_WIDTHS = {kw: w for w, kw in _WIDTH_KEYWORDS.items()}


def format_operand(operand: Operand) -> str:
    """Format one concrete operand in Intel syntax."""
    if isinstance(operand, Memory):
        keyword = _WIDTH_KEYWORDS[operand.width]
        return f"{keyword} ptr {operand}"
    return str(operand)


def format_instruction(instruction: Instruction) -> str:
    """Format a concrete instruction in Intel syntax (explicit operands)."""
    parts = []
    for spec, op in zip(instruction.form.operands, instruction.operands):
        if spec.implicit:
            continue
        parts.append(format_operand(op))
    mnem = instruction.form.mnemonic
    return f"{mnem} {', '.join(parts)}" if parts else mnem


def format_sequence(instructions: Sequence[Instruction]) -> str:
    """Format an instruction sequence, one instruction per line."""
    return "\n".join(format_instruction(i) for i in instructions)


_MEM_RE = re.compile(
    r"^(?:(?P<kw>byte|word|dword|qword|xmmword|ymmword)\s+ptr\s+)?"
    r"\[(?P<body>[^\]]+)\]$",
    re.IGNORECASE,
)


class AssemblerError(ValueError):
    """Raised when assembler text cannot be parsed or matched to a form."""


def parse_operand(text: str, width_hint: Optional[int] = None) -> Operand:
    """Parse one operand in Intel syntax.

    Memory operands without a size keyword require a *width_hint*.
    """
    text = text.strip()
    match = _MEM_RE.match(text)
    if match:
        return _parse_memory(match, width_hint)
    if is_register_name(text):
        return RegisterOperand(register_by_name(text))
    try:
        value = int(text, 0)
    except ValueError:
        raise AssemblerError(f"cannot parse operand: {text!r}") from None
    return Immediate(value, width_hint or 32)


def _parse_memory(match: re.Match, width_hint: Optional[int]) -> Memory:
    keyword = match.group("kw")
    if keyword is not None:
        width = _KEYWORD_WIDTHS[keyword.lower()]
    elif width_hint is not None:
        width = width_hint
    else:
        raise AssemblerError(
            f"memory operand needs a size keyword: {match.group(0)!r}"
        )
    base = index = None
    scale = 1
    displacement = 0
    body = match.group("body").replace("-", "+-")
    for raw_term in body.split("+"):
        term = raw_term.strip()
        if not term:
            continue
        if "*" in term:
            reg_text, scale_text = term.split("*")
            index = register_by_name(reg_text.strip())
            scale = int(scale_text)
        elif is_register_name(term):
            if base is None:
                base = register_by_name(term)
            elif index is None:
                index = register_by_name(term)
            else:
                raise AssemblerError(f"too many registers in {term!r}")
        else:
            try:
                displacement += int(term, 0)
            except ValueError:
                raise AssemblerError(
                    f"cannot parse memory term: {term!r}"
                ) from None
    return Memory(base, width, index, scale, displacement)


def _split_operands(text: str) -> List[str]:
    """Split an operand list on commas that are not inside brackets."""
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def _operand_matches(spec: OperandSpec, operand: Operand) -> bool:
    if isinstance(operand, RegisterOperand):
        if not spec.is_register:
            return False
        reg = operand.register
        if reg.reg_class != spec.register_class:
            return False
        if spec.fixed is not None and reg.name != spec.fixed.upper():
            return False
        return reg.width == spec.width
    if isinstance(operand, Memory):
        return (
            spec.kind in (OperandKind.MEM, OperandKind.AGEN)
            and operand.width == spec.width
        )
    if isinstance(operand, Immediate):
        return spec.kind == OperandKind.IMM
    return False


def match_form(
    forms: Sequence[InstructionForm], operands: Sequence[Operand]
) -> Optional[InstructionForm]:
    """The first form whose explicit slots match the concrete operands."""
    for form in forms:
        specs = form.explicit_operands
        if len(specs) != len(operands):
            continue
        if all(_operand_matches(s, o) for s, o in zip(specs, operands)):
            return form
    return None


def parse_instruction(text: str, database) -> Instruction:
    """Parse one Intel-syntax instruction against an instruction database.

    Args:
        text: e.g. ``"ADD RAX, qword ptr [RBX]"``.
        database: an :class:`~repro.isa.database.InstructionDatabase`.
    """
    text = text.strip().rstrip(";")
    if not text:
        raise AssemblerError("empty instruction")
    head, _, rest = text.partition(" ")
    if head.upper() in ("LOCK", "REP", "REPE", "REPNE"):
        prefixed, _, rest = rest.strip().partition(" ")
        head = f"{head} {prefixed}"
    mnemonic = head.upper()
    forms = database.forms_for_mnemonic(mnemonic)
    if not forms:
        raise AssemblerError(f"unknown mnemonic: {mnemonic!r}")
    operand_texts = _split_operands(rest)
    # Memory widths may be implied by a register operand of the same form;
    # try explicit keywords first, then fall back to register width hints.
    width_hint = None
    for op_text in operand_texts:
        candidate = op_text.strip()
        if is_register_name(candidate):
            width_hint = register_by_name(candidate).width
            break
    operands = [parse_operand(t, width_hint) for t in operand_texts]
    form = match_form(forms, operands)
    if form is None:
        shapes = ", ".join(str(o) for o in operands)
        raise AssemblerError(f"no form of {mnemonic} matches ({shapes})")
    return form.instantiate(*operands)


def parse_sequence(text: str, database) -> List[Instruction]:
    """Parse a newline- or semicolon-separated instruction sequence."""
    instructions = []
    for line in re.split(r"[\n;]", text):
        line = line.split("#")[0].strip()
        if line:
            instructions.append(parse_instruction(line, database))
    return instructions
