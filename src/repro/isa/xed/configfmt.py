"""XED-style configuration text format (writer and parser).

The format mirrors the block structure of Intel XED's ``*.txt`` datafiles:

.. code-block:: text

    {
    ICLASS     : ADD
    EXTENSION  : BASE
    CATEGORY   : int_alu
    ATTRIBUTES :
    FLAGS      : r: w:CF,PF,AF,ZF,SF,OF
    OPERANDS   : GPR:64:rw GPR:64:r
    }

Operand tokens are ``KIND:width:access[:fixed=REG][:implicit]`` with access
``r``, ``w``, or ``rw``.  The parser accepts anything the writer emits
(a lossless round trip, which the test suite checks for the entire
catalog).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.isa.instruction import InstructionForm
from repro.isa.operands import OperandKind, OperandSpec


def _operand_token(spec: OperandSpec) -> str:
    access = ("r" if spec.read else "") + ("w" if spec.written else "")
    parts = [spec.kind.name, str(spec.width), access or "n"]
    if spec.fixed is not None:
        parts.append(f"fixed={spec.fixed}")
    if spec.implicit:
        parts.append("implicit")
    if spec.name:
        parts.append(f"name={spec.name}")
    return ":".join(parts)


def _parse_operand(token: str) -> OperandSpec:
    fields = token.split(":")
    if len(fields) < 3:
        raise ValueError(f"malformed operand token: {token!r}")
    kind = OperandKind[fields[0]]
    width = int(fields[1])
    access = fields[2]
    fixed: Optional[str] = None
    implicit = False
    name: Optional[str] = None
    for extra in fields[3:]:
        if extra == "implicit":
            implicit = True
        elif extra.startswith("fixed="):
            fixed = extra[len("fixed="):]
        elif extra.startswith("name="):
            name = extra[len("name="):]
        else:
            raise ValueError(f"unknown operand qualifier: {extra!r}")
    return OperandSpec(
        kind=kind,
        width=width,
        read="r" in access,
        written="w" in access,
        implicit=implicit,
        fixed=fixed,
        name=name,
    )


def dump_form(form: InstructionForm) -> str:
    """One XED-style block for one instruction form."""
    flags = (
        "r:" + ",".join(sorted(form.flags_read))
        + " w:" + ",".join(sorted(form.flags_written))
    )
    operands = " ".join(_operand_token(s) for s in form.operands)
    lines = [
        "{",
        f"ICLASS     : {form.mnemonic}",
        f"EXTENSION  : {form.extension}",
        f"CATEGORY   : {form.category}",
        f"ATTRIBUTES : {' '.join(sorted(form.attributes))}",
        f"FLAGS      : {flags}",
        f"OPERANDS   : {operands}",
        "}",
    ]
    return "\n".join(lines)


def dump_config(forms: Iterable[InstructionForm]) -> str:
    """The whole catalog in XED-style configuration text."""
    header = (
        "# XED-style instruction description (Section 6.1)\n"
        "# One block per instruction variant.\n"
    )
    return header + "\n".join(dump_form(f) for f in forms) + "\n"


def parse_config(text: str) -> List[InstructionForm]:
    """Parse XED-style configuration text back into instruction forms."""
    forms: List[InstructionForm] = []
    block: Optional[dict] = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#")[0].strip()
        if not line:
            continue
        if line == "{":
            if block is not None:
                raise ValueError(f"line {line_number}: nested block")
            block = {}
            continue
        if line == "}":
            if block is None:
                raise ValueError(f"line {line_number}: stray '}}'")
            forms.append(_block_to_form(block, line_number))
            block = None
            continue
        if block is None:
            raise ValueError(
                f"line {line_number}: content outside of a block"
            )
        key, _, value = line.partition(":")
        block[key.strip()] = value.strip()
    if block is not None:
        raise ValueError("unterminated block at end of file")
    return forms


def _block_to_form(block: dict, line_number: int) -> InstructionForm:
    try:
        mnemonic = block["ICLASS"]
    except KeyError:
        raise ValueError(f"block ending at line {line_number}: no ICLASS")
    flags_read: frozenset = frozenset()
    flags_written: frozenset = frozenset()
    flags_field = block.get("FLAGS", "")
    for part in flags_field.split():
        if part.startswith("r:"):
            flags_read = frozenset(
                f for f in part[2:].split(",") if f
            )
        elif part.startswith("w:"):
            flags_written = frozenset(
                f for f in part[2:].split(",") if f
            )
    operands = tuple(
        _parse_operand(token)
        for token in block.get("OPERANDS", "").split()
    )
    return InstructionForm(
        mnemonic=mnemonic,
        operands=operands,
        flags_read=flags_read,
        flags_written=flags_written,
        extension=block.get("EXTENSION", "BASE"),
        category=block.get("CATEGORY", "int_alu"),
        attributes=frozenset(block.get("ATTRIBUTES", "").split()),
    )
