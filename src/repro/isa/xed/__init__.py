"""The machine-readable instruction-set description pipeline (Section 6.1).

The paper extracts its instruction data from the configuration files of
Intel's X86 Encoder Decoder (XED) library — a concise, block-structured text
format — and converts it to a simpler XML representation with everything the
benchmark generators need (operand kinds/widths, implicit operands, flags).

This package reproduces both halves: :mod:`repro.isa.xed.configfmt` can emit
the built-in catalog in a XED-style text format and parse such files back,
and :mod:`repro.isa.xed.xml_format` converts a parsed database to/from the
XML instruction description.
"""

from repro.isa.xed.configfmt import dump_config, parse_config
from repro.isa.xed.xml_format import database_to_xml, xml_to_database

__all__ = [
    "dump_config",
    "parse_config",
    "database_to_xml",
    "xml_to_database",
]
