"""XML instruction description (the "simpler XML representation" of
Section 6.1).

One ``<instruction>`` element per variant, one ``<operand>`` child per
operand slot (explicit and implicit), with flag read/write sets as
attributes — enough information to generate assembler code for each
variant, which is all the benchmark generators need.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List

from repro.isa.database import InstructionDatabase
from repro.isa.instruction import InstructionForm
from repro.isa.operands import OperandKind, OperandSpec


def database_to_xml(database: InstructionDatabase) -> ET.Element:
    root = ET.Element("instructionSet")
    for form in database:
        element = ET.SubElement(root, "instruction")
        element.set("iclass", form.mnemonic)
        element.set("string", form.uid)
        element.set("extension", form.extension)
        element.set("category", form.category)
        if form.attributes:
            element.set("attributes", " ".join(sorted(form.attributes)))
        if form.flags_read:
            element.set("flagsRead", ",".join(sorted(form.flags_read)))
        if form.flags_written:
            element.set(
                "flagsWritten", ",".join(sorted(form.flags_written))
            )
        for index, spec in enumerate(form.operands):
            operand = ET.SubElement(element, "operand")
            operand.set("idx", str(index + 1))
            operand.set("type", spec.kind.name)
            operand.set("width", str(spec.width))
            if spec.read:
                operand.set("r", "1")
            if spec.written:
                operand.set("w", "1")
            if spec.implicit:
                operand.set("implicit", "1")
            if spec.fixed:
                operand.set("registers", spec.fixed)
            if spec.name:
                operand.set("name", spec.name)
    return root


def xml_to_database(root: ET.Element) -> InstructionDatabase:
    forms: List[InstructionForm] = []
    for element in root.findall("instruction"):
        operands = []
        for operand in element.findall("operand"):
            operands.append(
                OperandSpec(
                    kind=OperandKind[operand.get("type")],
                    width=int(operand.get("width")),
                    read=operand.get("r") == "1",
                    written=operand.get("w") == "1",
                    implicit=operand.get("implicit") == "1",
                    fixed=operand.get("registers"),
                    name=operand.get("name"),
                )
            )
        flags_read = frozenset(
            f for f in (element.get("flagsRead") or "").split(",") if f
        )
        flags_written = frozenset(
            f for f in (element.get("flagsWritten") or "").split(",") if f
        )
        forms.append(
            InstructionForm(
                mnemonic=element.get("iclass"),
                operands=tuple(operands),
                flags_read=flags_read,
                flags_written=flags_written,
                extension=element.get("extension", "BASE"),
                category=element.get("category", "int_alu"),
                attributes=frozenset(
                    (element.get("attributes") or "").split()
                ),
            )
        )
    return InstructionDatabase(forms)
