"""Shared constructors for catalog modules."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.isa.instruction import InstructionForm
from repro.isa.operands import OperandKind, OperandSpec

#: The six status flags.
ALL_FLAGS = frozenset({"CF", "PF", "AF", "ZF", "SF", "OF"})
#: Flags written by arithmetic instructions.
ARITH_FLAGS = ALL_FLAGS
#: Flags written by logic instructions (AF is undefined, i.e. clobbered).
LOGIC_FLAGS = ALL_FLAGS
#: Flags written by INC/DEC (everything except CF).
INC_FLAGS = frozenset({"PF", "AF", "ZF", "SF", "OF"})
#: Flags written by shifts (AF undefined -> clobbered).
SHIFT_FLAGS = frozenset({"CF", "PF", "AF", "ZF", "SF", "OF"})
#: Flags written by rotates.
ROTATE_FLAGS = frozenset({"CF", "OF"})
#: Flags SAHF writes / LAHF reads.
SAHF_FLAGS = frozenset({"CF", "PF", "AF", "ZF", "SF"})
#: Flags TEST/logic comparisons write (AF is NOT written by TEST, per paper).
TEST_FLAGS = frozenset({"CF", "PF", "ZF", "SF", "OF"})

#: Condition code -> status flags read, for CMOVcc/SETcc/Jcc.
CONDITION_FLAGS = {
    "O": {"OF"},
    "NO": {"OF"},
    "B": {"CF"},
    "AE": {"CF"},
    "E": {"ZF"},
    "NE": {"ZF"},
    "BE": {"CF", "ZF"},
    "A": {"CF", "ZF"},
    "S": {"SF"},
    "NS": {"SF"},
    "P": {"PF"},
    "NP": {"PF"},
    "L": {"SF", "OF"},
    "GE": {"SF", "OF"},
    "LE": {"SF", "ZF", "OF"},
    "G": {"SF", "ZF", "OF"},
}

GPR_WIDTHS = (8, 16, 32, 64)


def R(
    width: int,
    read: bool = True,
    written: bool = False,
    fixed: Optional[str] = None,
    implicit: bool = False,
    name: Optional[str] = None,
) -> OperandSpec:
    """A general-purpose register operand slot."""
    return OperandSpec(
        OperandKind.GPR, width, read, written, implicit, fixed, name
    )


def M(width: int, read: bool = True, written: bool = False) -> OperandSpec:
    """A memory operand slot."""
    return OperandSpec(OperandKind.MEM, width, read, written)


def I(width: int = 32) -> OperandSpec:
    """An immediate operand slot."""
    return OperandSpec(OperandKind.IMM, width, read=True)


def X(
    read: bool = True,
    written: bool = False,
    fixed: Optional[str] = None,
    implicit: bool = False,
) -> OperandSpec:
    """An XMM register operand slot."""
    return OperandSpec(OperandKind.VEC, 128, read, written, implicit, fixed)


def Y(read: bool = True, written: bool = False) -> OperandSpec:
    """A YMM register operand slot."""
    return OperandSpec(OperandKind.VEC, 256, read, written)


def MM(read: bool = True, written: bool = False) -> OperandSpec:
    """An MMX register operand slot."""
    return OperandSpec(OperandKind.MMX, 64, read, written)


def AGEN() -> OperandSpec:
    """An address-generation-only operand (LEA source)."""
    return OperandSpec(OperandKind.AGEN, 64, read=True)


def form(
    mnemonic: str,
    operands: Sequence[OperandSpec],
    *,
    flags_read: Iterable[str] = (),
    flags_written: Iterable[str] = (),
    extension: str = "BASE",
    category: str = "int_alu",
    attributes: Iterable[str] = (),
) -> InstructionForm:
    """Construct an :class:`InstructionForm` with frozen collections."""
    return InstructionForm(
        mnemonic=mnemonic,
        operands=tuple(operands),
        flags_read=frozenset(flags_read),
        flags_written=frozenset(flags_written),
        extension=extension,
        category=category,
        attributes=frozenset(attributes),
    )


def imm_widths_for(width: int) -> Tuple[int, ...]:
    """Immediate width variants x86 encodes for a given operand width."""
    if width == 8:
        return (8,)
    if width == 16:
        return (8, 16)
    return (8, 32)
