"""General-purpose (integer) instruction forms."""

from __future__ import annotations

from typing import List

from repro.isa.catalog._helpers import (
    AGEN,
    ALL_FLAGS,
    ARITH_FLAGS,
    CONDITION_FLAGS,
    GPR_WIDTHS,
    I,
    INC_FLAGS,
    LOGIC_FLAGS,
    M,
    R,
    ROTATE_FLAGS,
    SAHF_FLAGS,
    SHIFT_FLAGS,
    TEST_FLAGS,
    form,
    imm_widths_for,
)
from repro.isa.instruction import (
    ATTR_CONTROL_FLOW,
    ATTR_DEP_BREAKING,
    ATTR_DIVIDER,
    ATTR_LOCK,
    ATTR_MOVE,
    ATTR_NOP,
    ATTR_REP,
    ATTR_ZERO_IDIOM,
    InstructionForm,
)


def _binary_alu(
    mnemonic: str,
    *,
    writes_dst: bool = True,
    flags_read=(),
    flags_written=ARITH_FLAGS,
    category: str = "int_alu",
    attributes=(),
    rm_shapes: str = "rr rm mr ri mi",
) -> List[InstructionForm]:
    """ADD-style two-operand forms at all widths and immediate variants."""
    forms = []
    shapes = rm_shapes.split()
    for width in GPR_WIDTHS:
        dst_r = R(width, read=True, written=writes_dst)
        dst_m = M(width, read=True, written=writes_dst)
        if "rr" in shapes:
            forms.append(
                form(
                    mnemonic,
                    (dst_r, R(width)),
                    flags_read=flags_read,
                    flags_written=flags_written,
                    category=category,
                    attributes=attributes,
                )
            )
        if "rm" in shapes:
            forms.append(
                form(
                    mnemonic,
                    (dst_r, M(width)),
                    flags_read=flags_read,
                    flags_written=flags_written,
                    category=category,
                    attributes=attributes,
                )
            )
        if "mr" in shapes:
            forms.append(
                form(
                    mnemonic,
                    (dst_m, R(width)),
                    flags_read=flags_read,
                    flags_written=flags_written,
                    category=category,
                    attributes=attributes,
                )
            )
        for imm_width in imm_widths_for(width):
            if "ri" in shapes:
                forms.append(
                    form(
                        mnemonic,
                        (dst_r, I(imm_width)),
                        flags_read=flags_read,
                        flags_written=flags_written,
                        category=category,
                        attributes=attributes,
                    )
                )
            if "mi" in shapes:
                forms.append(
                    form(
                        mnemonic,
                        (dst_m, I(imm_width)),
                        flags_read=flags_read,
                        flags_written=flags_written,
                        category=category,
                        attributes=attributes,
                    )
                )
    return forms


def _movsx_family() -> List[InstructionForm]:
    forms = []
    pairs = [(16, 8), (32, 8), (32, 16), (64, 8), (64, 16)]
    for mnemonic, category in (("MOVSX", "movsx"), ("MOVZX", "movzx")):
        for dst_w, src_w in pairs:
            for src in (R(src_w), M(src_w)):
                forms.append(
                    form(
                        mnemonic,
                        (R(dst_w, read=False, written=True), src),
                        category=category,
                    )
                )
    for src in (R(32), M(32)):
        forms.append(
            form(
                "MOVSXD",
                (R(64, read=False, written=True), src),
                category="movsx",
            )
        )
    return forms


def _shift_family() -> List[InstructionForm]:
    forms = []
    plain = [("SHL", "shift"), ("SHR", "shift"), ("SAR", "shift")]
    rotates = [("ROL", "rotate"), ("ROR", "rotate")]
    carry_rotates = [("RCL", "rotate_carry"), ("RCR", "rotate_carry")]
    for width in GPR_WIDTHS:
        for dst in (R(width, read=True, written=True),
                    M(width, read=True, written=True)):
            for mnemonic, category in plain:
                forms.append(
                    form(
                        mnemonic,
                        (dst, I(8)),
                        flags_written=SHIFT_FLAGS,
                        category=category,
                    )
                )
                forms.append(
                    form(
                        mnemonic,
                        (dst, R(8, fixed="CL")),
                        flags_read=ALL_FLAGS,
                        flags_written=SHIFT_FLAGS,
                        category=category,
                    )
                )
            for mnemonic, category in rotates:
                forms.append(
                    form(
                        mnemonic,
                        (dst, I(8)),
                        flags_written=ROTATE_FLAGS,
                        category=category,
                    )
                )
                forms.append(
                    form(
                        mnemonic,
                        (dst, R(8, fixed="CL")),
                        flags_read=ROTATE_FLAGS,
                        flags_written=ROTATE_FLAGS,
                        category=category,
                    )
                )
            for mnemonic, category in carry_rotates:
                forms.append(
                    form(
                        mnemonic,
                        (dst, I(8)),
                        flags_read={"CF"},
                        flags_written=ROTATE_FLAGS,
                        category=category,
                    )
                )
                forms.append(
                    form(
                        mnemonic,
                        (dst, R(8, fixed="CL")),
                        flags_read={"CF", "OF"},
                        flags_written=ROTATE_FLAGS,
                        category=category,
                    )
                )
    # Double-precision shifts (Section 7.3.2 case study).
    for width in (16, 32, 64):
        for dst in (R(width, read=True, written=True),
                    M(width, read=True, written=True)):
            for mnemonic in ("SHLD", "SHRD"):
                forms.append(
                    form(
                        mnemonic,
                        (dst, R(width), I(8)),
                        flags_written=SHIFT_FLAGS,
                        category="shld",
                    )
                )
                forms.append(
                    form(
                        mnemonic,
                        (dst, R(width), R(8, fixed="CL")),
                        flags_read=ALL_FLAGS,
                        flags_written=SHIFT_FLAGS,
                        category="shld",
                    )
                )
    return forms


def _mul_div_family() -> List[InstructionForm]:
    forms = []
    for width in (16, 32, 64):
        for src in (R(width), M(width)):
            forms.append(
                form(
                    "IMUL",
                    (R(width, read=True, written=True), src),
                    flags_written=ARITH_FLAGS,
                    category="imul",
                )
            )
        for imm_width in imm_widths_for(width):
            for src in (R(width), M(width)):
                forms.append(
                    form(
                        "IMUL",
                        (R(width, read=False, written=True), src,
                         I(imm_width)),
                        flags_written=ARITH_FLAGS,
                        category="imul",
                    )
                )
    # One-operand multiply/divide with implicit RAX/RDX.
    for width in GPR_WIDTHS:
        acc = "AL" if width == 8 else {16: "AX", 32: "EAX", 64: "RAX"}[width]
        hi = {8: "AH", 16: "DX", 32: "EDX", 64: "RDX"}[width]
        mul_implicits = (
            R(width, read=True, written=True, fixed=acc, implicit=True),
            R(width, read=False, written=True, fixed=hi, implicit=True),
        )
        div_implicits = (
            R(width, read=True, written=True, fixed=acc, implicit=True),
            R(width, read=True, written=True, fixed=hi, implicit=True),
        )
        for mnemonic in ("MUL", "IMUL"):
            for src in (R(width), M(width)):
                forms.append(
                    form(
                        mnemonic,
                        (src,) + mul_implicits,
                        flags_written=ARITH_FLAGS,
                        category="mul1",
                    )
                )
        for mnemonic in ("DIV", "IDIV"):
            for src in (R(width), M(width)):
                forms.append(
                    form(
                        mnemonic,
                        (src,) + div_implicits,
                        flags_written=ARITH_FLAGS,
                        category="div",
                        attributes=(ATTR_DIVIDER,),
                    )
                )
    return forms


def _conditional_family() -> List[InstructionForm]:
    forms = []
    for cc, flags in CONDITION_FLAGS.items():
        category = "cmov_be" if cc in ("BE", "A") else "cmov"
        for width in (16, 32, 64):
            for src in (R(width), M(width)):
                forms.append(
                    form(
                        f"CMOV{cc}",
                        (R(width, read=True, written=True), src),
                        flags_read=flags,
                        category=category,
                    )
                )
        for dst in (R(8, read=False, written=True),
                    M(8, read=False, written=True)):
            forms.append(
                form(f"SET{cc}", (dst,), flags_read=flags, category="setcc")
            )
        forms.append(
            form(
                f"J{cc}",
                (I(8),),
                flags_read=flags,
                category="branch",
                attributes=(ATTR_CONTROL_FLOW,),
            )
        )
    return forms


def _bit_family() -> List[InstructionForm]:
    forms = []
    for width in (16, 32, 64):
        for mnemonic, writes in (
            ("BT", False),
            ("BTS", True),
            ("BTR", True),
            ("BTC", True),
        ):
            category = "bt" if not writes else "bts"
            for dst in (R(width, read=True, written=writes),
                        M(width, read=True, written=writes)):
                forms.append(
                    form(
                        mnemonic,
                        (dst, R(width)),
                        flags_written={"CF"},
                        category=category,
                    )
                )
                forms.append(
                    form(
                        mnemonic,
                        (dst, I(8)),
                        flags_written={"CF"},
                        category=category,
                    )
                )
        for mnemonic, ext in (
            ("BSF", "BASE"),
            ("BSR", "BASE"),
            ("POPCNT", "POPCNT"),
            ("LZCNT", "LZCNT"),
            ("TZCNT", "BMI1"),
        ):
            category = "popcnt" if mnemonic == "POPCNT" else "bitscan"
            for src in (R(width), M(width)):
                forms.append(
                    form(
                        mnemonic,
                        (R(width, read=False, written=True), src),
                        flags_written=TEST_FLAGS,
                        extension=ext,
                        category=category,
                    )
                )
    for mnemonic in ("ANDN",):
        for width in (32, 64):
            for src in (R(width), M(width)):
                forms.append(
                    form(
                        mnemonic,
                        (R(width, read=False, written=True), R(width), src),
                        flags_written=TEST_FLAGS,
                        extension="BMI1",
                        category="int_alu",
                    )
                )
    return forms


def _stack_and_misc() -> List[InstructionForm]:
    rsp = R(64, read=True, written=True, fixed="RSP", implicit=True)
    forms = [
        form("PUSH", (R(64), rsp), category="push"),
        form("PUSH", (I(32), rsp), category="push"),
        form("PUSH", (M(64), rsp), category="push"),
        form("POP", (R(64, read=False, written=True), rsp), category="pop"),
        form("POP", (M(64, read=False, written=True), rsp), category="pop"),
        form("CMC", (), flags_read={"CF"}, flags_written={"CF"},
             category="flags_op"),
        form("STC", (), flags_written={"CF"}, category="flags_op"),
        form("CLC", (), flags_written={"CF"}, category="flags_op"),
        form(
            "LAHF",
            (R(8, read=False, written=True, fixed="AH", implicit=True),),
            flags_read=SAHF_FLAGS,
            category="lahf",
        ),
        form(
            "SAHF",
            (R(8, read=True, fixed="AH", implicit=True),),
            flags_written=SAHF_FLAGS,
            category="sahf",
        ),
        form("NOP", (), category="nop", attributes=(ATTR_NOP,)),
        form("PAUSE", (), category="pause", attributes=("pause",)),
    ]
    for mnemonic, width in (("CBW", 16), ("CWDE", 32), ("CDQE", 64)):
        acc = {16: "AX", 32: "EAX", 64: "RAX"}[width]
        forms.append(
            form(
                mnemonic,
                (R(width, read=True, written=True, fixed=acc,
                   implicit=True),),
                category="cbw",
            )
        )
    for mnemonic, width in (("CWD", 16), ("CDQ", 32), ("CQO", 64)):
        acc = {16: "AX", 32: "EAX", 64: "RAX"}[width]
        hi = {16: "DX", 32: "EDX", 64: "RDX"}[width]
        forms.append(
            form(
                mnemonic,
                (
                    R(width, read=True, fixed=acc, implicit=True),
                    R(width, read=False, written=True, fixed=hi,
                      implicit=True),
                ),
                category="cwd",
            )
        )
    return forms


def _accumulator_forms() -> List[InstructionForm]:
    """The short accumulator-opcode encodings (``ADD AL, imm8`` etc.) —
    distinct machine encodings, hence distinct variants."""
    forms = []
    acc_by_width = {8: "AL", 16: "AX", 32: "EAX", 64: "RAX"}
    ops = (
        ("ADD", ARITH_FLAGS, (), "int_alu", True),
        ("SUB", ARITH_FLAGS, (), "int_alu", True),
        ("AND", LOGIC_FLAGS, (), "int_alu", True),
        ("OR", LOGIC_FLAGS, (), "int_alu", True),
        ("XOR", LOGIC_FLAGS, (), "int_alu", True),
        ("CMP", ARITH_FLAGS, (), "int_alu", False),
        ("ADC", ARITH_FLAGS, ("CF",), "int_alu_carry", True),
        ("SBB", ARITH_FLAGS, ("CF",), "int_alu_carry", True),
        ("TEST", TEST_FLAGS, (), "int_alu", False),
    )
    for width, acc in acc_by_width.items():
        imm_width = min(width, 32)
        for mnemonic, flags_w, flags_r, category, writes in ops:
            forms.append(
                form(
                    mnemonic,
                    (
                        R(width, read=True, written=writes, fixed=acc),
                        I(imm_width),
                    ),
                    flags_read=flags_r,
                    flags_written=flags_w,
                    category=category,
                )
            )
    # XCHG RAX, r64: the one-byte 90+r encodings.
    for width in (16, 32, 64):
        acc = acc_by_width[width]
        forms.append(
            form(
                "XCHG",
                (
                    R(width, read=True, written=True, fixed=acc),
                    R(width, read=True, written=True),
                ),
                category="xchg",
            )
        )
    return forms


def _rel32_branches() -> List[InstructionForm]:
    """Jcc rel32: distinct encodings from the rel8 forms."""
    forms = []
    for cc, flags in CONDITION_FLAGS.items():
        forms.append(
            form(
                f"J{cc}",
                (I(32),),
                flags_read=flags,
                category="branch",
                attributes=(ATTR_CONTROL_FLOW,),
            )
        )
    return forms


def _lock_and_rep() -> List[InstructionForm]:
    forms = []
    for mnemonic in ("ADD", "SUB", "AND", "OR", "XOR"):
        for width in (32, 64):
            forms.append(
                form(
                    f"LOCK {mnemonic}",
                    (M(width, read=True, written=True), R(width)),
                    flags_written=ARITH_FLAGS,
                    category="lock_rmw",
                    attributes=(ATTR_LOCK,),
                )
            )
    for width in (32, 64):
        forms.append(
            form(
                "LOCK XADD",
                (M(width, read=True, written=True),
                 R(width, read=True, written=True)),
                flags_written=ARITH_FLAGS,
                category="lock_rmw",
                attributes=(ATTR_LOCK,),
            )
        )
    rsi = R(64, read=True, written=True, fixed="RSI", implicit=True)
    rdi = R(64, read=True, written=True, fixed="RDI", implicit=True)
    rcx = R(64, read=True, written=True, fixed="RCX", implicit=True)
    forms.append(
        form(
            "REP MOVSB",
            (rsi, rdi, rcx),
            category="string_rep",
            attributes=(ATTR_REP,),
        )
    )
    forms.append(
        form(
            "REP STOSB",
            (rdi, rcx,
             R(8, read=True, fixed="AL", implicit=True)),
            category="string_rep",
            attributes=(ATTR_REP,),
        )
    )
    return forms


def build() -> List[InstructionForm]:
    """All general-purpose instruction forms."""
    forms: List[InstructionForm] = []

    forms += _binary_alu("ADD")
    forms += _binary_alu("SUB", attributes=(ATTR_ZERO_IDIOM,
                                            ATTR_DEP_BREAKING))
    forms += _binary_alu("AND", flags_written=LOGIC_FLAGS)
    forms += _binary_alu("OR", flags_written=LOGIC_FLAGS)
    forms += _binary_alu(
        "XOR",
        flags_written=LOGIC_FLAGS,
        attributes=(ATTR_ZERO_IDIOM, ATTR_DEP_BREAKING),
    )
    forms += _binary_alu("CMP", writes_dst=False)
    forms += _binary_alu(
        "ADC", flags_read={"CF"}, category="int_alu_carry"
    )
    forms += _binary_alu(
        "SBB",
        flags_read={"CF"},
        category="int_alu_carry",
        attributes=(ATTR_DEP_BREAKING,),
    )
    forms += _binary_alu(
        "TEST",
        writes_dst=False,
        flags_written=TEST_FLAGS,
        rm_shapes="rr mr ri mi",
    )

    # Unary ALU.
    for width in GPR_WIDTHS:
        for dst in (R(width, read=True, written=True),
                    M(width, read=True, written=True)):
            forms.append(form("INC", (dst,), flags_written=INC_FLAGS))
            forms.append(form("DEC", (dst,), flags_written=INC_FLAGS))
            forms.append(form("NEG", (dst,), flags_written=ARITH_FLAGS))
            forms.append(form("NOT", (dst,)))

    # Moves.
    for width in GPR_WIDTHS:
        forms.append(
            form(
                "MOV",
                (R(width, read=False, written=True), R(width)),
                category="mov",
                attributes=(ATTR_MOVE,),
            )
        )
        forms.append(
            form(
                "MOV",
                (R(width, read=False, written=True), M(width)),
                category="load",
            )
        )
        forms.append(
            form(
                "MOV",
                (M(width, read=False, written=True), R(width)),
                category="store",
            )
        )
        imm_w = width if width <= 32 else 32
        forms.append(
            form(
                "MOV",
                (R(width, read=False, written=True), I(imm_w)),
                category="mov_imm",
            )
        )
        forms.append(
            form(
                "MOV",
                (M(width, read=False, written=True), I(imm_w)),
                category="store",
            )
        )
    forms.append(
        form(
            "MOV",
            (R(64, read=False, written=True), I(64)),
            category="mov_imm",
        )
    )
    forms += _movsx_family()

    # LEA (base-register addressing only; Section 8).
    for width in (16, 32, 64):
        forms.append(
            form(
                "LEA",
                (R(width, read=False, written=True), AGEN()),
                category="lea",
            )
        )

    # Exchange / exchange-add / byte swap.
    for width in GPR_WIDTHS:
        forms.append(
            form(
                "XCHG",
                (R(width, read=True, written=True),
                 R(width, read=True, written=True)),
                category="xchg",
            )
        )
        forms.append(
            form(
                "XCHG",
                (M(width, read=True, written=True),
                 R(width, read=True, written=True)),
                category="xchg_mem",
                attributes=(ATTR_LOCK,),
            )
        )
        forms.append(
            form(
                "XADD",
                (R(width, read=True, written=True),
                 R(width, read=True, written=True)),
                flags_written=ARITH_FLAGS,
                category="xadd",
            )
        )
        forms.append(
            form(
                "XADD",
                (M(width, read=True, written=True),
                 R(width, read=True, written=True)),
                flags_written=ARITH_FLAGS,
                category="xadd_mem",
            )
        )
    for width in (32, 64):
        forms.append(
            form(
                "BSWAP",
                (R(width, read=True, written=True),),
                category="bswap",
            )
        )

    forms += _shift_family()
    forms += _mul_div_family()
    forms += _conditional_family()
    forms += _bit_family()
    forms += _stack_and_misc()
    forms += _accumulator_forms()
    forms += _rel32_branches()
    forms += _lock_and_rep()
    return forms
