"""AVX/AVX2/FMA (VEX-encoded) vector instruction forms.

VEX encodings are three-operand (``VADDPS xmm1, xmm2, xmm3/m128``); integer
operations on YMM require AVX2 (Haswell+), floating-point YMM requires AVX
(Sandy Bridge+).
"""

from __future__ import annotations

from typing import List

from repro.isa.catalog._helpers import I, M, R, TEST_FLAGS, X, Y, form
from repro.isa.instruction import (
    ATTR_DEP_BREAKING,
    ATTR_MOVE,
    ATTR_ZERO_IDIOM,
    InstructionForm,
)
from repro.isa.catalog import sse

#: SSE mnemonics mirrored as VEX three-operand forms:
#: (mnemonic, category, int_domain, has_imm, dst_read_in_sse)
_MIRRORED_3OP = (
    [(m, "vec_int_alu", True, False) for m, _ in sse.INT_ALU_OPS
     if not m.startswith("PABS")]
    + [(m, "vec_int_cmp", True, False) for m, _ in sse.INT_CMP_OPS]
    + [(m, "vec_logic", False, False) for m, _ in sse.LOGIC_OPS]
    + [(m, "vec_int_mul", True, False) for m, _ in sse.INT_MUL_OPS]
    + [(m, "vec_shuffle", True, False) for m, _ in sse.SHUFFLE_OPS]
    + [(m, "vec_fp_add", False, False) for m, _ in sse.FP_ADD_OPS]
    + [(m, "vec_fp_mul", False, False) for m, _ in sse.FP_MUL_OPS]
    + [(m, "vec_fp_div", False, False) for m, _ in sse.FP_DIV_OPS]
    + [(m, "vec_fp_minmax", False, False) for m, _ in sse.FP_MINMAX_OPS]
    + [(m, "vec_fp_hadd", False, False) for m, _ in sse.FP_HADD_OPS]
    + [("PSHUFB", "vec_pshufb", True, False)]
    + [("PSADBW", "vec_psadbw", True, False)]
)

_MIRRORED_3OP_IMM = [
    ("PALIGNR", "vec_shuffle_imm", True),
    ("SHUFPS", "vec_shuffle_imm", False),
    ("SHUFPD", "vec_shuffle_imm", False),
    ("BLENDPS", "vec_blend", False),
    ("BLENDPD", "vec_blend", False),
    ("PBLENDW", "vec_blend", True),
    ("MPSADBW", "vec_mpsadbw", True),
    ("CMPPS", "vec_fp_cmp", False),
    ("CMPPD", "vec_fp_cmp", False),
    ("DPPS", "vec_dp", False),
]

#: Two-operand VEX forms (no extra source): (mnemonic, category, int_domain)
_MIRRORED_2OP = [
    ("SQRTPS", "vec_fp_sqrt", False),
    ("SQRTPD", "vec_fp_sqrt", False),
    ("RCPPS", "vec_fp_rcp", False),
    ("RSQRTPS", "vec_fp_rcp", False),
    ("CVTDQ2PS", "vec_cvt", False),
    ("CVTPS2DQ", "vec_cvt", False),
    ("CVTTPS2DQ", "vec_cvt", False),
    ("PABSB", "vec_int_alu", True),
    ("PABSW", "vec_int_alu", True),
    ("PABSD", "vec_int_alu", True),
]

_MIRRORED_2OP_IMM = [
    ("PSHUFD", "vec_shuffle_imm", True),
    ("PSHUFLW", "vec_shuffle_imm", True),
    ("PSHUFHW", "vec_shuffle_imm", True),
    ("ROUNDPS", "vec_fp_round", False),
    ("ROUNDPD", "vec_fp_round", False),
]


def _vec(width: int, **kwargs):
    return X(**kwargs) if width == 128 else Y(**kwargs)


def _ext_for(width: int, int_domain: bool) -> str:
    if width == 256 and int_domain:
        return "AVX2"
    return "AVX"


def _attrs_for(mnemonic: str) -> tuple:
    if mnemonic in ("PXOR", "XORPS", "XORPD"):
        return (ATTR_ZERO_IDIOM, ATTR_DEP_BREAKING)
    if mnemonic.startswith("PCMPEQ"):
        return (ATTR_ZERO_IDIOM,)
    return ()


def build() -> List[InstructionForm]:
    """All VEX-encoded instruction forms."""
    forms: List[InstructionForm] = []
    for width in (128, 256):
        for mnemonic, category, int_domain, _ in _MIRRORED_3OP:
            ext = _ext_for(width, int_domain)
            for src2 in (_vec(width), M(width)):
                forms.append(
                    form(
                        f"V{mnemonic}",
                        (_vec(width, read=False, written=True),
                         _vec(width), src2),
                        extension=ext,
                        category=category,
                        attributes=_attrs_for(mnemonic),
                    )
                )
        for mnemonic, category, int_domain in _MIRRORED_3OP_IMM:
            ext = _ext_for(width, int_domain)
            for src2 in (_vec(width), M(width)):
                forms.append(
                    form(
                        f"V{mnemonic}",
                        (_vec(width, read=False, written=True),
                         _vec(width), src2, I(8)),
                        extension=ext,
                        category=category,
                    )
                )
        for mnemonic, category, int_domain in _MIRRORED_2OP:
            ext = _ext_for(width, int_domain)
            for src in (_vec(width), M(width)):
                forms.append(
                    form(
                        f"V{mnemonic}",
                        (_vec(width, read=False, written=True), src),
                        extension=ext,
                        category=category,
                    )
                )
        for mnemonic, category, int_domain in _MIRRORED_2OP_IMM:
            ext = _ext_for(width, int_domain)
            for src in (_vec(width), M(width)):
                forms.append(
                    form(
                        f"V{mnemonic}",
                        (_vec(width, read=False, written=True), src, I(8)),
                        extension=ext,
                        category=category,
                    )
                )
        # Moves.
        for mnemonic in ("MOVDQA", "MOVDQU", "MOVAPS", "MOVAPD", "MOVUPS",
                         "MOVUPD"):
            forms.append(
                form(
                    f"V{mnemonic}",
                    (_vec(width, read=False, written=True), _vec(width)),
                    extension="AVX",
                    category="vec_mov",
                    attributes=(ATTR_MOVE,),
                )
            )
            forms.append(
                form(
                    f"V{mnemonic}",
                    (_vec(width, read=False, written=True), M(width)),
                    extension="AVX",
                    category="vec_load",
                )
            )
            forms.append(
                form(
                    f"V{mnemonic}",
                    (M(width, read=False, written=True), _vec(width)),
                    extension="AVX",
                    category="vec_store",
                )
            )
        # Variable blends become explicit 4-operand forms under VEX
        # (Section 7.3.5: VPBLENDV(B/PD/PS) are multi-latency cases).
        for mnemonic in ("PBLENDVB", "BLENDVPS", "BLENDVPD"):
            int_domain = mnemonic == "PBLENDVB"
            ext = _ext_for(width, int_domain)
            for src2 in (_vec(width), M(width)):
                forms.append(
                    form(
                        f"V{mnemonic}",
                        (_vec(width, read=False, written=True),
                         _vec(width), src2, _vec(width)),
                        extension=ext,
                        category="vec_blendv",
                    )
                )
        # Vector shifts (Section 7.3.5 multi-latency list).
        for mnemonic in ("PSLLW", "PSLLD", "PSLLQ", "PSRLW", "PSRLD",
                         "PSRLQ", "PSRAW", "PSRAD"):
            ext = _ext_for(width, True)
            forms.append(
                form(
                    f"V{mnemonic}",
                    (_vec(width, read=False, written=True), _vec(width),
                     I(8)),
                    extension=ext,
                    category="vec_shift_imm",
                )
            )
            for count in (X(), M(128)):
                forms.append(
                    form(
                        f"V{mnemonic}",
                        (_vec(width, read=False, written=True),
                         _vec(width), count),
                        extension=ext,
                        category="vec_shift",
                    )
                )
    # FMA (Haswell+): a representative subset of the 132/213/231 family.
    for stem in ("VFMADD", "VFMSUB", "VFNMADD"):
        for order in ("132", "213", "231"):
            for suffix in ("PS", "PD", "SS", "SD"):
                widths = (128,) if suffix in ("SS", "SD") else (128, 256)
                for width in widths:
                    for src2 in (_vec(width), M(width)):
                        forms.append(
                            form(
                                f"{stem}{order}{suffix}",
                                (_vec(width, read=True, written=True),
                                 _vec(width), src2),
                                extension="FMA",
                                category="fma",
                            )
                        )
    # AVX-only lane/permute operations.
    for src in (Y(), M(256)):
        forms.append(
            form(
                "VPERM2F128",
                (Y(read=False, written=True), Y(), src, I(8)),
                extension="AVX",
                category="avx_lane",
            )
        )
        forms.append(
            form(
                "VPERM2I128",
                (Y(read=False, written=True), Y(), src, I(8)),
                extension="AVX2",
                category="avx_lane",
            )
        )
    forms.append(
        form(
            "VEXTRACTF128",
            (X(read=False, written=True), Y(), I(8)),
            extension="AVX",
            category="avx_lane",
        )
    )
    forms.append(
        form(
            "VEXTRACTF128",
            (M(128, read=False, written=True), Y(), I(8)),
            extension="AVX",
            category="avx_lane",
        )
    )
    for src in (X(), M(128)):
        forms.append(
            form(
                "VINSERTF128",
                (Y(read=False, written=True), Y(), src, I(8)),
                extension="AVX",
                category="avx_lane",
            )
        )
    for width in (128, 256):
        forms.append(
            form(
                "VBROADCASTSS",
                (_vec(width, read=False, written=True), M(32)),
                extension="AVX",
                category="vec_load",
            )
        )
        forms.append(
            form(
                "VPERMILPS",
                (_vec(width, read=False, written=True), _vec(width), I(8)),
                extension="AVX",
                category="vec_shuffle_imm",
            )
        )
    forms.append(
        form(
            "VPERMPS",
            (Y(read=False, written=True), Y(), Y()),
            extension="AVX2",
            category="avx_lane",
        )
    )
    forms.append(
        form(
            "VPERMD",
            (Y(read=False, written=True), Y(), Y()),
            extension="AVX2",
            category="avx_lane",
        )
    )
    forms.append(
        form("VZEROUPPER", (), extension="AVX", category="vzeroupper")
    )
    forms.append(
        form("VZEROALL", (), extension="AVX", category="vzeroall")
    )
    # VEX comparisons writing flags, and VPTEST.
    for mnemonic in ("VCOMISS", "VCOMISD", "VUCOMISS", "VUCOMISD"):
        width = 32 if mnemonic.endswith("SS") else 64
        for src in (X(), M(width)):
            forms.append(
                form(
                    mnemonic,
                    (X(), src),
                    flags_written=TEST_FLAGS,
                    extension="AVX",
                    category="vec_comis",
                )
            )
    for width in (128, 256):
        for src in (_vec(width), M(width)):
            forms.append(
                form(
                    "VPTEST",
                    (_vec(width), src),
                    flags_written=TEST_FLAGS,
                    extension="AVX",
                    category="vec_ptest",
                )
            )
    # VEX AES (AVX-capable cores re-encode AES under VEX).
    for mnemonic in ("AESENC", "AESENCLAST", "AESDEC", "AESDECLAST"):
        for src in (X(), M(128)):
            forms.append(
                form(
                    f"V{mnemonic}",
                    (X(read=False, written=True), X(), src),
                    extension="AVX_AES",
                    category="vec_aes",
                )
            )
    return forms
