"""SSE-family (legacy, non-VEX) vector instruction forms, plus MMX."""

from __future__ import annotations

from typing import List, Sequence

from repro.isa.catalog._helpers import I, M, MM, R, TEST_FLAGS, X, form
from repro.isa.instruction import (
    ATTR_DEP_BREAKING,
    ATTR_MOVE,
    ATTR_ZERO_IDIOM,
    InstructionForm,
)

#: (mnemonic, extension) for the packed integer ALU operations.
INT_ALU_OPS = [
    ("PADDB", "SSE2"), ("PADDW", "SSE2"), ("PADDD", "SSE2"),
    ("PADDQ", "SSE2"), ("PSUBB", "SSE2"), ("PSUBW", "SSE2"),
    ("PSUBD", "SSE2"), ("PSUBQ", "SSE2"), ("PADDSB", "SSE2"),
    ("PADDSW", "SSE2"), ("PADDUSB", "SSE2"), ("PADDUSW", "SSE2"),
    ("PSUBSB", "SSE2"), ("PSUBSW", "SSE2"), ("PSUBUSB", "SSE2"),
    ("PSUBUSW", "SSE2"), ("PAVGB", "SSE2"), ("PAVGW", "SSE2"),
    ("PMINUB", "SSE2"), ("PMAXUB", "SSE2"), ("PMINSW", "SSE2"),
    ("PMAXSW", "SSE2"), ("PMINSB", "SSE4"), ("PMAXSB", "SSE4"),
    ("PMINUW", "SSE4"), ("PMAXUW", "SSE4"), ("PMINSD", "SSE4"),
    ("PMAXSD", "SSE4"), ("PMINUD", "SSE4"), ("PMAXUD", "SSE4"),
    ("PABSB", "SSSE3"), ("PABSW", "SSSE3"), ("PABSD", "SSSE3"),
    ("PSIGNB", "SSSE3"), ("PSIGNW", "SSSE3"), ("PSIGND", "SSSE3"),
]

INT_CMP_OPS = [
    ("PCMPEQB", "SSE2"), ("PCMPEQW", "SSE2"), ("PCMPEQD", "SSE2"),
    ("PCMPEQQ", "SSE4"), ("PCMPGTB", "SSE2"), ("PCMPGTW", "SSE2"),
    ("PCMPGTD", "SSE2"), ("PCMPGTQ", "SSE4"),
]

LOGIC_OPS = [
    ("PAND", "SSE2"), ("POR", "SSE2"), ("PXOR", "SSE2"), ("PANDN", "SSE2"),
    ("ANDPS", "SSE"), ("ANDPD", "SSE2"), ("ORPS", "SSE"), ("ORPD", "SSE2"),
    ("XORPS", "SSE"), ("XORPD", "SSE2"),
]

INT_MUL_OPS = [
    ("PMULLW", "SSE2"), ("PMULHW", "SSE2"), ("PMULHUW", "SSE2"),
    ("PMULLD", "SSE4"), ("PMULUDQ", "SSE2"), ("PMULDQ", "SSE4"),
    ("PMADDWD", "SSE2"), ("PMADDUBSW", "SSSE3"), ("PMULHRSW", "SSSE3"),
]

SHUFFLE_OPS = [
    ("PUNPCKLBW", "SSE2"), ("PUNPCKLWD", "SSE2"), ("PUNPCKLDQ", "SSE2"),
    ("PUNPCKLQDQ", "SSE2"), ("PUNPCKHBW", "SSE2"), ("PUNPCKHWD", "SSE2"),
    ("PUNPCKHDQ", "SSE2"), ("PUNPCKHQDQ", "SSE2"), ("PACKSSWB", "SSE2"),
    ("PACKSSDW", "SSE2"), ("PACKUSWB", "SSE2"), ("PACKUSDW", "SSE4"),
    ("UNPCKLPS", "SSE"), ("UNPCKHPS", "SSE"), ("UNPCKLPD", "SSE2"),
    ("UNPCKHPD", "SSE2"),
]

FP_ADD_OPS = [
    ("ADDPS", "SSE"), ("ADDPD", "SSE2"), ("ADDSS", "SSE"), ("ADDSD", "SSE2"),
    ("SUBPS", "SSE"), ("SUBPD", "SSE2"), ("SUBSS", "SSE"), ("SUBSD", "SSE2"),
]

FP_MUL_OPS = [
    ("MULPS", "SSE"), ("MULPD", "SSE2"), ("MULSS", "SSE"), ("MULSD", "SSE2"),
]

FP_DIV_OPS = [
    ("DIVPS", "SSE"), ("DIVPD", "SSE2"), ("DIVSS", "SSE"), ("DIVSD", "SSE2"),
]

FP_SQRT_OPS = [
    ("SQRTPS", "SSE"), ("SQRTPD", "SSE2"), ("SQRTSS", "SSE"),
    ("SQRTSD", "SSE2"),
]

FP_MINMAX_OPS = [
    ("MINPS", "SSE"), ("MINPD", "SSE2"), ("MINSS", "SSE"), ("MINSD", "SSE2"),
    ("MAXPS", "SSE"), ("MAXPD", "SSE2"), ("MAXSS", "SSE"), ("MAXSD", "SSE2"),
]

FP_HADD_OPS = [
    ("HADDPS", "SSE3"), ("HADDPD", "SSE3"), ("HSUBPS", "SSE3"),
    ("HSUBPD", "SSE3"), ("ADDSUBPS", "SSE3"), ("ADDSUBPD", "SSE3"),
]

CVT_OPS = [
    ("CVTDQ2PS", "SSE2"), ("CVTPS2DQ", "SSE2"), ("CVTTPS2DQ", "SSE2"),
    ("CVTDQ2PD", "SSE2"), ("CVTPD2DQ", "SSE2"), ("CVTTPD2DQ", "SSE2"),
    ("CVTPS2PD", "SSE2"), ("CVTPD2PS", "SSE2"),
]


def _scalar_mem_width(mnemonic: str) -> int:
    """Memory width for FP scalar operations (SS -> 32, SD -> 64)."""
    if mnemonic.endswith("SS"):
        return 32
    if mnemonic.endswith("SD") and mnemonic != "PMADDWD":
        return 64
    return 128


def _two_op(
    mnemonic: str,
    ext: str,
    category: str,
    *,
    dst_read: bool = True,
    attributes: Sequence[str] = (),
    mem_width: int = 0,
) -> List[InstructionForm]:
    """``OP xmm, xmm/mem`` shapes."""
    width = mem_width or (
        _scalar_mem_width(mnemonic)
        if category.startswith("vec_fp") or category == "vec_cvt"
        else 128
    )
    return [
        form(
            mnemonic,
            (X(read=dst_read, written=True), src),
            extension=ext,
            category=category,
            attributes=attributes,
        )
        for src in (X(), M(width))
    ]


def _two_op_imm(
    mnemonic: str, ext: str, category: str, *, dst_read: bool = True
) -> List[InstructionForm]:
    """``OP xmm, xmm/m128, imm8`` shapes."""
    return [
        form(
            mnemonic,
            (X(read=dst_read, written=True), src, I(8)),
            extension=ext,
            category=category,
        )
        for src in (X(), M(128))
    ]


def _movs() -> List[InstructionForm]:
    forms = []
    for mnemonic, ext in (
        ("MOVDQA", "SSE2"), ("MOVDQU", "SSE2"), ("MOVAPS", "SSE"),
        ("MOVAPD", "SSE2"), ("MOVUPS", "SSE"), ("MOVUPD", "SSE2"),
    ):
        forms.append(
            form(
                mnemonic,
                (X(read=False, written=True), X()),
                extension=ext,
                category="vec_mov",
                attributes=(ATTR_MOVE,),
            )
        )
        forms.append(
            form(
                mnemonic,
                (X(read=False, written=True), M(128)),
                extension=ext,
                category="vec_load",
            )
        )
        forms.append(
            form(
                mnemonic,
                (M(128, read=False, written=True), X()),
                extension=ext,
                category="vec_store",
            )
        )
    for mnemonic, ext in (("MOVSS", "SSE"), ("MOVSD", "SSE2")):
        width = 32 if mnemonic == "MOVSS" else 64
        forms.append(
            form(
                mnemonic,
                (X(read=True, written=True), X()),
                extension=ext,
                category="vec_shuffle",
            )
        )
        forms.append(
            form(
                mnemonic,
                (X(read=False, written=True), M(width)),
                extension=ext,
                category="vec_load",
            )
        )
        forms.append(
            form(
                mnemonic,
                (M(width, read=False, written=True), X()),
                extension=ext,
                category="vec_store",
            )
        )
    # GPR <-> XMM moves.
    for mnemonic, gpr_w in (("MOVD", 32), ("MOVQ", 64)):
        forms.append(
            form(
                mnemonic,
                (X(read=False, written=True), R(gpr_w)),
                extension="SSE2",
                category="vec_from_gpr",
            )
        )
        forms.append(
            form(
                mnemonic,
                (R(gpr_w, read=False, written=True), X()),
                extension="SSE2",
                category="vec_to_gpr",
            )
        )
    forms.append(
        form(
            "MOVQ",
            (X(read=False, written=True), X()),
            extension="SSE2",
            category="vec_shuffle",
        )
    )
    forms.append(
        form(
            "MOVQ",
            (X(read=False, written=True), M(64)),
            extension="SSE2",
            category="vec_load",
        )
    )
    forms.append(
        form(
            "MOVQ",
            (M(64, read=False, written=True), X()),
            extension="SSE2",
            category="vec_store",
        )
    )
    # MMX <-> GPR moves (chain instructions for cross-file latencies).
    forms.append(
        form(
            "MOVD",
            (MM(read=False, written=True), R(32)),
            extension="MMX",
            category="vec_from_gpr",
        )
    )
    forms.append(
        form(
            "MOVD",
            (R(32, read=False, written=True), MM()),
            extension="MMX",
            category="vec_to_gpr",
        )
    )
    forms.append(
        form(
            "MOVQ",
            (MM(read=False, written=True), R(64)),
            extension="MMX",
            category="vec_from_gpr",
        )
    )
    forms.append(
        form(
            "MOVQ",
            (R(64, read=False, written=True), MM()),
            extension="MMX",
            category="vec_to_gpr",
        )
    )
    # MMX <-> XMM (Sections 7.3.3 / 7.3.4 case studies).
    forms.append(
        form(
            "MOVQ2DQ",
            (X(read=False, written=True), MM()),
            extension="SSE2",
            category="movq2dq",
        )
    )
    forms.append(
        form(
            "MOVDQ2Q",
            (MM(read=False, written=True), X()),
            extension="SSE2",
            category="movdq2q",
        )
    )
    # MMX moves and a small MMX ALU set.
    forms.append(
        form(
            "MOVQ",
            (MM(read=False, written=True), MM()),
            extension="MMX",
            category="mmx_mov",
        )
    )
    forms.append(
        form(
            "MOVQ",
            (MM(read=False, written=True), M(64)),
            extension="MMX",
            category="vec_load",
        )
    )
    forms.append(
        form(
            "MOVQ",
            (M(64, read=False, written=True), MM()),
            extension="MMX",
            category="vec_store",
        )
    )
    for mnemonic in ("PADDB", "PADDW", "PADDD", "PSUBB", "PSUBW", "PSUBD",
                     "PADDSB", "PADDSW", "PADDUSB", "PADDUSW",
                     "PCMPEQB", "PCMPEQW", "PCMPEQD",
                     "PCMPGTB", "PCMPGTW", "PCMPGTD",
                     "PUNPCKLBW", "PUNPCKLWD", "PUNPCKHBW", "PACKSSWB"):
        forms.append(
            form(
                mnemonic,
                (MM(read=True, written=True), MM()),
                extension="MMX",
                category="mmx_alu",
            )
        )
    for mnemonic in ("PMULLW", "PMULHW", "PMADDWD"):
        forms.append(
            form(
                mnemonic,
                (MM(read=True, written=True), MM()),
                extension="MMX",
                category="vec_int_mul",
            )
        )
    forms.append(
        form(
            "PSHUFW",
            (MM(read=False, written=True), MM(), I(8)),
            extension="MMX",
            category="mmx_alu",
        )
    )
    for mnemonic in ("PSLLW", "PSLLD", "PSLLQ", "PSRLW", "PSRLD",
                     "PSRAW"):
        forms.append(
            form(
                mnemonic,
                (MM(read=True, written=True), I(8)),
                extension="MMX",
                category="vec_shift_imm",
            )
        )
    for mnemonic in ("PAND", "POR", "PXOR"):
        forms.append(
            form(
                mnemonic,
                (MM(read=True, written=True), MM()),
                extension="MMX",
                category="mmx_alu",
                attributes=(ATTR_ZERO_IDIOM, ATTR_DEP_BREAKING)
                if mnemonic == "PXOR"
                else (),
            )
        )
    return forms


def _shifts() -> List[InstructionForm]:
    forms = []
    for mnemonic in (
        "PSLLW", "PSLLD", "PSLLQ", "PSRLW", "PSRLD", "PSRLQ", "PSRAW",
        "PSRAD",
    ):
        forms.append(
            form(
                mnemonic,
                (X(read=True, written=True), I(8)),
                extension="SSE2",
                category="vec_shift_imm",
            )
        )
        for src in (X(), M(128)):
            forms.append(
                form(
                    mnemonic,
                    (X(read=True, written=True), src),
                    extension="SSE2",
                    category="vec_shift",
                )
            )
    for mnemonic in ("PSLLDQ", "PSRLDQ"):
        forms.append(
            form(
                mnemonic,
                (X(read=True, written=True), I(8)),
                extension="SSE2",
                category="vec_shuffle_imm",
            )
        )
    return forms


def _misc() -> List[InstructionForm]:
    forms = []
    forms += _two_op_imm("PSHUFD", "SSE2", "vec_shuffle_imm", dst_read=False)
    forms += _two_op_imm("PSHUFLW", "SSE2", "vec_shuffle_imm",
                         dst_read=False)
    forms += _two_op_imm("PSHUFHW", "SSE2", "vec_shuffle_imm",
                         dst_read=False)
    forms += _two_op("PSHUFB", "SSSE3", "vec_pshufb")
    forms += _two_op_imm("PALIGNR", "SSSE3", "vec_shuffle_imm")
    forms += _two_op_imm("SHUFPS", "SSE", "vec_shuffle_imm")
    forms += _two_op_imm("SHUFPD", "SSE2", "vec_shuffle_imm")
    forms += _two_op_imm("BLENDPS", "SSE4", "vec_blend")
    forms += _two_op_imm("BLENDPD", "SSE4", "vec_blend")
    forms += _two_op_imm("PBLENDW", "SSE4", "vec_blend")
    forms += _two_op_imm("MPSADBW", "SSE4", "vec_mpsadbw")
    forms += _two_op("PSADBW", "SSE2", "vec_psadbw")
    forms += _two_op_imm("ROUNDPS", "SSE4", "vec_fp_round", dst_read=False)
    forms += _two_op_imm("ROUNDPD", "SSE4", "vec_fp_round", dst_read=False)
    forms += _two_op_imm("ROUNDSS", "SSE4", "vec_fp_round")
    forms += _two_op_imm("ROUNDSD", "SSE4", "vec_fp_round")
    forms += _two_op_imm("DPPS", "SSE4", "vec_dp")
    forms += _two_op_imm("DPPD", "SSE4", "vec_dp")
    forms += _two_op_imm("CMPPS", "SSE", "vec_fp_cmp")
    forms += _two_op_imm("CMPPD", "SSE2", "vec_fp_cmp")
    forms += _two_op_imm("CMPSS", "SSE", "vec_fp_cmp")
    forms += _two_op_imm("CMPSD", "SSE2", "vec_fp_cmp")
    forms += _two_op("RCPPS", "SSE", "vec_fp_rcp", dst_read=False)
    forms += _two_op("RSQRTPS", "SSE", "vec_fp_rcp", dst_read=False)
    # Variable blends with implicit XMM0 (PBLENDVB: Section 5.1 case study).
    for mnemonic in ("PBLENDVB", "BLENDVPS", "BLENDVPD"):
        for src in (X(), M(128)):
            forms.append(
                form(
                    mnemonic,
                    (X(read=True, written=True), src,
                     X(implicit=True, fixed="XMM0")),
                    extension="SSE4",
                    category="vec_blendv",
                )
            )
    # Mask extraction / tests (write GPRs or flags).
    for mnemonic, ext in (
        ("PMOVMSKB", "SSE2"), ("MOVMSKPS", "SSE"), ("MOVMSKPD", "SSE2"),
    ):
        forms.append(
            form(
                mnemonic,
                (R(32, read=False, written=True), X()),
                extension=ext,
                category="vec_movmsk",
            )
        )
    for mnemonic, ext in (
        ("COMISS", "SSE"), ("COMISD", "SSE2"),
        ("UCOMISS", "SSE"), ("UCOMISD", "SSE2"),
    ):
        width = 32 if mnemonic.endswith("SS") else 64
        for src in (X(), M(width)):
            forms.append(
                form(
                    mnemonic,
                    (X(), src),
                    flags_written=TEST_FLAGS,
                    extension=ext,
                    category="vec_comis",
                )
            )
    for src in (X(), M(128)):
        forms.append(
            form(
                "PTEST",
                (X(), src),
                flags_written=TEST_FLAGS,
                extension="SSE4",
                category="vec_ptest",
            )
        )
    # Extract / insert.
    for mnemonic, width in (
        ("PEXTRB", 8), ("PEXTRW", 16), ("PEXTRD", 32), ("PEXTRQ", 64),
    ):
        gpr_w = max(width, 32)
        forms.append(
            form(
                mnemonic,
                (R(gpr_w, read=False, written=True), X(), I(8)),
                extension="SSE4",
                category="vec_extract",
            )
        )
    for mnemonic, width in (
        ("PINSRB", 8), ("PINSRW", 16), ("PINSRD", 32), ("PINSRQ", 64),
    ):
        gpr_w = max(width, 32)
        forms.append(
            form(
                mnemonic,
                (X(read=True, written=True), R(gpr_w), I(8)),
                extension="SSE4",
                category="vec_insert",
            )
        )
    # Scalar int <-> float conversions.
    for gpr_w in (32, 64):
        for mnemonic in ("CVTSI2SS", "CVTSI2SD"):
            forms.append(
                form(
                    mnemonic,
                    (X(read=True, written=True), R(gpr_w)),
                    extension="SSE2",
                    category="vec_cvt_gpr",
                )
            )
        for mnemonic in ("CVTSS2SI", "CVTSD2SI", "CVTTSS2SI", "CVTTSD2SI"):
            forms.append(
                form(
                    mnemonic,
                    (R(gpr_w, read=False, written=True), X()),
                    extension="SSE2",
                    category="vec_cvt_to_gpr",
                )
            )
    # AES and carry-less multiply (Westmere+; Section 7.3.1 case study).
    for mnemonic in ("AESENC", "AESENCLAST", "AESDEC", "AESDECLAST"):
        forms += _two_op(mnemonic, "AES", "vec_aes")
    forms += _two_op("AESIMC", "AES", "vec_aes", dst_read=False)
    forms += _two_op_imm(
        "AESKEYGENASSIST", "AES", "vec_aes", dst_read=False
    )
    forms += _two_op_imm("PCLMULQDQ", "PCLMULQDQ", "vec_clmul")
    return forms


def build() -> List[InstructionForm]:
    """All SSE-family and MMX instruction forms."""
    forms: List[InstructionForm] = []
    forms += _movs()
    for mnemonic, ext in INT_ALU_OPS:
        dst_read = not mnemonic.startswith("PABS")
        forms += _two_op(mnemonic, ext, "vec_int_alu", dst_read=dst_read)
    for mnemonic, ext in INT_CMP_OPS:
        attrs = (ATTR_ZERO_IDIOM,) if mnemonic.startswith("PCMPEQ") else ()
        # Section 7.3.6: (V)PCMPGT* turn out to be dependency-breaking
        # idioms; the catalog intentionally does NOT mark them, so the
        # discovery in core.latency is a genuine finding.
        forms += _two_op(mnemonic, ext, "vec_int_cmp", attributes=attrs)
    for mnemonic, ext in LOGIC_OPS:
        attrs = ()
        if mnemonic in ("PXOR", "XORPS", "XORPD"):
            attrs = (ATTR_ZERO_IDIOM, ATTR_DEP_BREAKING)
        forms += _two_op(mnemonic, ext, "vec_logic", attributes=attrs)
    for mnemonic, ext in INT_MUL_OPS:
        forms += _two_op(mnemonic, ext, "vec_int_mul")
    for mnemonic, ext in SHUFFLE_OPS:
        forms += _two_op(mnemonic, ext, "vec_shuffle")
    for mnemonic, ext in FP_ADD_OPS:
        forms += _two_op(mnemonic, ext, "vec_fp_add")
    for mnemonic, ext in FP_MUL_OPS:
        forms += _two_op(mnemonic, ext, "vec_fp_mul")
    for mnemonic, ext in FP_DIV_OPS:
        forms += _two_op(mnemonic, ext, "vec_fp_div")
    for mnemonic, ext in FP_SQRT_OPS:
        forms += _two_op(mnemonic, ext, "vec_fp_sqrt", dst_read=False)
    for mnemonic, ext in FP_MINMAX_OPS:
        forms += _two_op(mnemonic, ext, "vec_fp_minmax")
    for mnemonic, ext in FP_HADD_OPS:
        forms += _two_op(mnemonic, ext, "vec_fp_hadd")
    for mnemonic, ext in CVT_OPS:
        forms += _two_op(mnemonic, ext, "vec_cvt", dst_read=False)
    forms += _shifts()
    forms += _misc()
    return forms
