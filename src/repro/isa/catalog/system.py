"""System, serializing, and unmeasurable instructions.

These exist in the catalog so that the exclusion logic of Section 5.1.1
(no system / serializing instructions as blocking instructions) and the
limitations of Section 8 (system instructions unsupported) have something
real to act on.
"""

from __future__ import annotations

from typing import List

from repro.isa.catalog._helpers import I, R, form
from repro.isa.instruction import (
    ATTR_CONTROL_FLOW,
    ATTR_SERIALIZING,
    ATTR_SYSTEM,
    ATTR_UNSUPPORTED,
    InstructionForm,
)


def build() -> List[InstructionForm]:
    forms: List[InstructionForm] = [
        form(
            "CPUID",
            (
                R(32, read=True, written=True, fixed="EAX", implicit=True),
                R(32, read=False, written=True, fixed="EBX", implicit=True),
                R(32, read=True, written=True, fixed="ECX", implicit=True),
                R(32, read=False, written=True, fixed="EDX", implicit=True),
            ),
            category="serializing",
            attributes=(ATTR_SERIALIZING,),
        ),
        form("LFENCE", (), category="fence", attributes=(ATTR_SERIALIZING,)),
        form("MFENCE", (), category="fence", attributes=(ATTR_SERIALIZING,)),
        form("SFENCE", (), category="fence"),
        form(
            "RDTSC",
            (
                R(32, read=False, written=True, fixed="EAX", implicit=True),
                R(32, read=False, written=True, fixed="EDX", implicit=True),
            ),
            category="rdtsc",
            attributes=(ATTR_SYSTEM,),
        ),
        form(
            "RDTSCP",
            (
                R(32, read=False, written=True, fixed="EAX", implicit=True),
                R(32, read=False, written=True, fixed="EDX", implicit=True),
                R(32, read=False, written=True, fixed="ECX", implicit=True),
            ),
            category="rdtsc",
            attributes=(ATTR_SYSTEM,),
        ),
        form(
            "UD2", (), category="unsupported",
            attributes=(ATTR_UNSUPPORTED,),
        ),
        form(
            "HLT", (), category="unsupported",
            attributes=(ATTR_UNSUPPORTED, ATTR_SYSTEM),
        ),
        form(
            "WBINVD", (), category="unsupported",
            attributes=(ATTR_UNSUPPORTED, ATTR_SYSTEM),
        ),
        form(
            "JMP", (I(8),), category="jmp",
            attributes=(ATTR_CONTROL_FLOW,),
        ),
        form(
            "JMP",
            (R(64),),
            category="jmp_indirect",
            attributes=(ATTR_CONTROL_FLOW,),
        ),
        form(
            "CALL",
            (R(64),
             R(64, read=True, written=True, fixed="RSP", implicit=True)),
            category="call",
            attributes=(ATTR_CONTROL_FLOW,),
        ),
        form(
            "RET",
            (R(64, read=True, written=True, fixed="RSP", implicit=True),),
            category="ret",
            attributes=(ATTR_CONTROL_FLOW,),
        ),
    ]
    return forms
