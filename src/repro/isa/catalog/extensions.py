"""Later ISA extensions: SSE4.2 string/CRC, BMI1/2, ADX, MOVBE, F16C,
additional SSE3/SSSE3/SSE4.1 forms, and the AVX2-only instructions
(broadcasts, cross-lane permutes, variable shifts, gathers, masked
moves)."""

from __future__ import annotations

from typing import List

from repro.isa.catalog._helpers import (
    ALL_FLAGS,
    ARITH_FLAGS,
    I,
    M,
    R,
    TEST_FLAGS,
    X,
    Y,
    form,
)
from repro.isa.instruction import ATTR_LOCK, InstructionForm


def _vec(width: int, **kwargs):
    return X(**kwargs) if width == 128 else Y(**kwargs)


def _gpr_bmi() -> List[InstructionForm]:
    forms: List[InstructionForm] = []
    # MOVBE: byte-swapping loads and stores (Haswell+).
    for width in (16, 32, 64):
        forms.append(
            form(
                "MOVBE",
                (R(width, read=False, written=True), M(width)),
                extension="MOVBE",
                category="movbe_load",
            )
        )
        forms.append(
            form(
                "MOVBE",
                (M(width, read=False, written=True), R(width)),
                extension="MOVBE",
                category="movbe_store",
            )
        )
    # CRC32 (SSE4.2, Nehalem+).
    for src_width in (8, 16, 32, 64):
        dst_width = 64 if src_width == 64 else 32
        for src in (R(src_width), M(src_width)):
            forms.append(
                form(
                    "CRC32",
                    (R(dst_width, read=True, written=True), src),
                    extension="SSE42",
                    category="crc32",
                )
            )
    # ADX: carry-less flag-chain arithmetic (Broadwell+).
    for mnemonic, flag in (("ADCX", "CF"), ("ADOX", "OF")):
        for width in (32, 64):
            for src in (R(width), M(width)):
                forms.append(
                    form(
                        mnemonic,
                        (R(width, read=True, written=True), src),
                        flags_read={flag},
                        flags_written={flag},
                        extension="ADX",
                        category="adx",
                    )
                )
    # BMI2 shifts: flagless three-operand shifts and rotate.
    for mnemonic in ("SARX", "SHLX", "SHRX"):
        for width in (32, 64):
            for src in (R(width), M(width)):
                forms.append(
                    form(
                        mnemonic,
                        (R(width, read=False, written=True), src,
                         R(width)),
                        extension="BMI2",
                        category="bmi_shift",
                    )
                )
    for width in (32, 64):
        for src in (R(width), M(width)):
            forms.append(
                form(
                    "RORX",
                    (R(width, read=False, written=True), src, I(8)),
                    extension="BMI2",
                    category="bmi_shift",
                )
            )
    # MULX: flagless widening multiply, reads RDX implicitly.
    for width in (32, 64):
        rdx = "EDX" if width == 32 else "RDX"
        for src in (R(width), M(width)):
            forms.append(
                form(
                    "MULX",
                    (
                        R(width, read=False, written=True),
                        R(width, read=False, written=True),
                        src,
                        R(width, read=True, fixed=rdx, implicit=True),
                    ),
                    extension="BMI2",
                    category="mulx",
                )
            )
    # BMI1/2 bit manipulation.
    for mnemonic, ext, category in (
        ("BLSI", "BMI1", "bmi_alu"),
        ("BLSR", "BMI1", "bmi_alu"),
        ("BLSMSK", "BMI1", "bmi_alu"),
        ("BZHI", "BMI2", "bmi_alu2"),
        ("BEXTR", "BMI1", "bextr"),
        ("PDEP", "BMI2", "pdep"),
        ("PEXT", "BMI2", "pdep"),
    ):
        for width in (32, 64):
            for src in (R(width), M(width)):
                if category in ("bmi_alu2", "bextr", "pdep"):
                    operands = (
                        R(width, read=False, written=True), src, R(width)
                    )
                else:
                    operands = (R(width, read=False, written=True), src)
                forms.append(
                    form(
                        mnemonic,
                        operands,
                        flags_written=TEST_FLAGS,
                        extension=ext,
                        category=category,
                    )
                )
    # CMPXCHG: compare-and-exchange with implicit accumulator.
    for width in (32, 64):
        acc = "EAX" if width == 32 else "RAX"
        for dst in (R(width, read=True, written=True),
                    M(width, read=True, written=True)):
            forms.append(
                form(
                    "CMPXCHG",
                    (
                        dst,
                        R(width),
                        R(width, read=True, written=True, fixed=acc,
                          implicit=True),
                    ),
                    flags_written=ARITH_FLAGS,
                    category="cmpxchg",
                )
            )
    forms.append(
        form(
            "LOCK CMPXCHG",
            (
                M(64, read=True, written=True),
                R(64),
                R(64, read=True, written=True, fixed="RAX",
                  implicit=True),
            ),
            flags_written=ARITH_FLAGS,
            category="lock_rmw",
            attributes=(ATTR_LOCK,),
        )
    )
    return forms


def _sse_extras() -> List[InstructionForm]:
    forms: List[InstructionForm] = []
    # Sign/zero extension moves (SSE4.1).
    for sign in ("S", "Z"):
        for suffix, src_width in (
            ("BW", 64), ("BD", 32), ("BQ", 16),
            ("WD", 64), ("WQ", 32), ("DQ", 64),
        ):
            mnemonic = f"PMOV{sign}X{suffix}"
            forms.append(
                form(
                    mnemonic,
                    (X(read=False, written=True), X()),
                    extension="SSE4",
                    category="vec_pmovx",
                )
            )
            forms.append(
                form(
                    mnemonic,
                    (X(read=False, written=True), M(src_width)),
                    extension="SSE4",
                    category="vec_pmovx",
                )
            )
    # INSERTPS / EXTRACTPS.
    for src in (X(), M(32)):
        forms.append(
            form(
                "INSERTPS",
                (X(read=True, written=True), src, I(8)),
                extension="SSE4",
                category="vec_shuffle_imm",
            )
        )
    forms.append(
        form(
            "EXTRACTPS",
            (R(32, read=False, written=True), X(), I(8)),
            extension="SSE4",
            category="vec_extract",
        )
    )
    forms.append(
        form(
            "EXTRACTPS",
            (M(32, read=False, written=True), X(), I(8)),
            extension="SSE4",
            category="vec_extract_store",
        )
    )
    # Horizontal integer adds (SSSE3).
    for mnemonic in ("PHADDW", "PHADDD", "PHADDSW", "PHSUBW", "PHSUBD",
                     "PHSUBSW"):
        for src in (X(), M(128)):
            forms.append(
                form(
                    mnemonic,
                    (X(read=True, written=True), src),
                    extension="SSSE3",
                    category="vec_phadd",
                )
            )
    forms.append(
        form(
            "PHMINPOSUW",
            (X(read=False, written=True), X()),
            extension="SSE4",
            category="vec_phminpos",
        )
    )
    # Duplicating moves (SSE3).
    for mnemonic, src_width in (
        ("MOVDDUP", 64), ("MOVSHDUP", 128), ("MOVSLDUP", 128),
    ):
        forms.append(
            form(
                mnemonic,
                (X(read=False, written=True), X()),
                extension="SSE3",
                category="vec_shuffle",
            )
        )
        forms.append(
            form(
                mnemonic,
                (X(read=False, written=True), M(src_width)),
                extension="SSE3",
                category="vec_load",
            )
        )
    forms.append(
        form(
            "LDDQU",
            (X(read=False, written=True), M(128)),
            extension="SSE3",
            category="vec_load",
        )
    )
    # Non-temporal stores.
    for mnemonic, ext, width in (
        ("MOVNTDQ", "SSE2", 128),
        ("MOVNTPS", "SSE", 128),
        ("MOVNTPD", "SSE2", 128),
    ):
        forms.append(
            form(
                mnemonic,
                (M(width, read=False, written=True), X()),
                extension=ext,
                category="vec_store",
            )
        )
    forms.append(
        form(
            "MOVNTI",
            (M(64, read=False, written=True), R(64)),
            extension="SSE2",
            category="store",
        )
    )
    # SSE4.2 string comparisons (implicit ECX / XMM0 results).
    for mnemonic, result_spec in (
        ("PCMPISTRI",
         R(32, read=False, written=True, fixed="ECX", implicit=True)),
        ("PCMPESTRI",
         R(32, read=False, written=True, fixed="ECX", implicit=True)),
        ("PCMPISTRM",
         X(read=False, written=True, fixed="XMM0", implicit=True)),
        ("PCMPESTRM",
         X(read=False, written=True, fixed="XMM0", implicit=True)),
    ):
        explicit_lengths = mnemonic.startswith("PCMPE")
        operands = [X(), X(), I(8)]
        if explicit_lengths:
            operands.append(R(64, read=True, fixed="RAX", implicit=True))
            operands.append(R(64, read=True, fixed="RDX", implicit=True))
        operands.append(result_spec)
        forms.append(
            form(
                mnemonic,
                tuple(operands),
                flags_written=ALL_FLAGS,
                extension="SSE42",
                category="vec_string",
            )
        )
    return forms


def _avx2_extras() -> List[InstructionForm]:
    forms: List[InstructionForm] = []
    # Register-source broadcasts (AVX2) and VBROADCASTSD.
    for suffix, _src_width in (("B", 8), ("W", 16), ("D", 32), ("Q", 64)):
        for width in (128, 256):
            forms.append(
                form(
                    f"VPBROADCAST{suffix}",
                    (_vec(width, read=False, written=True), X()),
                    extension="AVX2",
                    category="vec_broadcast",
                )
            )
    forms.append(
        form(
            "VBROADCASTSS",
            (X(read=False, written=True), X()),
            extension="AVX2",
            category="vec_broadcast",
        )
    )
    forms.append(
        form(
            "VBROADCASTSD",
            (Y(read=False, written=True), X()),
            extension="AVX2",
            category="vec_broadcast",
        )
    )
    forms.append(
        form(
            "VBROADCASTSD",
            (Y(read=False, written=True), M(64)),
            extension="AVX",
            category="vec_load",
        )
    )
    forms.append(
        form(
            "VBROADCASTF128",
            (Y(read=False, written=True), M(128)),
            extension="AVX",
            category="vec_load",
        )
    )
    # Cross-lane permutes with immediate (AVX2).
    for mnemonic in ("VPERMQ", "VPERMPD"):
        for src in (Y(), M(256)):
            forms.append(
                form(
                    mnemonic,
                    (Y(read=False, written=True), src, I(8)),
                    extension="AVX2",
                    category="avx_lane",
                )
            )
    # VEXTRACTI128 / VINSERTI128.
    forms.append(
        form(
            "VEXTRACTI128",
            (X(read=False, written=True), Y(), I(8)),
            extension="AVX2",
            category="avx_lane",
        )
    )
    forms.append(
        form(
            "VEXTRACTI128",
            (M(128, read=False, written=True), Y(), I(8)),
            extension="AVX2",
            category="avx_lane",
        )
    )
    for src in (X(), M(128)):
        forms.append(
            form(
                "VINSERTI128",
                (Y(read=False, written=True), Y(), src, I(8)),
                extension="AVX2",
                category="avx_lane",
            )
        )
    # Variable per-element shifts (AVX2).
    for mnemonic in ("VPSLLVD", "VPSLLVQ", "VPSRLVD", "VPSRLVQ",
                     "VPSRAVD"):
        for width in (128, 256):
            for count in (_vec(width), M(width)):
                forms.append(
                    form(
                        mnemonic,
                        (_vec(width, read=False, written=True),
                         _vec(width), count),
                        extension="AVX2",
                        category="vec_var_shift",
                    )
                )
    # Gathers (AVX2).  The VSIB vector index is modeled as an explicit
    # vector source operand next to a base-register memory operand — see
    # DESIGN.md for this substitution.
    for mnemonic, elem_width in (
        ("VPGATHERDD", 32), ("VPGATHERQQ", 64),
        ("VGATHERDPS", 32), ("VGATHERDPD", 64),
    ):
        for width in (128, 256):
            forms.append(
                form(
                    mnemonic,
                    (
                        _vec(width, read=True, written=True),
                        M(elem_width),
                        _vec(width),  # index vector
                        _vec(width, read=True, written=True),  # mask
                    ),
                    extension="AVX2",
                    category="vec_gather",
                )
            )
    # Masked moves (AVX).
    for mnemonic in ("VMASKMOVPS", "VMASKMOVPD"):
        for width in (128, 256):
            forms.append(
                form(
                    mnemonic,
                    (_vec(width, read=False, written=True), _vec(width),
                     M(width)),
                    extension="AVX",
                    category="vec_maskload",
                )
            )
            forms.append(
                form(
                    mnemonic,
                    (M(width, read=False, written=True), _vec(width),
                     _vec(width)),
                    extension="AVX",
                    category="vec_maskstore",
                )
            )
    # F16C half-precision conversions (Ivy Bridge+).
    forms.append(
        form(
            "VCVTPH2PS",
            (X(read=False, written=True), X()),
            extension="F16C",
            category="vec_cvt",
        )
    )
    forms.append(
        form(
            "VCVTPH2PS",
            (Y(read=False, written=True), X()),
            extension="F16C",
            category="vec_cvt",
        )
    )
    forms.append(
        form(
            "VCVTPS2PH",
            (X(read=False, written=True), X(), I(8)),
            extension="F16C",
            category="vec_cvt",
        )
    )
    forms.append(
        form(
            "VCVTPS2PH",
            (X(read=False, written=True), Y(), I(8)),
            extension="F16C",
            category="vec_cvt",
        )
    )
    # AVX2 movemask and sign-extension forms on YMM.
    forms.append(
        form(
            "VPMOVMSKB",
            (R(32, read=False, written=True), Y()),
            extension="AVX2",
            category="vec_movmsk",
        )
    )
    for sign in ("S", "Z"):
        for suffix in ("BW", "WD", "DQ"):
            forms.append(
                form(
                    f"VPMOV{sign}X{suffix}",
                    (Y(read=False, written=True), X()),
                    extension="AVX2",
                    category="vec_pmovx",
                )
            )
    return forms


def _sse_extras2() -> List[InstructionForm]:
    """Second growth pass: MMX<->FP converts, half-register moves,
    prefetches, cache-control, scalar reciprocal, VEX transfers."""
    from repro.isa.catalog._helpers import MM

    forms: List[InstructionForm] = []
    # MMX <-> packed-FP conversions.
    for mnemonic, dst_mm in (
        ("CVTPI2PS", False), ("CVTPI2PD", False),
        ("CVTPS2PI", True), ("CVTPD2PI", True),
        ("CVTTPS2PI", True), ("CVTTPD2PI", True),
    ):
        dst = MM(read=False, written=True) if dst_mm else \
            X(read=True, written=True)
        src = X() if dst_mm else MM()
        forms.append(
            form(mnemonic, (dst, src), extension="SSE2",
                 category="vec_cvt_gpr" if not dst_mm
                 else "vec_cvt_to_gpr")
        )
    # Half-register FP moves.
    for mnemonic in ("MOVHPS", "MOVLPS", "MOVHPD", "MOVLPD"):
        forms.append(
            form(
                mnemonic,
                (X(read=True, written=True), M(64)),
                extension="SSE" if mnemonic.endswith("PS") else "SSE2",
                category="vec_load",
            )
        )
        forms.append(
            form(
                mnemonic,
                (M(64, read=False, written=True), X()),
                extension="SSE" if mnemonic.endswith("PS") else "SSE2",
                category="vec_store",
            )
        )
    for mnemonic in ("MOVLHPS", "MOVHLPS"):
        forms.append(
            form(
                mnemonic,
                (X(read=True, written=True), X()),
                extension="SSE",
                category="vec_shuffle",
            )
        )
    # Scalar reciprocal estimates.
    for mnemonic in ("RCPSS", "RSQRTSS"):
        for src in (X(), M(32)):
            forms.append(
                form(
                    mnemonic,
                    (X(read=True, written=True), src),
                    extension="SSE",
                    category="vec_fp_rcp",
                )
            )
    # Prefetches and cache control: memory-touching, no destination.
    for mnemonic in ("PREFETCHT0", "PREFETCHT1", "PREFETCHT2",
                     "PREFETCHNTA"):
        forms.append(
            form(mnemonic, (M(8),), extension="SSE",
                 category="prefetch")
        )
    forms.append(
        form("CLFLUSH", (M(8, read=True, written=True),),
             extension="SSE2", category="clflush")
    )
    # Non-temporal MMX store.
    forms.append(
        form("MOVNTQ", (M(64, read=False, written=True), MM()),
             extension="MMX", category="vec_store")
    )
    # VEX-encoded transfers and conversions.
    for mnemonic, gpr_w in (("VMOVD", 32), ("VMOVQ", 64)):
        forms.append(
            form(mnemonic, (X(read=False, written=True), R(gpr_w)),
                 extension="AVX", category="vec_from_gpr")
        )
        forms.append(
            form(mnemonic, (R(gpr_w, read=False, written=True), X()),
                 extension="AVX", category="vec_to_gpr")
        )
    for gpr_w in (32, 64):
        for mnemonic in ("VCVTSI2SS", "VCVTSI2SD"):
            forms.append(
                form(
                    mnemonic,
                    (X(read=False, written=True), X(), R(gpr_w)),
                    extension="AVX",
                    category="vec_cvt_gpr",
                )
            )
        for mnemonic in ("VCVTSS2SI", "VCVTSD2SI"):
            forms.append(
                form(
                    mnemonic,
                    (R(gpr_w, read=False, written=True), X()),
                    extension="AVX",
                    category="vec_cvt_to_gpr",
                )
            )
    for src in (X(), M(32)):
        forms.append(
            form(
                "VINSERTPS",
                (X(read=False, written=True), X(), src, I(8)),
                extension="AVX",
                category="vec_shuffle_imm",
            )
        )
    for mnemonic, width in (
        ("VPEXTRB", 8), ("VPEXTRW", 16), ("VPEXTRD", 32), ("VPEXTRQ", 64),
    ):
        forms.append(
            form(
                mnemonic,
                (R(max(width, 32), read=False, written=True), X(), I(8)),
                extension="AVX",
                category="vec_extract",
            )
        )
    for mnemonic, width in (
        ("VPINSRB", 8), ("VPINSRW", 16), ("VPINSRD", 32), ("VPINSRQ", 64),
    ):
        forms.append(
            form(
                mnemonic,
                (X(read=False, written=True), X(),
                 R(max(width, 32)), I(8)),
                extension="AVX",
                category="vec_insert",
            )
        )
    return forms


def _avx_pass3() -> List[InstructionForm]:
    """Third growth pass: the remaining VEX mirrors of scalar/misc SSE
    operations."""
    forms: List[InstructionForm] = []
    # Three-operand scalar forms.
    for mnemonic, category, imm in (
        ("VROUNDSS", "vec_fp_round", True),
        ("VROUNDSD", "vec_fp_round", True),
        ("VCMPSS", "vec_fp_cmp", True),
        ("VCMPSD", "vec_fp_cmp", True),
        ("VDPPD", "vec_dp", True),
        ("VSQRTSS", "vec_fp_sqrt", False),
        ("VSQRTSD", "vec_fp_sqrt", False),
        ("VRCPSS", "vec_fp_rcp", False),
        ("VRSQRTSS", "vec_fp_rcp", False),
    ):
        width = 32 if mnemonic.endswith("SS") else 64
        if mnemonic == "VDPPD":
            width = 128
        for src2 in (X(), M(width)):
            operands = [X(read=False, written=True), X(), src2]
            if imm:
                operands.append(I(8))
            forms.append(
                form(mnemonic, tuple(operands), extension="AVX",
                     category=category)
            )
    # Two-operand VEX forms.
    for mnemonic, category in (
        ("VAESIMC", "vec_aes"),
        ("VMOVDDUP", "vec_shuffle"),
        ("VMOVSHDUP", "vec_shuffle"),
        ("VMOVSLDUP", "vec_shuffle"),
        ("VPHMINPOSUW", "vec_phminpos"),
        ("VCVTDQ2PD", "vec_cvt"),
        ("VCVTPD2DQ", "vec_cvt"),
        ("VCVTTPD2DQ", "vec_cvt"),
        ("VCVTPS2PD", "vec_cvt"),
        ("VCVTPD2PS", "vec_cvt"),
    ):
        forms.append(
            form(
                mnemonic,
                (X(read=False, written=True), X()),
                extension="AVX",
                category=category,
            )
        )
    forms.append(
        form(
            "VAESKEYGENASSIST",
            (X(read=False, written=True), X(), I(8)),
            extension="AVX_AES",
            category="vec_aes",
        )
    )
    for src2 in (X(), M(128)):
        forms.append(
            form(
                "VPCLMULQDQ",
                (X(read=False, written=True), X(), src2, I(8)),
                extension="AVX",
                category="vec_clmul",
            )
        )
    # Mask extraction / FP tests.
    forms.append(
        form(
            "VPMOVMSKB",
            (R(32, read=False, written=True), X()),
            extension="AVX",
            category="vec_movmsk",
        )
    )
    for mnemonic in ("VMOVMSKPS", "VMOVMSKPD"):
        for width in (128, 256):
            forms.append(
                form(
                    mnemonic,
                    (R(32, read=False, written=True), _vec(width)),
                    extension="AVX",
                    category="vec_movmsk",
                )
            )
    for mnemonic in ("VTESTPS", "VTESTPD"):
        for width in (128, 256):
            for src in (_vec(width), M(width)):
                forms.append(
                    form(
                        mnemonic,
                        (_vec(width), src),
                        flags_written=TEST_FLAGS,
                        extension="AVX",
                        category="vec_ptest",
                    )
                )
    forms.append(
        form(
            "VEXTRACTPS",
            (R(32, read=False, written=True), X(), I(8)),
            extension="AVX",
            category="vec_extract",
        )
    )
    # Horizontal integer adds under VEX (AVX for 128, AVX2 for 256).
    for mnemonic in ("VPHADDW", "VPHADDD", "VPHADDSW", "VPHSUBW",
                     "VPHSUBD", "VPHSUBSW"):
        for width in (128, 256):
            ext = "AVX" if width == 128 else "AVX2"
            for src2 in (_vec(width), M(width)):
                forms.append(
                    form(
                        mnemonic,
                        (_vec(width, read=False, written=True),
                         _vec(width), src2),
                        extension=ext,
                        category="vec_phadd",
                    )
                )
    # VPBLENDD (AVX2 immediate blend).
    for width in (128, 256):
        for src2 in (_vec(width), M(width)):
            forms.append(
                form(
                    "VPBLENDD",
                    (_vec(width, read=False, written=True),
                     _vec(width), src2, I(8)),
                    extension="AVX2",
                    category="vec_blend",
                )
            )
    # VEX non-temporal stores and LDDQU.
    forms.append(
        form(
            "VLDDQU",
            (X(read=False, written=True), M(128)),
            extension="AVX",
            category="vec_load",
        )
    )
    for mnemonic in ("VMOVNTDQ", "VMOVNTPS", "VMOVNTPD"):
        for width in (128, 256):
            forms.append(
                form(
                    mnemonic,
                    (M(width, read=False, written=True), _vec(width)),
                    extension="AVX",
                    category="vec_store",
                )
            )
    # AVX2 integer masked moves and the remaining gather shapes.
    for mnemonic in ("VPMASKMOVD", "VPMASKMOVQ"):
        for width in (128, 256):
            forms.append(
                form(
                    mnemonic,
                    (_vec(width, read=False, written=True), _vec(width),
                     M(width)),
                    extension="AVX2",
                    category="vec_maskload",
                )
            )
            forms.append(
                form(
                    mnemonic,
                    (M(width, read=False, written=True), _vec(width),
                     _vec(width)),
                    extension="AVX2",
                    category="vec_maskstore",
                )
            )
    for mnemonic, elem_width in (
        ("VPGATHERDQ", 64), ("VPGATHERQD", 32), ("VGATHERQPS", 32),
        ("VGATHERQPD", 64),
    ):
        for width in (128, 256):
            forms.append(
                form(
                    mnemonic,
                    (
                        _vec(width, read=True, written=True),
                        M(elem_width),
                        _vec(width),
                        _vec(width, read=True, written=True),
                    ),
                    extension="AVX2",
                    category="vec_gather",
                )
            )
    return forms


def _final_pass() -> List[InstructionForm]:
    """Final growth pass: non-REP string instructions, flag/stack
    transfers, scalar FP conversions, the FMA add/sub family, and
    remaining MMX forms."""
    from repro.isa.catalog._helpers import ALL_FLAGS, ARITH_FLAGS, MM

    forms: List[InstructionForm] = []
    # Non-REP string instructions (one iteration each).
    rsi = R(64, read=True, written=True, fixed="RSI", implicit=True)
    rdi = R(64, read=True, written=True, fixed="RDI", implicit=True)
    for width, suffix in ((8, "B"), (16, "W"), (32, "D"), (64, "Q")):
        acc = {8: "AL", 16: "AX", 32: "EAX", 64: "RAX"}[width]
        forms.append(
            form(f"MOVS{suffix}", (rsi, rdi), category="string_one")
        )
        forms.append(
            form(
                f"LODS{suffix}",
                (rsi,
                 R(width, read=False, written=True, fixed=acc,
                   implicit=True)),
                category="string_load",
            )
        )
        forms.append(
            form(
                f"STOS{suffix}",
                (rdi,
                 R(width, read=True, fixed=acc, implicit=True)),
                category="string_store",
            )
        )
        forms.append(
            form(
                f"SCAS{suffix}",
                (rdi,
                 R(width, read=True, fixed=acc, implicit=True)),
                flags_written=ARITH_FLAGS,
                category="string_load",
            )
        )
        forms.append(
            form(
                f"CMPS{suffix}",
                (rsi, rdi),
                flags_written=ARITH_FLAGS,
                category="string_cmp",
            )
        )
    # Flag/stack transfers.
    rsp = R(64, read=True, written=True, fixed="RSP", implicit=True)
    forms.append(
        form("PUSHF", (rsp,), flags_read=ALL_FLAGS, category="pushf")
    )
    forms.append(
        form("POPF", (rsp,), flags_written=ALL_FLAGS, category="popf")
    )
    forms.append(
        form(
            "LEAVE",
            (R(64, read=True, written=True, fixed="RBP", implicit=True),
             rsp),
            category="leave",
        )
    )
    # Multi-byte NOP with an (ignored) operand.
    for width in (16, 32):
        forms.append(
            form(
                "NOP",
                (R(width, read=False, written=False),),
                category="nop",
            )
        )
    # Scalar FP precision conversions.
    for mnemonic, src_width in (("CVTSS2SD", 32), ("CVTSD2SS", 64)):
        for src in (X(), M(src_width)):
            forms.append(
                form(
                    mnemonic,
                    (X(read=True, written=True), src),
                    extension="SSE2",
                    category="vec_cvt",
                )
            )
        forms.append(
            form(
                f"V{mnemonic}",
                (X(read=False, written=True), X(), X()),
                extension="AVX",
                category="vec_cvt",
            )
        )
    # VEX scalar moves.
    for mnemonic, width in (("VMOVSS", 32), ("VMOVSD", 64)):
        forms.append(
            form(
                mnemonic,
                (X(read=False, written=True), X(), X()),
                extension="AVX",
                category="vec_shuffle",
            )
        )
        forms.append(
            form(
                mnemonic,
                (X(read=False, written=True), M(width)),
                extension="AVX",
                category="vec_load",
            )
        )
        forms.append(
            form(
                mnemonic,
                (M(width, read=False, written=True), X()),
                extension="AVX",
                category="vec_store",
            )
        )
    # FMA add/sub interleaved family.
    for stem in ("VFMADDSUB", "VFMSUBADD"):
        for order in ("132", "213", "231"):
            for suffix in ("PS", "PD"):
                for width in (128, 256):
                    for src2 in (_vec(width), M(width)):
                        forms.append(
                            form(
                                f"{stem}{order}{suffix}",
                                (_vec(width, read=True, written=True),
                                 _vec(width), src2),
                                extension="FMA",
                                category="fma",
                            )
                        )
    # Remaining MMX forms.
    for mnemonic, category in (
        ("PACKSSDW", "mmx_alu"),
        ("PMULUDQ", "vec_int_mul"),
        ("PSADBW", "vec_psadbw"),
        ("PAVGB", "mmx_alu"),
        ("PAVGW", "mmx_alu"),
        ("PMAXSW", "mmx_alu"),
        ("PMINSW", "mmx_alu"),
    ):
        forms.append(
            form(
                mnemonic,
                (MM(read=True, written=True), MM()),
                extension="MMX",
                category=category,
            )
        )
    forms.append(
        form(
            "PEXTRW",
            (R(32, read=False, written=True), MM(), I(8)),
            extension="MMX",
            category="vec_extract",
        )
    )
    forms.append(
        form(
            "PINSRW",
            (MM(read=True, written=True), R(32), I(8)),
            extension="MMX",
            category="vec_insert",
        )
    )
    forms.append(
        form(
            "PMOVMSKB",
            (R(32, read=False, written=True), MM()),
            extension="MMX",
            category="vec_movmsk",
        )
    )
    # Wide compare-and-exchange (Microcode ROM).
    forms.append(
        form(
            "CMPXCHG16B",
            (
                M(128, read=True, written=True),
                R(64, read=True, written=True, fixed="RAX",
                  implicit=True),
                R(64, read=True, written=True, fixed="RDX",
                  implicit=True),
                R(64, read=True, fixed="RBX", implicit=True),
                R(64, read=True, fixed="RCX", implicit=True),
            ),
            flags_written={"ZF"},
            category="cmpxchg16b",
        )
    )
    return forms


def build() -> List[InstructionForm]:
    return (_gpr_bmi() + _sse_extras() + _sse_extras2()
            + _avx2_extras() + _avx_pass3() + _final_pass())
