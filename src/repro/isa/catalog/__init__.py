"""The x86-64 instruction catalog.

Each module contributes :class:`~repro.isa.instruction.InstructionForm`
objects for one part of the instruction set.  A *form* is what the paper
counts as an instruction variant (Table 1): a mnemonic plus one concrete
combination of operand kinds and widths.

The catalog is generated combinatorially, like the x86 instruction set
itself: a mnemonic like ``ADD`` expands into reg-reg, reg-mem, mem-reg,
reg-imm and mem-imm shapes at widths 8/16/32/64, with 8-bit and full-width
immediate variants (the paper explicitly distinguishes immediate widths,
Section 8).
"""

from typing import List

from repro.isa.instruction import InstructionForm


def build_catalog() -> List[InstructionForm]:
    """All instruction forms, across every ISA extension we model."""
    from repro.isa.catalog import avx, extensions, gpr, sse, system

    forms: List[InstructionForm] = []
    forms.extend(gpr.build())
    forms.extend(sse.build())
    forms.extend(avx.build())
    forms.extend(extensions.build())
    forms.extend(system.build())
    seen = {}
    for form in forms:
        if form.uid in seen:
            raise AssertionError(f"duplicate form uid: {form.uid}")
        seen[form.uid] = form
    return forms
