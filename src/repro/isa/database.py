"""Queryable instruction set database.

This is the in-memory form of the machine-readable instruction description
of Section 6.1.  It can be built directly from the catalog, or round-tripped
through the XED-style configuration files (:mod:`repro.isa.xed`) exactly as
the paper extracts its XML from Intel XED's build configuration.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.isa.instruction import InstructionForm


class InstructionDatabase:
    """An indexed collection of instruction forms."""

    def __init__(self, forms: Iterable[InstructionForm]):
        self._forms: List[InstructionForm] = list(forms)
        self._by_uid: Dict[str, InstructionForm] = {}
        self._by_mnemonic: Dict[str, List[InstructionForm]] = {}
        for form in self._forms:
            if form.uid in self._by_uid:
                raise ValueError(f"duplicate form: {form.uid}")
            self._by_uid[form.uid] = form
            self._by_mnemonic.setdefault(form.mnemonic, []).append(form)

    def __len__(self) -> int:
        return len(self._forms)

    def __iter__(self) -> Iterator[InstructionForm]:
        return iter(self._forms)

    def __contains__(self, uid: str) -> bool:
        return uid in self._by_uid

    def by_uid(self, uid: str) -> InstructionForm:
        """The form with the given identity, e.g. ``"ADD_R64_R64"``."""
        try:
            return self._by_uid[uid]
        except KeyError:
            raise KeyError(f"unknown instruction form: {uid!r}") from None

    def forms_for_mnemonic(self, mnemonic: str) -> List[InstructionForm]:
        return list(self._by_mnemonic.get(mnemonic.upper(), []))

    def mnemonics(self) -> List[str]:
        return sorted(self._by_mnemonic)

    def filter(self, predicate) -> "InstructionDatabase":
        """A new database restricted to forms matching *predicate*."""
        return InstructionDatabase(f for f in self._forms if predicate(f))

    def extensions(self) -> List[str]:
        return sorted({f.extension for f in self._forms})


_DEFAULT: Optional[InstructionDatabase] = None


def load_default_database() -> InstructionDatabase:
    """The full built-in catalog (memoized)."""
    global _DEFAULT
    if _DEFAULT is None:
        from repro.isa.catalog import build_catalog

        _DEFAULT = InstructionDatabase(build_catalog())
    return _DEFAULT
