"""Register model for 64-bit x86.

Registers are modeled as *views* into a canonical physical container: ``EAX``,
``AX``, ``AL``, and ``AH`` are all views of the container ``RAX`` at
different widths and bit offsets.  Dependency tracking in the simulator and
the chain generators of Section 5.2 both work at container granularity, which
is also how register renaming treats them on real Intel cores (modulo partial
register stalls, which the generators avoid by construction, exactly as the
paper does by using ``MOVSX``).

Status flags are modeled as six one-bit registers (``CF``, ``PF``, ``AF``,
``ZF``, ``SF``, ``OF``) that are each their own canonical container, so that
per-flag dependencies (e.g. ``TEST`` writing every flag *except* ``AF``) are
representable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple


class RegisterClass(enum.Enum):
    """Architectural register file a register belongs to."""

    GPR = "gpr"
    VEC = "vec"  # XMM/YMM (SSE/AVX)
    MMX = "mmx"
    FLAG = "flag"
    IP = "ip"


@dataclass(frozen=True)
class Register:
    """A named architectural register (possibly a sub-register view).

    Attributes:
        name: assembler name, e.g. ``"EAX"`` or ``"XMM3"``.
        reg_class: the register file this register belongs to.
        width: width in bits of this view.
        canonical: name of the canonical full-width container (``"RAX"`` for
            ``EAX``; ``"YMM3"`` for ``XMM3``).  Dependencies are tracked on
            the canonical name.
        offset: bit offset of this view within the container (8 for ``AH``,
            0 for everything else).
    """

    name: str
    reg_class: RegisterClass
    width: int
    canonical: str
    offset: int = 0

    def __str__(self) -> str:
        return self.name

    @property
    def is_full_width(self) -> bool:
        """Whether this view covers the entire canonical container."""
        full = _CONTAINER_WIDTH[self.canonical]
        return self.width == full and self.offset == 0


_CONTAINER_WIDTH: Dict[str, int] = {}
_BY_NAME: Dict[str, Register] = {}


def _define(
    name: str,
    reg_class: RegisterClass,
    width: int,
    canonical: str | None = None,
    offset: int = 0,
) -> Register:
    reg = Register(name, reg_class, width, canonical or name, offset)
    _BY_NAME[name] = reg
    if reg.canonical == name:
        _CONTAINER_WIDTH[name] = width
    return reg


def _define_gpr_family(
    r64: str, r32: str, r16: str, r8: str, r8h: str | None = None
) -> None:
    _define(r64, RegisterClass.GPR, 64)
    _define(r32, RegisterClass.GPR, 32, r64)
    _define(r16, RegisterClass.GPR, 16, r64)
    _define(r8, RegisterClass.GPR, 8, r64)
    if r8h is not None:
        _define(r8h, RegisterClass.GPR, 8, r64, offset=8)


_define_gpr_family("RAX", "EAX", "AX", "AL", "AH")
_define_gpr_family("RBX", "EBX", "BX", "BL", "BH")
_define_gpr_family("RCX", "ECX", "CX", "CL", "CH")
_define_gpr_family("RDX", "EDX", "DX", "DL", "DH")
_define_gpr_family("RSI", "ESI", "SI", "SIL")
_define_gpr_family("RDI", "EDI", "DI", "DIL")
_define_gpr_family("RBP", "EBP", "BP", "BPL")
_define_gpr_family("RSP", "ESP", "SP", "SPL")
for _i in range(8, 16):
    _define_gpr_family(f"R{_i}", f"R{_i}D", f"R{_i}W", f"R{_i}B")

for _i in range(16):
    _define(f"YMM{_i}", RegisterClass.VEC, 256)
    _define(f"XMM{_i}", RegisterClass.VEC, 128, f"YMM{_i}")

for _i in range(8):
    _define(f"MM{_i}", RegisterClass.MMX, 64)

#: The six x86 status flags, in the conventional order.
FLAG_NAMES: Tuple[str, ...] = ("CF", "PF", "AF", "ZF", "SF", "OF")
FLAGS: Dict[str, Register] = {
    name: _define(name, RegisterClass.FLAG, 1) for name in FLAG_NAMES
}

_define("RIP", RegisterClass.IP, 64)


def register_by_name(name: str) -> Register:
    """Look up a register by its assembler name (case-insensitive)."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError:
        raise KeyError(f"unknown register: {name!r}") from None


def is_register_name(name: str) -> bool:
    """Whether *name* names an architectural register."""
    return name.upper() in _BY_NAME


def all_registers() -> List[Register]:
    """All defined registers (every width view), in definition order."""
    return list(_BY_NAME.values())


_GPR_ORDER64 = (
    "RAX RCX RDX RBX RSP RBP RSI RDI "
    "R8 R9 R10 R11 R12 R13 R14 R15"
).split()


def gpr(width: int, index: int) -> Register:
    """The *index*-th general-purpose register of the given *width* in bits.

    Indices follow the standard encoding order RAX, RCX, RDX, RBX, RSP, RBP,
    RSI, RDI, R8..R15.  The 8-bit views are the low bytes (``AL``-style, not
    ``AH``-style).
    """
    base = register_by_name(_GPR_ORDER64[index])
    return sized_view(base, width)


_SIZED_VIEWS: Dict[Tuple[str, int], Register] = {}


def sized_view(reg: Register, width: int) -> Register:
    """The *width*-bit view of ``reg``'s canonical container (offset 0)."""
    key = (reg.canonical, width)
    view = _SIZED_VIEWS.get(key)
    if view is None:
        for candidate in _BY_NAME.values():
            if (
                candidate.canonical == reg.canonical
                and candidate.width == width
                and candidate.offset == 0
            ):
                view = _SIZED_VIEWS[key] = candidate
                break
        else:
            raise ValueError(f"no {width}-bit view of {reg.canonical}")
    return view


def vec(width: int, index: int) -> Register:
    """The *index*-th vector register of the given width (128 or 256)."""
    prefix = {128: "XMM", 256: "YMM"}[width]
    return register_by_name(f"{prefix}{index}")


def mmx(index: int) -> Register:
    """The *index*-th MMX register."""
    return register_by_name(f"MM{index}")
