"""x86-64 instruction set substrate.

This subpackage provides everything the microbenchmark generators need to
know about the x86 instruction set: the register model (including aliasing
between, e.g., ``RAX``/``EAX``/``AX``/``AL``/``AH``), operand specifications
with implicit operands and per-flag read/write sets, the instruction catalog
(one :class:`~repro.isa.instruction.InstructionForm` per *instruction
variant* in the paper's counting), an Intel-syntax assembler front end, and
the XED-style machine-readable description pipeline of Section 6.1.
"""

from repro.isa.registers import (
    FLAGS,
    Register,
    RegisterClass,
    register_by_name,
)
from repro.isa.operands import (
    Immediate,
    Memory,
    OperandKind,
    OperandSpec,
    RegisterOperand,
)
from repro.isa.instruction import Instruction, InstructionForm
from repro.isa.database import InstructionDatabase, load_default_database

__all__ = [
    "FLAGS",
    "Register",
    "RegisterClass",
    "register_by_name",
    "Immediate",
    "Memory",
    "OperandKind",
    "OperandSpec",
    "RegisterOperand",
    "Instruction",
    "InstructionForm",
    "InstructionDatabase",
    "load_default_database",
]
