"""Static loop-kernel analysis from measured instruction characterizations.

Unlike the IACA reimplementation in :mod:`repro.iaca` (which deliberately
reproduces IACA's blind spots), this analyzer uses everything the
characterization tool measures:

* the inferred port usage feeds a min-max port-binding LP (throughput
  bound, Definition 1),
* the front-end width bounds µop issue,
* the per-operand-pair latencies drive a loop-carried dependency analysis
  through registers, status flags, AND memory locations — the three things
  Section 7.2 shows IACA getting wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.core.result import InstructionCharacterization
from repro.core.throughput import solve_port_assignment
from repro.isa.instruction import Instruction
from repro.isa.operands import Memory, OperandKind, RegisterOperand
from repro.uarch.model import UarchConfig


@dataclass
class LoopAnalysis:
    """The analyzer's report for one loop body."""

    cycles_per_iteration: float
    port_bound: float
    frontend_bound: float
    dependency_bound: float
    port_pressure: Dict[int, float] = field(default_factory=dict)
    bottleneck: str = ""
    total_uops: float = 0.0

    def render(self) -> str:
        lines = [
            f"predicted cycles/iteration: "
            f"{self.cycles_per_iteration:.2f}  "
            f"(bottleneck: {self.bottleneck})",
            f"  port bound:       {self.port_bound:.2f}",
            f"  front-end bound:  {self.frontend_bound:.2f}",
            f"  dependency bound: {self.dependency_bound:.2f}",
            "  port pressure: "
            + " ".join(
                f"p{p}={v:.2f}"
                for p, v in sorted(self.port_pressure.items())
            ),
        ]
        return "\n".join(lines)


class LoopAnalyzer:
    """Analyzes loop kernels against measured characterizations."""

    def __init__(
        self,
        characterizations: Mapping[str, InstructionCharacterization],
        uarch: UarchConfig,
    ):
        self._results = characterizations
        self._uarch = uarch

    def _characterization(
        self, instruction: Instruction
    ) -> InstructionCharacterization:
        uid = instruction.form.uid
        try:
            return self._results[uid]
        except KeyError:
            raise KeyError(
                f"no characterization for {uid}; characterize it first"
            ) from None

    # ------------------------------------------------------------------

    def analyze(self, code: Sequence[Instruction],
                iterations: int = 16) -> LoopAnalysis:
        """Analyze *code* as the body of a loop (steady state)."""
        port_bound, pressure = self._port_bound(code)
        total_uops = sum(
            self._characterization(i).uop_count for i in code
        )
        frontend_bound = total_uops / self._uarch.issue_width
        dependency_bound = self._dependency_bound(code, iterations)
        cycles = max(port_bound, frontend_bound, dependency_bound)
        if cycles == dependency_bound and \
                dependency_bound > max(port_bound, frontend_bound):
            bottleneck = "loop-carried dependency"
        elif cycles == port_bound and port_bound >= frontend_bound:
            bottleneck = "port pressure"
        else:
            bottleneck = "front end"
        return LoopAnalysis(
            cycles_per_iteration=cycles,
            port_bound=port_bound,
            frontend_bound=frontend_bound,
            dependency_bound=dependency_bound,
            port_pressure=pressure,
            bottleneck=bottleneck,
            total_uops=total_uops,
        )

    def _port_bound(self, code) -> Tuple[float, Dict[int, float]]:
        counts: Dict[frozenset, float] = {}
        for instruction in code:
            outcome = self._characterization(instruction)
            if outcome.port_usage is None:
                continue
            for ports, n in outcome.port_usage.counts.items():
                counts[ports] = counts.get(ports, 0.0) + n
        solution = solve_port_assignment(counts, self._uarch.ports)
        if solution is None:
            return 0.0, {p: 0.0 for p in self._uarch.ports}
        return solution

    # ------------------------------------------------------------------
    # Loop-carried dependency analysis with per-pair latencies
    # ------------------------------------------------------------------

    def _dependency_bound(self, code, iterations: int) -> float:
        ready: Dict[object, float] = {}
        marks: List[float] = []
        for iteration in range(iterations):
            for instruction in code:
                self._propagate(instruction, ready)
            marks.append(max(ready.values()) if ready else 0.0)
        if len(marks) < 4:
            return 0.0
        half = len(marks) // 2
        return (marks[-1] - marks[half - 1]) / (len(marks) - half)

    def _operand_pairs(self, instruction: Instruction):
        """(sources, destinations) with their latency-report labels."""
        form = instruction.form
        sources = []
        dests = []
        for index, spec in enumerate(form.operands):
            label = form.operand_label(index)
            operand = instruction.operands[index]
            if spec.kind == OperandKind.IMM:
                continue
            if isinstance(operand, Memory):
                keys_addr = [
                    ("reg", r.canonical)
                    for r in (operand.base, operand.index)
                    if r is not None
                ]
                if spec.kind == OperandKind.AGEN or spec.read:
                    sources.append(("mem", keys_addr, None))
                # Memory locations alias on syntactic identity (same
                # base/index/displacement), the best a static analyzer
                # can do — and already more than IACA, which ignores
                # memory dependencies entirely (Section 7.2).
                if spec.written and spec.kind == OperandKind.MEM:
                    dests.append(("mem", [("memloc", operand)], None))
                if spec.read and spec.kind == OperandKind.MEM:
                    sources.append(("mem", [("memloc", operand)], None))
                continue
            if isinstance(operand, RegisterOperand):
                key = ("reg", operand.register.canonical)
                if spec.read:
                    sources.append((label, [key], None))
                if spec.written:
                    dests.append((label, [key], None))
        if form.flags_read:
            sources.append(
                ("flags", [("flag", f) for f in form.flags_read], None)
            )
        if form.flags_written:
            dests.append(
                ("flags", [("flag", f) for f in form.flags_written], None)
            )
        return sources, dests

    def _latency(self, outcome, src_label, dst_label) -> float:
        if outcome.latency is None:
            return 1.0
        value = outcome.latency.get(src_label, dst_label)
        if value is not None:
            if value.kind == "store_load":
                # The measured store->mem quantity is a store+reload
                # round trip (Section 5.2.4); the reload's own latency is
                # added back by the consuming load's mem->reg edge, so
                # strip it here to avoid double counting.
                return max(1.0, value.cycles - self._uarch.load_latency)
            return value.cycles
        # Unknown pair: fall back to the worst measured latency.
        return outcome.latency.max_latency()

    def _propagate(self, instruction, ready: Dict[object, float]) -> None:
        outcome = self._characterization(instruction)
        sources, dests = self._operand_pairs(instruction)
        for dst_label, dst_keys, _ in dests:
            t_ready = 0.0
            for src_label, src_keys, _ in sources:
                latency = self._latency(outcome, src_label, dst_label)
                for key in src_keys:
                    t_ready = max(t_ready, ready.get(key, 0.0) + latency)
            if not sources:
                t_ready = max(
                    (ready.get(k, 0.0) for _, keys, _ in dests
                     for k in keys),
                    default=0.0,
                ) + 1.0
            for key in dst_keys:
                ready[key] = t_ready
