"""A performance-prediction tool built from the tool's own measurements.

The paper's conclusions mention "a performance-prediction tool similar to
Intel's IACA supporting all Intel Core microarchitectures, exploiting the
results obtained in the present work".  :class:`LoopAnalyzer` is that tool:
it analyzes a loop body using *measured* characterizations (port usage,
per-operand-pair latencies, µop counts) — never the simulator's ground
truth — and reports the throughput bound, the loop-carried dependency
bound, and the bottleneck.
"""

from repro.predictor.analyzer import LoopAnalysis, LoopAnalyzer

__all__ = ["LoopAnalysis", "LoopAnalyzer"]
