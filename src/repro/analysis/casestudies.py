"""Section 7.3 case studies, as reusable analysis functions.

Each function runs the real inference pipeline (never the ground-truth
tables) and returns a structured comparison against the published data in
:mod:`repro.refdata`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.latency import LatencyMeasurer
from repro.core.port_usage import infer_port_usage
from repro.core.blocking import find_blocking_instructions
from repro.core.codegen import measure_isolated
from repro.isa.database import load_default_database
from repro.measure.backend import HardwareBackend
from repro.refdata import (
    AES_LATENCY,
    MOVDQ2Q_PORTS,
    MOVQ2DQ_PORTS,
    MULTI_LATENCY_INSTRUCTIONS,
    SHLD_LATENCY,
    UNDOCUMENTED_ZERO_IDIOMS,
)
from repro.uarch.configs import get_uarch


@dataclass
class CaseStudyResult:
    name: str
    rows: List[str] = field(default_factory=list)
    passed: bool = True

    def add(self, line: str) -> None:
        self.rows.append(line)

    def check(self, condition: bool, line: str) -> None:
        marker = "ok " if condition else "FAIL"
        self.rows.append(f"[{marker}] {line}")
        if not condition:
            self.passed = False

    def render(self) -> str:
        header = f"== {self.name} =="
        return "\n".join([header] + self.rows)


def _measurer(uarch_name: str, database=None):
    database = database or load_default_database()
    backend = HardwareBackend(get_uarch(uarch_name))
    return database, backend, LatencyMeasurer(database, backend)


def aes_latency_study(database=None) -> CaseStudyResult:
    """AESDEC per-pair latencies across generations (Section 7.3.1)."""
    result = CaseStudyResult("AES instructions (7.3.1)")
    for uarch_name, published in AES_LATENCY.items():
        db, backend, measurer = _measurer(uarch_name, database)
        form = db.by_uid("AESDEC_XMM_XMM")
        latency = measurer.infer(form)
        uops = round(measure_isolated(form, backend).uops)
        expected_pairs = published["expected_pairs"]
        result.add(
            f"{uarch_name}: uops={uops} "
            + ", ".join(
                f"lat({s}->{d})={latency.pairs.get((s, d))}"
                for (s, d) in expected_pairs
            )
        )
        result.check(
            uops == published["uops"],
            f"{uarch_name}: µop count {uops} == {published['uops']}",
        )
        for (s, d), expected in expected_pairs.items():
            got = latency.pairs.get((s, d))
            result.check(
                got is not None and abs(got.cycles - expected) <= 1.0,
                f"{uarch_name}: lat({s},{d}) ~ {expected}, got {got}",
            )
    return result


def shld_latency_study(database=None) -> CaseStudyResult:
    """SHLD per-pair and same-register latencies (Section 7.3.2)."""
    result = CaseStudyResult("SHLD (7.3.2)")
    for uarch_name, published in SHLD_LATENCY.items():
        db, backend, measurer = _measurer(uarch_name, database)
        form = db.by_uid("SHLD_R64_R64_I8")
        latency = measurer.infer(form)
        for (s, d), expected in published["expected_pairs"].items():
            got = latency.pairs.get((s, d))
            result.check(
                got is not None and round(got.cycles) == expected,
                f"{uarch_name}: lat({s},{d}) == {expected}, got {got}",
            )
        same = latency.same_register.get(("op2", "op1"))
        expected_same = published["expected_same_register"]
        if expected_same is None:
            normal = latency.pairs.get(("op2", "op1"))
            result.check(
                same is not None
                and normal is not None
                and round(same.cycles) == round(normal.cycles),
                f"{uarch_name}: no same-register effect (got {same})",
            )
        else:
            result.check(
                same is not None and round(same.cycles) == expected_same,
                f"{uarch_name}: same-register latency == "
                f"{expected_same}, got {same}",
            )
    return result


def movq2dq_port_study(database=None) -> CaseStudyResult:
    """MOVQ2DQ / MOVDQ2Q port usage (Sections 7.3.3, 7.3.4)."""
    result = CaseStudyResult("MOVQ2DQ / MOVDQ2Q (7.3.3-7.3.4)")
    cases = [("MOVQ2DQ_XMM_MM", MOVQ2DQ_PORTS),
             ("MOVDQ2Q_MM_XMM", MOVDQ2Q_PORTS)]
    for uid, table in cases:
        for uarch_name, published in table.items():
            db, backend, _ = _measurer(uarch_name, database)
            blocking = find_blocking_instructions(db, backend)
            form = db.by_uid(uid)
            usage = infer_port_usage(form, backend, blocking)
            result.add(
                f"{uid} on {uarch_name}: measured {usage.notation()} "
                f"(prior work: { {k: v for k, v in published.items() if k != 'expected'} })"
            )
            result.check(
                usage.notation() == published["expected"],
                f"{uid} on {uarch_name}: {usage.notation()} == "
                f"{published['expected']}",
            )
    return result


def multi_latency_study(
    uarch_name: str = "SKL",
    database=None,
    extra_uarch: str = "HSW",
) -> CaseStudyResult:
    """Instructions with pair-dependent latencies (Section 7.3.5).

    The paper's list aggregates over all tested generations (e.g. ADC and
    SBB are single-µop flat-latency on Skylake but two-µop multi-latency
    up to Broadwell), so mnemonics not found on *uarch_name* are retried
    on *extra_uarch*.
    """
    result = CaseStudyResult("Multi-latency instructions (7.3.5)")
    db, backend, measurer = _measurer(uarch_name, database)
    _, _, extra_measurer = _measurer(extra_uarch, database)
    found: List[str] = []
    for mnemonic in MULTI_LATENCY_INSTRUCTIONS:
        forms = [
            f
            for f in db.forms_for_mnemonic(mnemonic)
            if not f.has_memory_operand and backend.supports(f)
        ]
        if not forms:
            continue
        # Prefer variants with at least two register source operands:
        # those are the ones whose pairs can differ (e.g. the
        # variable-count vector shifts rather than the imm8 forms).
        rich = [
            f for f in forms
            if sum(
                1 for s in f.operands if s.is_register and s.read
            ) >= 2
        ]
        form = (rich or forms)[0]
        hit = None
        for label, active in ((uarch_name, measurer),
                              (extra_uarch, extra_measurer)):
            latency = active.infer(form)
            values = {round(v.cycles, 1) for v in latency.pairs.values()}
            if len(values) > 1:
                hit = (label, latency)
                break
        if hit is not None:
            label, latency = hit
            found.append(mnemonic)
            result.add(
                f"{form.uid} [{label}]: "
                + ", ".join(
                    f"{s}->{d}: {v}"
                    for (s, d), v in sorted(latency.pairs.items())
                )
            )
    result.check(
        len(found) >= 0.75 * len(MULTI_LATENCY_INSTRUCTIONS),
        f"pair-dependent latencies found for {len(found)} of "
        f"{len(MULTI_LATENCY_INSTRUCTIONS)} listed mnemonics: {found}",
    )
    return result


def zero_idiom_study(
    uarch_name: str = "SKL", database=None
) -> CaseStudyResult:
    """(V)PCMPGT* break dependencies on their operands (Section 7.3.6)."""
    result = CaseStudyResult("Undocumented zero idioms (7.3.6)")
    db, backend, measurer = _measurer(uarch_name, database)
    for mnemonic in UNDOCUMENTED_ZERO_IDIOMS:
        forms = [
            f
            for f in db.forms_for_mnemonic(mnemonic)
            if not f.has_memory_operand and backend.supports(f)
        ]
        if not forms:
            continue
        form = forms[0]
        latency = measurer.infer(form)
        same = list(latency.same_register.values())
        normal = latency.pairs.get(("op2", "op1")) or \
            latency.pairs.get(("op1", "op1"))
        dep_breaking = bool(same) and same[0].cycles <= 0.51
        result.check(
            dep_breaking,
            f"{form.uid}: same-register chain is dependency-free "
            f"(chain latency {same[0] if same else None}, "
            f"distinct-register latency {normal})",
        )
    return result
