"""Hardware-vs-IACA agreement, reproducing the comparison of Section 7.2
and the last three columns of Table 1.

For every instruction variant supported by both substrates, the same
microbenchmarks are run on the hardware backend and on every IACA version
supporting the generation; the µop counts are compared first (a variant
agrees if *at least one* IACA version reports the hardware's count), and
among the variants with matching counts, the inferred port usages are
compared.  REP- and LOCK-prefixed instructions are excluded from the
percentages, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Mapping, Optional, Tuple

from repro.core.blocking import find_blocking_instructions
from repro.core.codegen import measure_isolated
from repro.core.port_usage import infer_port_usage
from repro.core.result import InstructionCharacterization
from repro.iaca.analyzer import IacaBackend
from repro.isa.database import InstructionDatabase
from repro.isa.instruction import (
    ATTR_LOCK,
    ATTR_REP,
    ATTR_SERIALIZING,
    ATTR_SYSTEM,
    InstructionForm,
)
from repro.measure.backend import HardwareBackend
from repro.uarch.model import UarchConfig


@dataclass
class AgreementRow:
    """One row of Table 1."""

    uarch_name: str
    processor: str
    n_variants: int
    iaca_versions: Tuple[str, ...]
    compared: int = 0
    uops_same: int = 0
    uops_same_filtered: int = 0  # excluding REP/LOCK
    filtered_total: int = 0
    ports_compared: int = 0
    ports_same: int = 0
    disagreements: List[str] = field(default_factory=list)

    @property
    def uops_percentage(self) -> float:
        """µop agreement excluding REP/LOCK (Table 1, column 5)."""
        if not self.filtered_total:
            return 0.0
        return 100.0 * self.uops_same_filtered / self.filtered_total

    @property
    def uops_percentage_raw(self) -> float:
        if not self.compared:
            return 0.0
        return 100.0 * self.uops_same / self.compared

    @property
    def ports_percentage(self) -> float:
        """Port agreement among same-µop variants (Table 1, column 6)."""
        if not self.ports_compared:
            return 0.0
        return 100.0 * self.ports_same / self.ports_compared

    def format(self) -> str:
        versions = (
            f"{self.iaca_versions[0]}–{self.iaca_versions[-1]}"
            if self.iaca_versions
            else "-"
        )
        uops = f"{self.uops_percentage:.2f}%" if self.iaca_versions else "-"
        ports = f"{self.ports_percentage:.2f}%" if self.iaca_versions \
            else "-"
        return (
            f"{self.uarch_name:4s} {self.processor:18s} "
            f"{self.n_variants:5d}  {versions:8s} {uops:>8s} {ports:>8s}"
        )


def compute_agreement(
    uarch: UarchConfig,
    database: InstructionDatabase,
    forms: Iterable[InstructionForm],
    hardware: Optional[HardwareBackend] = None,
    n_variants: Optional[int] = None,
    hw_results: Optional[
        Mapping[str, InstructionCharacterization]
    ] = None,
) -> AgreementRow:
    """Compare hardware and IACA characterizations over *forms*.

    *hw_results* optionally supplies precomputed hardware
    characterizations (e.g. from a cached
    :class:`~repro.core.sweep.SweepEngine` sweep), keyed by form uid;
    forms covered by it skip hardware-side measurement entirely, so a
    warm result cache makes Table-1 regeneration pay only the IACA side.
    """
    hardware = hardware or HardwareBackend(uarch)
    hw_results = hw_results or {}
    row = AgreementRow(
        uarch_name=uarch.name,
        processor=uarch.processor,
        n_variants=n_variants if n_variants is not None else 0,
        iaca_versions=tuple(uarch.iaca_versions),
    )
    if not uarch.iaca_versions:
        return row

    iaca_backends = [
        IacaBackend(uarch, version) for version in uarch.iaca_versions
    ]
    # Hardware blocking instructions are only needed for forms whose
    # port usage is not already in hw_results; discover them lazily so
    # a fully cached run never measures on the hardware backend.
    hw_blocking_cache: List[Optional[object]] = [None]

    def hw_blocking():
        if hw_blocking_cache[0] is None:
            hw_blocking_cache[0] = find_blocking_instructions(
                database, hardware
            )
        return hw_blocking_cache[0]

    iaca_blocking = {
        backend.version: find_blocking_instructions(database, backend)
        for backend in iaca_backends
    }

    for form in forms:
        if not hardware.supports(form):
            continue
        supporting = [b for b in iaca_backends if b.supports(form)]
        if not supporting:
            continue
        row.compared += 1
        filtered = not (
            form.has_attribute(ATTR_REP) or form.has_attribute(ATTR_LOCK)
        )
        if filtered:
            row.filtered_total += 1

        cached = hw_results.get(form.uid)
        if cached is not None:
            hw_uops = round(cached.uop_count)
        else:
            hw_uops = round(measure_isolated(form, hardware).uops)
        matching = [
            b
            for b in supporting
            if round(measure_isolated(form, b).uops) == hw_uops
        ]
        if matching:
            row.uops_same += 1
            if filtered:
                row.uops_same_filtered += 1
        else:
            row.disagreements.append(f"uops: {form.uid}")
            continue

        if not filtered:
            continue
        if form.has_attribute(ATTR_SYSTEM) or \
                form.has_attribute(ATTR_SERIALIZING):
            continue  # port usage is not measured for these (Section 8)
        row.ports_compared += 1
        if cached is not None and cached.port_usage is not None:
            hw_usage = cached.port_usage
        else:
            hw_usage = infer_port_usage(form, hardware, hw_blocking())
        same = any(
            infer_port_usage(form, b, iaca_blocking[b.version]) == hw_usage
            for b in matching
        )
        if same:
            row.ports_same += 1
        else:
            row.disagreements.append(f"ports: {form.uid}")
    return row
