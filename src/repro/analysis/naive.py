"""The naive, isolation-based port-usage inference the paper improves on.

Section 5.1 describes the prior approach (Agner Fog's): run the instruction
repeatedly in isolation, read the average per-port µop counts, and guess a
port usage from them.  The reconstruction groups ports by their fractional
utilization — e.g. counts of 1.0 on port 0 plus 0.5 on ports 1 and 5 are
read as ``1*p0 + 1*p15``.  The paper's two counterexamples show why this is
unsound: ``2*p05`` produces exactly the same isolation counts as
``1*p0 + 1*p5``, and ``1*p0156 + 1*p06`` the same as ``2*p0156``.

This module implements that naive reconstruction so the ablation benchmark
can measure how often it errs across the whole instruction set, relative to
Algorithm 1.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.core.codegen import measure_isolated
from repro.core.result import PortUsage
from repro.isa.instruction import InstructionForm


def naive_port_usage(
    form: InstructionForm, backend, threshold: float = 0.05
) -> PortUsage:
    """Fog-style port usage from an isolation run only."""
    counters = measure_isolated(form, backend)
    usage: Dict[FrozenSet[int], int] = {}
    fractional: Dict[int, float] = {}
    for port, count in counters.port_uops.items():
        if count <= threshold:
            continue
        whole = int(count + 0.1)
        if whole > 0:
            # A port averaging ~n µops/instr is read as n dedicated µops
            # on that port (this is how 2*p05 becomes "1*p0 + 1*p5").
            key = frozenset({port})
            usage[key] = usage.get(key, 0) + whole
        fraction = count - whole
        if fraction > threshold:
            fractional[port] = fraction
    # Ports with (nearly) equal fractional utilization are grouped into
    # one combination executing round(sum) µops (this is how
    # 1*p0156 + 1*p06 becomes "2*p0156").
    while fractional:
        _, anchor = max(
            fractional.items(), key=lambda item: (item[1], -item[0])
        )
        group = [
            p for p, c in fractional.items() if abs(c - anchor) <= 0.12
        ]
        total = sum(fractional.pop(p) for p in group)
        uops = max(1, round(total))
        key = frozenset(group)
        usage[key] = usage.get(key, 0) + uops
    return PortUsage(usage)
