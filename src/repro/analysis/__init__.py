"""Evaluation machinery: hardware-vs-IACA agreement (Table 1) and the
Section 7.3 case studies."""

from repro.analysis.compare import AgreementRow, compute_agreement
from repro.analysis.sampling import stratified_sample

__all__ = ["AgreementRow", "compute_agreement", "stratified_sample"]
