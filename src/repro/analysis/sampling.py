"""Deterministic stratified sampling of instruction forms.

Characterizing every variant on every generation takes the paper's tool
50-110 minutes on real hardware; on the pure-Python simulator a full run is
correspondingly slower, so the benchmark harness defaults to a stratified
sample (one form out of every *k*, spread across categories) and offers
``REPRO_FULL=1`` for complete runs.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.isa.database import InstructionDatabase
from repro.isa.instruction import InstructionForm


def full_run_requested() -> bool:
    return os.environ.get("REPRO_FULL", "") not in ("", "0")


def stratified_sample(
    forms: List[InstructionForm],
    target: int,
) -> List[InstructionForm]:
    """About *target* forms, covering every category proportionally."""
    if target <= 0 or target >= len(forms):
        return list(forms)
    by_category: Dict[str, List[InstructionForm]] = {}
    for form in sorted(forms, key=lambda f: f.uid):
        by_category.setdefault(form.category, []).append(form)
    fraction = target / len(forms)
    sample: List[InstructionForm] = []
    for category in sorted(by_category):
        members = by_category[category]
        take = max(1, round(len(members) * fraction))
        stride = max(1, len(members) // take)
        sample.extend(members[::stride][:take])
    return sample


def default_sample(
    database: InstructionDatabase,
    predicate,
    target: Optional[int] = None,
) -> List[InstructionForm]:
    """The benchmark harness's working set for one generation."""
    forms = [f for f in database if predicate(f)]
    if full_run_requested():
        return forms
    return stratified_sample(forms, target or 120)
