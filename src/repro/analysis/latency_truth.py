"""Analytical per-pair latencies from the ground-truth µop DAG.

For validation only: computes the paper's ``lat(s, d)`` directly from a
:class:`~repro.uarch.uops.UarchEntry` — the time from source operand ``s``
becoming ready to destination ``d`` being produced, assuming every *other*
dependency is off the critical path (exactly the Section 4.1 definition).
The integration tests compare the latency *inference* (which only sees
performance counters) against these values.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.isa.instruction import InstructionForm
from repro.isa.operands import OperandKind
from repro.uarch.model import UarchConfig
from repro.uarch.tables import build_entry

_NEG_INF = float("-inf")


def expected_latency(
    form: InstructionForm,
    uarch: UarchConfig,
    source: Union[int, str],
    destination: Union[int, str],
) -> Optional[float]:
    """``lat(source, destination)`` from the ground-truth µop DAG.

    Args:
        source: operand slot index, or ``"flags"``.
        destination: operand slot index, or ``"flags"``.

    Returns:
        The latency in cycles, or ``None`` if the destination does not
        depend on the source.
    """
    entry = build_entry(form, uarch)
    if entry is None:
        return None

    def ref_is_source(ref) -> bool:
        if source == "flags":
            return ref == ("flags",)
        if ref == ("op", source):
            return True
        # A memory slot as source means its *address registers* become
        # ready (Section 5.2.2); the loaded data then flows through the
        # load µop's ("ld", slot) output.
        if (
            isinstance(source, int)
            and form.operands[source].kind == OperandKind.MEM
            and ref == ("addr", source)
        ):
            return True
        return False

    # Ready time of each µop result relative to the source (−inf when the
    # µop does not transitively depend on it).
    uop_time: Dict[int, float] = {}
    output_time: Dict[Tuple, float] = {}

    for index, uop in enumerate(entry.uops):
        dispatch = _NEG_INF
        for ref in uop.inputs:
            delay = uop.input_delay(ref)
            if ref_is_source(ref):
                dispatch = max(dispatch, 0.0 + delay)
            elif ref[0] == "uop":
                producer_time = uop_time.get(ref[1], _NEG_INF)
                if producer_time > _NEG_INF:
                    dispatch = max(dispatch, producer_time + delay)
            elif ref[0] in ("ld", "staddr", "mem") and ref in output_time:
                # Intra-instruction memory temps flow between µops;
                # ("op", i) and ("flags",) inputs always read the
                # instruction's *external* operands, never a sibling
                # µop's output.
                producer_time = output_time[ref]
                if producer_time > _NEG_INF:
                    dispatch = max(dispatch, producer_time + delay)
        uop_time[index] = (
            dispatch + uop.latency if dispatch > _NEG_INF else _NEG_INF
        )
        for out in uop.outputs:
            if dispatch > _NEG_INF:
                output_time[out] = dispatch + uop.output_latency(out)
            else:
                output_time.setdefault(out, _NEG_INF)

    if destination == "flags":
        value = output_time.get(("flags",), _NEG_INF)
    else:
        value = output_time.get(("op", destination), _NEG_INF)
        if value == _NEG_INF and isinstance(destination, int) and \
                form.operands[destination].kind == OperandKind.MEM:
            value = output_time.get(("mem", destination), _NEG_INF)
    return None if value == _NEG_INF else value
