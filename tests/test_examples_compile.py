"""The example scripts must at least parse and expose a main()."""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "path",
    sorted(EXAMPLES_DIR.glob("*.py")),
    ids=lambda p: p.name,
)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    functions = {
        node.name for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions, path.name
    # Every example must be runnable as a script.
    assert '__main__' in path.read_text()


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    for required in (
        "quickstart.py",
        "full_characterization.py",
        "compare_iaca.py",
        "case_studies.py",
        "performance_prediction.py",
        "instruction_evolution.py",
        "pipeline_extensions.py",
        "ground_truth_validation.py",
    ):
        assert required in names
